//! The auditor as a test: the workspace itself must satisfy every zero-copy
//! invariant. This is what makes `cargo test` equivalent to running
//! `cargo run -p zc-audit` in CI.
//!
//! One carve-out: `reactor-blocking` findings are *measured migration debt*
//! — blocking leaves that ROADMAP item 1 (the sharded reactor core) will
//! retire. They stay advisory until the cutover, so the strictness here is
//! "no violations except live reactor debt", plus a companion test pinning
//! that the debt is real (nonzero) and enumerated in the report.

use std::path::Path;

fn workspace_report() -> zc_audit::Report {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = zc_audit::find_root(here).expect("workspace root with zc-audit.toml");
    let cfg = zc_audit::Config::load(&root.join("zc-audit.toml")).expect("config parses");
    zc_audit::audit_workspace_report(&root, &cfg).expect("audit runs")
}

#[test]
fn workspace_satisfies_zero_copy_invariants() {
    let report = workspace_report();
    let hard: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule != "reactor-blocking" || v.msg.contains("stale waiver"))
        .collect();
    assert!(
        hard.is_empty(),
        "zero-copy invariant violations:\n{}",
        hard.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn reactor_debt_is_measured_not_hidden() {
    let report = workspace_report();
    // The data path still blocks today (socket sends, pool mutex, sleeps):
    // the reactor-readiness pass must SEE that debt, not report a false
    // clean bill. When ROADMAP item 1 retires the last blocking leaf, this
    // assertion flips to `is_empty()` alongside `--deny-reactor` in CI.
    assert!(
        !report.reactor.is_empty(),
        "reactor-readiness found no blocking leaves; either the cutover \
         landed (flip this test and deny the rule) or the pass regressed"
    );
    assert!(
        !report.reactor_entrypoints.is_empty(),
        "reactor entrypoints must be configured in zc-audit.toml"
    );
    for f in &report.reactor {
        assert!(
            !f.chain.is_empty() && f.chain[0] == f.entrypoint,
            "every finding carries its chain from the entrypoint: {f:?}"
        );
    }
}
