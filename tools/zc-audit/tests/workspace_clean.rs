//! The auditor as a test: the workspace itself must satisfy every zero-copy
//! invariant. This is what makes `cargo test` equivalent to running
//! `cargo run -p zc-audit` in CI.

use std::path::Path;

#[test]
fn workspace_satisfies_zero_copy_invariants() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = zc_audit::find_root(here).expect("workspace root with zc-audit.toml");
    let cfg = zc_audit::Config::load(&root.join("zc-audit.toml")).expect("config parses");
    let violations = zc_audit::audit_workspace(&root, &cfg).expect("audit runs");
    assert!(
        violations.is_empty(),
        "zero-copy invariant violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
