// Known-bad fixture for the meter-coverage rule: a raw byte copy in a
// function that never touches the copy meter.
pub fn sneak_fill(dst: &mut [u8], src: &[u8]) {
    dst.copy_from_slice(src);
}

pub fn metered_fill(dst: &mut [u8], src: &[u8], meter: &M) {
    meter.record(src.len());
    dst.copy_from_slice(src);
}
