impl Conn {
    pub fn push(&self, block: &ZcBytes) {
        let g = self.state.lock();
        self.wire.send_data(block);
        drop(g);
    }
    pub fn push_indirect(&self, block: &ZcBytes) {
        let g = self.state.lock();
        self.relay(block);
        drop(g);
    }
    pub fn relay(&self, block: &ZcBytes) {
        self.wire.send_data(block);
    }
}
