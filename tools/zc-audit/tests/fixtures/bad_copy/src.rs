// Known-bad fixture for the copy-path rule: four unwaivered copy idioms.
pub fn leak_copies(payload: &[u8], sink: &mut Vec<u8>) -> Vec<u8> {
    sink.extend_from_slice(payload);
    let owned = payload.to_vec();
    let _label = format!("len={}", owned.len());
    owned.clone()
}

// A waiver that cites no CopyLayer is itself a violation.
pub fn bad_waiver(payload: &[u8]) -> Vec<u8> {
    // zc-audit: allow(copy) — trust me, this one is fine
    payload.to_vec()
}
