pub fn decode(bytes: &[u8], announced: usize) -> usize {
    let n = announced + bytes.len();
    scale(n)
}

fn scale(n: usize) -> usize {
    n * 4
}

pub fn read_frame(hdr: &[u8]) -> usize {
    1 << hdr.len()
}
