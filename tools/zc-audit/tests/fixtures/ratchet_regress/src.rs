pub fn pack(payload: &[u8]) -> Vec<u8> {
    // zc-audit: allow(copy) — Marshal boundary: the CDR encapsulation must own its bytes
    payload.to_vec()
}
pub fn pack_again(payload: &[u8]) -> Vec<u8> {
    // zc-audit: allow(copy) — Marshal boundary: the header rewrite needs a private copy
    payload.to_vec()
}
