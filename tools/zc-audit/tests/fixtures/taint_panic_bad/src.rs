pub fn decode(bytes: &[u8]) -> u8 {
    let tail = bytes[bytes.len() - 1];
    first_len(bytes, tail)
}

fn first_len(data: &[u8], _seed: u8) -> u8 {
    data.first().copied().unwrap()
}

pub fn read_frame(hdr: &[u8]) {
    if hdr.len() > 64 {
        panic!("oversized header: {}", hdr.len());
    }
}
