pub fn decode(bytes: &[u8]) -> Vec<u8> {
    let announced = bytes.len();
    let mut out = Vec::with_capacity(announced);
    out.extend_from_slice(bytes);
    let scratch = vec![0u8; announced];
    out.extend_from_slice(&scratch);
    out
}
