pub const LOCAL_TAG: u32 = 0x5A43_0007;
