pub const ZC_TAG: u32 = 0x5A43;

pub enum Msg {
    Ping = 0,
    Pong = 1,
    Data = 2,
}

impl Msg {
    pub fn from_u8(b: u8) -> Option<Msg> {
        match b {
            0 => Some(Msg::Ping),
            1 => Some(Msg::Pong),
            9 => Some(Msg::Ping),
            _ => None,
        }
    }
}
