#![deny(unsafe_op_in_unsafe_fn)]
// Known-good fixture: every copy is waivered with its layer, every unsafe
// has a SAFETY comment, every raw copy sits next to the meter.

pub fn metered_fill(dst: &mut [u8], src: &[u8], meter: &CopyMeter) {
    meter.record(src.len());
    // zc-audit: allow(copy) — staging into the send ring, metered as SocketSend
    dst.copy_from_slice(src);
}

pub fn share(view: &Handle) -> Handle {
    // zc-audit: allow(cheap-clone) — Handle is a refcounted view
    view.clone()
}

pub fn describe(id: u32) -> String {
    // zc-audit: allow(control-plane) — diagnostic label, no payload bytes
    format!("conn#{id}")
}

pub fn read_byte(p: *const u8) -> u8 {
    // SAFETY: caller passes a pointer into a live, initialized buffer.
    unsafe { p.read() }
}

#[cfg(test)]
mod tests {
    // Test code copies freely without waivers.
    pub fn expected(src: &[u8]) -> Vec<u8> {
        src.to_vec()
    }
}
