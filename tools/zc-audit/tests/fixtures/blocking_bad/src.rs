impl Pump {
    pub fn pump(&self) {
        self.step();
    }
    pub fn step(&self) {
        self.finish();
    }
    pub fn finish(&self) {
        let g = self.state.lock();
        drop(g);
    }
    pub fn locker(&self) {
        let g = self.state.lock();
        drop(g);
    }
}
