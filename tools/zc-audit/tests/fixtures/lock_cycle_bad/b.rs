impl Pair {
    pub fn backward(&self) {
        let h = self.beta.lock();
        self.grab_alpha();
        drop(h);
    }
    pub fn grab_alpha(&self) {
        let g = self.alpha.lock();
        drop(g);
    }
}
