impl Pair {
    pub fn forward(&self) {
        let g = self.alpha.lock();
        self.grab_beta();
        drop(g);
    }
    pub fn grab_beta(&self) {
        let h = self.beta.lock();
        drop(h);
    }
}
