pub fn stash_copy(buf: &ZcBytes) -> usize {
    let copied = buf.to_vec();
    copied.len()
}
