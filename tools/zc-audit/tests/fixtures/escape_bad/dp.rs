pub fn send_block(buf: &ZcBytes) -> usize {
    let n = stash_copy(buf);
    n
}
