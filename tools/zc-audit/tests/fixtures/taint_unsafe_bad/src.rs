pub fn decode(bytes: &[u8]) -> u8 {
    unsafe { first_byte(bytes) }
}

unsafe fn first_byte(data: &[u8]) -> u8 {
    if data.is_empty() {
        return 0;
    }
    // SAFETY: the caller promises sane input.
    unsafe { *data.as_ptr() }
}
