pub fn send_block(buf: &ZcBytes) -> usize {
    let view = borrow_view(buf);
    view
}
