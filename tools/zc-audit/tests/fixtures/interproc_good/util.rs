pub fn borrow_view(buf: &ZcBytes) -> usize {
    let n = buf.len();
    // zc-audit: allow(wire-const) — deterministic RNG seed, coincidental digits
    let seed = 0x5A43_0009;
    n + seed as usize
}

pub fn flush(conn: &Conn, block: &Payload) {
    // zc-audit: allow(lock-held) — leaf lock serializing the wire; nothing else is held
    let g = conn.state.lock();
    conn.wire.send_data(block);
    drop(g);
}
