// Known-bad fixture for the unsafe-audit rule: no deny attribute, and two
// unsafe sites without SAFETY comments.
pub fn poke(p: *mut u8) {
    unsafe {
        p.write(1);
    }
}

pub unsafe fn raw_read(p: *const u8) -> u8 {
    // SAFETY comment is missing on the fn above; this one is fine though:
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { p.read() }
}
