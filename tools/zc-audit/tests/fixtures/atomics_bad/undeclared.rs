pub struct Free {
    flag: AtomicBool,
}
impl Free {
    pub fn poke(&self) {
        self.flag.store(true, Ordering::Release);
    }
}
