pub struct Hits {
    n: AtomicU64,
}
impl Hits {
    pub fn bump(&self) {
        self.n.fetch_add(1, Ordering::SeqCst);
    }
    pub fn read(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}
