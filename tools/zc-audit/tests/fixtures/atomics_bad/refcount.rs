pub struct Shared {
    refs: AtomicU32,
}
impl Shared {
    pub fn retain(&self) {
        self.refs.fetch_add(1, Ordering::Relaxed);
    }
    pub fn release(&self) {
        if self.refs.fetch_sub(1, Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            drop_slow(self);
        }
    }
}
