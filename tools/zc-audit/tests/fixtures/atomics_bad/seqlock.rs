pub struct Slot {
    seq: AtomicU64,
    data: AtomicU64,
}
impl Slot {
    pub fn publish(&self, v: u64) {
        self.data.store(v, Ordering::Relaxed);
        self.seq.store(2, Ordering::Relaxed);
    }
    pub fn read(&self) -> u64 {
        while self.seq.load(Ordering::Acquire) & 1 == 1 {}
        self.data.load(Ordering::Relaxed)
    }
}
