pub const MAX_MSG: u64 = 1 << 16;

/// Validate an announced length against the protocol cap.
pub fn checked_len(n: u64) -> Option<usize> {
    if n > MAX_MSG {
        return None;
    }
    Some(n as usize)
}

pub fn decode(bytes: &[u8]) -> Vec<u8> {
    let announced = bytes.len() as u64;
    let len = match checked_len(announced) {
        Some(len) => len,
        None => 0,
    };
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(bytes);
    out
}

pub fn read_frame(frame: &[u8]) -> u8 {
    let n = frame.len().min(MAX_MSG as usize);
    if n == 0 {
        return 0;
    }
    // SAFETY: `n` is clamped through min to MAX_MSG and to frame.len(),
    // and checked non-zero, so reading the first byte stays in bounds.
    unsafe { *frame.as_ptr() }
}

pub fn recv_control(msg: &[u8]) -> Vec<u8> {
    // zc-audit: allow(taint-alloc) — rewraps bytes already received and held; bounded by MAX_MSG upstream
    let mut out = Vec::with_capacity(msg.len());
    out.extend_from_slice(msg);
    out
}
