//! Fixture tests: each known-bad fixture directory must produce the exact
//! expected `file:line` reports (via the library) and a non-zero exit (via
//! the compiled binary); the known-good fixture must be clean and exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Audit one fixture directory through the library; returns `(line, rule)`
/// pairs sorted by line.
fn audit(name: &str) -> Vec<(u32, String)> {
    let dir = fixture_dir(name);
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).expect("fixture config");
    let violations = zc_audit::audit_workspace(&dir, &cfg).expect("fixture audit");
    for v in &violations {
        assert_eq!(v.file, "src.rs", "unexpected file in {name}: {v}");
    }
    violations
        .iter()
        .map(|v| (v.line, v.rule.to_string()))
        .collect()
}

/// Run the compiled `zc-audit` binary against a fixture root; returns
/// (exit code, stdout).
fn run_binary(name: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_zc-audit"))
        .arg(fixture_dir(name))
        .output()
        .expect("run zc-audit binary");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn bad_copy_fixture_reports_each_site() {
    let got = audit("bad_copy");
    let want = [
        (3, "copy-path"),  // extend_from_slice
        (4, "copy-path"),  // to_vec
        (5, "copy-path"),  // format!
        (6, "copy-path"),  // clone
        (11, "copy-path"), // allow(copy) waiver citing no CopyLayer
        (12, "copy-path"), // to_vec under the rejected waiver
    ];
    assert_eq!(
        got,
        want.map(|(l, r)| (l, r.to_string())),
        "bad_copy violations"
    );
}

#[test]
fn bad_unsafe_fixture_reports_each_site() {
    let got = audit("bad_unsafe");
    let want = [
        (1, "unsafe-audit"), // missing #![deny(unsafe_op_in_unsafe_fn)]
        (4, "unsafe-audit"), // unsafe block without SAFETY
        (9, "unsafe-audit"), // unsafe fn without SAFETY
    ];
    assert_eq!(
        got,
        want.map(|(l, r)| (l, r.to_string())),
        "bad_unsafe violations"
    );
}

#[test]
fn bad_meter_fixture_reports_each_site() {
    let got = audit("bad_meter");
    // Only the unmetered function is flagged; metered_fill is clean.
    assert_eq!(got, vec![(4, "meter-coverage".to_string())]);
}

#[test]
fn good_fixture_is_clean() {
    assert_eq!(audit("good"), Vec::<(u32, String)>::new());
}

#[test]
fn binary_exits_nonzero_on_each_bad_fixture() {
    for name in ["bad_copy", "bad_unsafe", "bad_meter"] {
        let (code, stdout) = run_binary(name);
        assert_eq!(code, 1, "{name} must fail the audit:\n{stdout}");
        assert!(
            stdout.contains("src.rs:"),
            "{name} report must carry file:line locations:\n{stdout}"
        );
    }
}

#[test]
fn binary_exits_zero_on_good_fixture() {
    let (code, stdout) = run_binary("good");
    assert_eq!(code, 0, "good fixture must pass:\n{stdout}");
}
