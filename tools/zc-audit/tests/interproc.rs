//! Fixture tests for the inter-procedural passes (zc-escape, lock-order,
//! wire-consts), the `--json` output mode, and the advisory lock-order
//! exit policy. Unlike `fixtures.rs`, these fixtures span multiple files,
//! so expectations carry `(file, line, rule)` triples.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Audit one fixture directory through the library; returns
/// `(file, line, rule)` triples sorted by file then line.
fn audit(name: &str) -> Vec<(String, u32, String)> {
    let dir = fixture_dir(name);
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).expect("fixture config");
    let violations = zc_audit::audit_workspace(&dir, &cfg).expect("fixture audit");
    violations
        .iter()
        .map(|v| (v.file.clone(), v.line, v.rule.to_string()))
        .collect()
}

fn run_binary(name: &str, flags: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_zc-audit"))
        .args(flags)
        .arg(fixture_dir(name))
        .output()
        .expect("run zc-audit binary");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn escape_fixture_follows_value_across_files() {
    let got = audit("escape_bad");
    assert_eq!(
        got,
        vec![("util.rs".to_string(), 2, "zc-escape".to_string())],
        "the to_vec in the helper file must be reported"
    );
}

#[test]
fn lock_cycle_fixture_reports_the_cycle_once() {
    let got = audit("lock_cycle_bad");
    assert_eq!(got.len(), 1, "exactly one cycle report: {got:?}");
    assert_eq!(got[0], ("a.rs".to_string(), 4, "lock-order".to_string()));

    let dir = fixture_dir("lock_cycle_bad");
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).unwrap();
    let v = zc_audit::audit_workspace(&dir, &cfg).unwrap();
    assert!(
        v[0].msg.contains("cycle") && v[0].msg.contains("alpha") && v[0].msg.contains("beta"),
        "cycle message must name both locks: {}",
        v[0].msg
    );
}

#[test]
fn lock_blocking_fixture_reports_direct_and_indirect_holds() {
    let got = audit("lock_blocking_bad");
    let want = vec![
        ("src.rs".to_string(), 4, "lock-order".to_string()),
        ("src.rs".to_string(), 9, "lock-order".to_string()),
    ];
    assert_eq!(got, want, "direct send_data and the relay wrapper");
}

#[test]
fn wire_fixture_reports_duplicate_and_decoder_drift() {
    let got = audit("wire_dup_bad");
    let want = vec![
        ("consts.rs".to_string(), 6, "wire-consts".to_string()), // Data has no decode arm
        ("consts.rs".to_string(), 14, "wire-consts".to_string()), // arm 9 decodes nothing
        ("dup.rs".to_string(), 1, "wire-consts".to_string()),    // re-spelled 0x5A43 literal
    ];
    assert_eq!(got, want, "wire_dup_bad violations");
}

#[test]
fn interproc_good_fixture_is_clean_and_waivers_are_used() {
    assert_eq!(audit("interproc_good"), Vec::<(String, u32, String)>::new());

    let dir = fixture_dir("interproc_good");
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).unwrap();
    let report = zc_audit::audit_workspace_report(&dir, &cfg).unwrap();
    assert_eq!(report.waivers.len(), 2, "both seeded waivers visible");
    assert!(
        report.waivers.iter().all(|w| w.used),
        "no stale waivers in the clean fixture: {:?}",
        report.waivers
    );
}

#[test]
fn json_mode_emits_machine_readable_report() {
    let (code, stdout) = run_binary("wire_dup_bad", &["--json"]);
    assert_eq!(code, 1, "wire-consts findings are hard failures");
    assert!(stdout.contains("\"schema\": \"zc-audit/v2\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"wire-consts\""), "{stdout}");
    assert!(stdout.contains("\"file\": \"dup.rs\""), "{stdout}");

    let (code, stdout) = run_binary("interproc_good", &["--json"]);
    assert_eq!(code, 0, "clean fixture: {stdout}");
    assert!(stdout.contains("\"violations\": []"), "{stdout}");
    assert!(stdout.contains("\"used\": true"), "{stdout}");
}

#[test]
fn lock_order_findings_are_advisory_unless_denied() {
    let (code, stdout) = run_binary("lock_blocking_bad", &[]);
    assert_eq!(code, 0, "lock-order alone is advisory: {stdout}");
    assert!(stdout.contains("advisory"), "{stdout}");

    let (code, _) = run_binary("lock_blocking_bad", &["--deny-lock-order"]);
    assert_eq!(code, 1, "--deny-lock-order upgrades to a hard failure");

    // A mix with any non-advisory rule still fails without the flag.
    let (code, _) = run_binary("wire_dup_bad", &[]);
    assert_eq!(code, 1);
}
