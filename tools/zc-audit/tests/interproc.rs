//! Fixture tests for the inter-procedural passes (zc-escape, lock-order,
//! wire-taint, wire-consts, atomics-protocol, reactor-readiness), the
//! `--json` output mode, the advisory exit policy and the waiver-debt
//! ratchet. Unlike `fixtures.rs`, these fixtures span multiple files, so
//! expectations carry `(file, line, rule)` triples.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Audit one fixture directory through the library; returns
/// `(file, line, rule)` triples sorted by file then line.
fn audit(name: &str) -> Vec<(String, u32, String)> {
    let dir = fixture_dir(name);
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).expect("fixture config");
    let violations = zc_audit::audit_workspace(&dir, &cfg).expect("fixture audit");
    violations
        .iter()
        .map(|v| (v.file.clone(), v.line, v.rule.to_string()))
        .collect()
}

fn run_binary(name: &str, flags: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_zc-audit"))
        .args(flags)
        .arg(fixture_dir(name))
        .output()
        .expect("run zc-audit binary");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn escape_fixture_follows_value_across_files() {
    let got = audit("escape_bad");
    assert_eq!(
        got,
        vec![("util.rs".to_string(), 2, "zc-escape".to_string())],
        "the to_vec in the helper file must be reported"
    );
}

#[test]
fn lock_cycle_fixture_reports_the_cycle_once() {
    let got = audit("lock_cycle_bad");
    assert_eq!(got.len(), 1, "exactly one cycle report: {got:?}");
    assert_eq!(got[0], ("a.rs".to_string(), 4, "lock-order".to_string()));

    let dir = fixture_dir("lock_cycle_bad");
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).unwrap();
    let v = zc_audit::audit_workspace(&dir, &cfg).unwrap();
    assert!(
        v[0].msg.contains("cycle") && v[0].msg.contains("alpha") && v[0].msg.contains("beta"),
        "cycle message must name both locks: {}",
        v[0].msg
    );
}

#[test]
fn lock_blocking_fixture_reports_direct_and_indirect_holds() {
    let got = audit("lock_blocking_bad");
    let want = vec![
        ("src.rs".to_string(), 4, "lock-order".to_string()),
        ("src.rs".to_string(), 9, "lock-order".to_string()),
    ];
    assert_eq!(got, want, "direct send_data and the relay wrapper");
}

#[test]
fn wire_fixture_reports_duplicate_and_decoder_drift() {
    let got = audit("wire_dup_bad");
    let want = vec![
        ("consts.rs".to_string(), 6, "wire-consts".to_string()), // Data has no decode arm
        ("consts.rs".to_string(), 14, "wire-consts".to_string()), // arm 9 decodes nothing
        ("dup.rs".to_string(), 1, "wire-consts".to_string()),    // re-spelled 0x5A43 literal
    ];
    assert_eq!(got, want, "wire_dup_bad violations");
}

#[test]
fn interproc_good_fixture_is_clean_and_waivers_are_used() {
    assert_eq!(audit("interproc_good"), Vec::<(String, u32, String)>::new());

    let dir = fixture_dir("interproc_good");
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).unwrap();
    let report = zc_audit::audit_workspace_report(&dir, &cfg).unwrap();
    assert_eq!(report.waivers.len(), 2, "both seeded waivers visible");
    assert!(
        report.waivers.iter().all(|w| w.used),
        "no stale waivers in the clean fixture: {:?}",
        report.waivers
    );
}

#[test]
fn json_mode_emits_machine_readable_report() {
    let (code, stdout) = run_binary("wire_dup_bad", &["--json"]);
    assert_eq!(code, 1, "wire-consts findings are hard failures");
    assert!(stdout.contains("\"schema\": \"zc-audit/v4\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"wire-consts\""), "{stdout}");
    assert!(stdout.contains("\"file\": \"dup.rs\""), "{stdout}");

    let (code, stdout) = run_binary("interproc_good", &["--json"]);
    assert_eq!(code, 0, "clean fixture: {stdout}");
    assert!(stdout.contains("\"violations\": []"), "{stdout}");
    assert!(stdout.contains("\"used\": true"), "{stdout}");

    // v4 sections are always present, even when the passes are off.
    assert!(stdout.contains("\"atomics\""), "{stdout}");
    assert!(stdout.contains("\"reactor\""), "{stdout}");
    assert!(stdout.contains("\"ratchet\": null"), "{stdout}");
}

#[test]
fn taint_panic_fixture_reports_reached_sinks() {
    let got = audit("taint_panic_bad");
    let want = vec![
        ("src.rs".to_string(), 2, "taint-panic".to_string()), // tainted index
        ("src.rs".to_string(), 7, "taint-panic".to_string()), // unwrap in reached callee
        ("src.rs".to_string(), 12, "taint-panic".to_string()), // panic! on tainted input
    ];
    assert_eq!(got, want, "taint_panic_bad violations");
}

#[test]
fn taint_arith_fixture_reports_unchecked_arithmetic() {
    let got = audit("taint_arith_bad");
    let want = vec![
        ("src.rs".to_string(), 2, "taint-arith".to_string()), // announced + len
        ("src.rs".to_string(), 7, "taint-arith".to_string()), // n * 4 in callee
        ("src.rs".to_string(), 11, "taint-arith".to_string()), // 1 << tainted
    ];
    assert_eq!(got, want, "taint_arith_bad violations");
}

#[test]
fn taint_alloc_fixture_reports_unclamped_allocations() {
    let got = audit("taint_alloc_bad");
    let want = vec![
        ("src.rs".to_string(), 3, "taint-alloc".to_string()), // with_capacity(announced)
        ("src.rs".to_string(), 5, "taint-alloc".to_string()), // vec![0u8; announced]
    ];
    assert_eq!(got, want, "taint_alloc_bad violations");
}

#[test]
fn taint_unsafe_fixture_requires_cited_safety() {
    let got = audit("taint_unsafe_bad");
    let want = vec![
        ("src.rs".to_string(), 2, "taint-unsafe".to_string()), // no SAFETY at all
        ("src.rs".to_string(), 10, "taint-unsafe".to_string()), // SAFETY cites no clamp
    ];
    assert_eq!(got, want, "taint_unsafe_bad violations");
}

#[test]
fn taint_good_fixture_is_clean_and_waiver_is_used() {
    assert_eq!(audit("taint_good"), Vec::<(String, u32, String)>::new());

    let dir = fixture_dir("taint_good");
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).unwrap();
    let report = zc_audit::audit_workspace_report(&dir, &cfg).unwrap();
    assert_eq!(report.waivers.len(), 1, "the seeded taint-alloc waiver");
    assert!(
        report.waivers.iter().all(|w| w.used),
        "no stale waivers in the clean fixture: {:?}",
        report.waivers
    );
}

#[test]
fn taint_findings_are_advisory_unless_denied() {
    let (code, stdout) = run_binary("taint_alloc_bad", &[]);
    assert_eq!(code, 0, "taint-* alone is advisory: {stdout}");
    assert!(stdout.contains("advisory"), "{stdout}");

    let (code, _) = run_binary("taint_alloc_bad", &["--deny-taint"]);
    assert_eq!(code, 1, "--deny-taint upgrades to a hard failure");

    // The other deny flag must not upgrade this family.
    let (code, _) = run_binary("taint_panic_bad", &["--deny-lock-order"]);
    assert_eq!(code, 0, "--deny-lock-order leaves taint-* advisory");
}

#[test]
fn atomics_fixture_reports_protocol_violations() {
    let got = audit("atomics_bad");
    let want = vec![
        ("counter.rs".to_string(), 6, "atomics-protocol".to_string()), // needless SeqCst
        ("refcount.rs".to_string(), 9, "atomics-protocol".to_string()), // Relaxed decrement
        ("seqlock.rs".to_string(), 8, "atomics-protocol".to_string()), // Relaxed publish
        (
            "undeclared.rs".to_string(),
            6,
            "atomics-protocol".to_string(),
        ), // no protocol declared
    ];
    assert_eq!(got, want, "atomics_bad violations");

    let dir = fixture_dir("atomics_bad");
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).unwrap();
    let v = zc_audit::audit_workspace(&dir, &cfg).unwrap();
    assert!(
        v[0].msg.contains("needless `SeqCst`"),
        "counter message: {}",
        v[0].msg
    );
    assert!(
        v[1].msg.contains("Release or AcqRel"),
        "refcount message: {}",
        v[1].msg
    );
    assert!(
        v[2].msg.contains("Ordering::Release"),
        "seqlock message: {}",
        v[2].msg
    );
    assert!(
        v[3].msg.contains("outside any declared"),
        "undeclared message: {}",
        v[3].msg
    );

    // The pass summary counts each protocol's sites and the stray one.
    let report = zc_audit::audit_workspace_report(&dir, &cfg).unwrap();
    assert_eq!(report.atomics.protocols.len(), 3);
    assert_eq!(report.atomics.undeclared_sites, 1);
    assert!(report.atomics.protocols.iter().all(|p| p.sites > 0));
}

#[test]
fn atomics_findings_are_advisory_unless_denied() {
    let (code, stdout) = run_binary("atomics_bad", &[]);
    assert_eq!(code, 0, "atomics-protocol alone is advisory: {stdout}");
    assert!(stdout.contains("advisory"), "{stdout}");

    let (code, _) = run_binary("atomics_bad", &["--deny-atomics"]);
    assert_eq!(code, 1, "--deny-atomics upgrades to a hard failure");

    // The other deny flags must not upgrade this family.
    let (code, _) = run_binary("atomics_bad", &["--deny-lock-order", "--deny-taint"]);
    assert_eq!(code, 0, "other deny flags leave atomics-protocol advisory");
}

#[test]
fn blocking_fixture_reports_reachable_leaf_only() {
    let got = audit("blocking_bad");
    assert_eq!(
        got,
        vec![("src.rs".to_string(), 9, "reactor-blocking".to_string())],
        "only the reachable lock; `locker` is dead from the entrypoints"
    );

    let dir = fixture_dir("blocking_bad");
    let cfg = zc_audit::Config::load(&dir.join("zc-audit.toml")).unwrap();
    let v = zc_audit::audit_workspace(&dir, &cfg).unwrap();
    assert!(
        v[0].msg.contains("pump -> step -> finish"),
        "the two-hop chain must be spelled out: {}",
        v[0].msg
    );

    let report = zc_audit::audit_workspace_report(&dir, &cfg).unwrap();
    assert_eq!(report.reactor.len(), 1);
    assert_eq!(report.reactor[0].leaf, "lock");
    assert_eq!(report.reactor[0].entrypoint, "pump");
    assert_eq!(report.reactor[0].chain, vec!["pump", "step", "finish"]);
}

#[test]
fn reactor_findings_are_advisory_unless_denied() {
    let (code, stdout) = run_binary("blocking_bad", &[]);
    assert_eq!(code, 0, "reactor-blocking alone is advisory: {stdout}");
    assert!(stdout.contains("advisory"), "{stdout}");

    let (code, stdout) = run_binary("blocking_bad", &["--reactor-report"]);
    assert_eq!(code, 0);
    assert!(
        stdout.contains("reactor-readiness: 1 blocking leaf site(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("pump -> step -> finish"), "{stdout}");

    let (code, _) = run_binary("blocking_bad", &["--deny-reactor"]);
    assert_eq!(code, 1, "--deny-reactor upgrades to a hard failure");
}

#[test]
fn ratchet_fails_on_growth_and_passes_within_baseline() {
    // The fixture itself is clean: both copy waivers are cited and used.
    let (code, stdout) = run_binary("ratchet_regress", &[]);
    assert_eq!(
        code, 0,
        "fixture must be clean without the ratchet: {stdout}"
    );

    // 2 copy waivers vs a baseline of 1: growth, hard failure.
    let (code, stdout) = run_binary("ratchet_regress", &["--ratchet", "baseline.json"]);
    assert_eq!(code, 1, "waiver growth must fail the ratchet: {stdout}");
    assert!(stdout.contains("grew 1 -> 2"), "{stdout}");

    // Same tree vs a baseline of 2: within budget.
    let (code, stdout) = run_binary("ratchet_regress", &["--ratchet", "baseline_ok.json"]);
    assert_eq!(code, 0, "within-baseline debt must pass: {stdout}");
    assert!(stdout.contains("within baseline"), "{stdout}");

    // The JSON report carries the outcome.
    let (code, stdout) = run_binary("ratchet_regress", &["--json", "--ratchet", "baseline.json"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"ok\": false"), "{stdout}");
    assert!(
        stdout.contains("{\"kind\": \"copy\", \"baseline\": 1, \"current\": 2}"),
        "{stdout}"
    );
}

#[test]
fn update_ratchet_round_trips_through_the_binary() {
    let path = std::env::temp_dir().join("zc-audit-test-baseline.json");
    let _ = std::fs::remove_file(&path);

    let (code, stdout) = run_binary(
        "ratchet_regress",
        &["--update-ratchet", path.to_str().unwrap()],
    );
    assert_eq!(code, 0, "{stdout}");
    let written = std::fs::read_to_string(&path).expect("baseline written");
    assert!(written.contains("zc-audit-baseline/v1"), "{written}");
    assert!(written.contains("\"copy\": 2"), "{written}");

    // A freshly written baseline always ratchets clean.
    let (code, stdout) = run_binary("ratchet_regress", &["--ratchet", path.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("within baseline"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lock_order_findings_are_advisory_unless_denied() {
    let (code, stdout) = run_binary("lock_blocking_bad", &[]);
    assert_eq!(code, 0, "lock-order alone is advisory: {stdout}");
    assert!(stdout.contains("advisory"), "{stdout}");

    let (code, _) = run_binary("lock_blocking_bad", &["--deny-lock-order"]);
    assert_eq!(code, 1, "--deny-lock-order upgrades to a hard failure");

    // A mix with any non-advisory rule still fails without the flag.
    let (code, _) = run_binary("wire_dup_bad", &[]);
    assert_eq!(code, 1);
}
