//! Minimal TOML-subset parser for `zc-audit.toml`.
//!
//! The real `toml` crate is unavailable in this air-gapped workspace, so the
//! auditor parses the subset its own config actually uses: `[table]` headers,
//! `[[array-of-tables]]` headers, `key = "string"`, `key = ["array", "of",
//! "strings"]`, `key = true/false`, `key = 123`, and `#` comments. Anything
//! else is a hard error — better to reject a config than to silently skip a
//! rule someone thought was enabled.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<Value>),
    Table(Table),
}

/// A table: ordered key → value map.
pub type Table = BTreeMap<String, Value>;

/// Parse error with 1-based line number.
#[derive(Debug)]
pub struct TomlError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, msg: impl Into<String>) -> TomlError {
    TomlError {
        line,
        msg: msg.into(),
    }
}

/// Parse a document into its root table.
pub fn parse(src: &str) -> Result<Table, TomlError> {
    let mut root = Table::new();
    // Path of the table currently receiving keys, e.g. ["copy_path"] or
    // ["copy_path", "module", "<index>"] for array-of-tables elements.
    let mut current: Vec<String> = Vec::new();

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let path = parse_path(inner, lineno)?;
            let index = push_array_table(&mut root, &path, lineno)?;
            current = path;
            current.push(index.to_string());
        } else if let Some(inner) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let path = parse_path(inner, lineno)?;
            ensure_table(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(eq) = find_top_level_eq(line) {
            let key = line[..eq].trim();
            if key.is_empty() {
                return Err(err(lineno, "empty key"));
            }
            let val = parse_value(line[eq + 1..].trim(), lineno)?;
            let table = resolve_mut(&mut root, &current, lineno)?;
            if table.insert(key.to_string(), val).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err(lineno, format!("unsupported syntax: `{line}`")));
        }
    }
    Ok(root)
}

/// Strip a `#` comment, respecting `"` quoting.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_path(s: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let parts: Vec<String> = s.split('.').map(|p| p.trim().to_string()).collect();
    if parts.iter().any(|p| p.is_empty()) {
        return Err(err(lineno, format!("bad table path `{s}`")));
    }
    Ok(parts)
}

/// Find the `=` separating key from value (keys here are bare, never quoted).
fn find_top_level_eq(line: &str) -> Option<usize> {
    line.find('=')
}

fn parse_value(s: &str, lineno: usize) -> Result<Value, TomlError> {
    if let Some(rest) = s.strip_prefix('"') {
        let (v, consumed) = parse_string(rest, lineno)?;
        if !rest[consumed..].trim().is_empty() {
            return Err(err(lineno, "trailing characters after string"));
        }
        return Ok(Value::Str(v));
    }
    if s.starts_with('[') {
        return parse_array(s, lineno);
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(err(lineno, format!("unsupported value `{s}`")))
}

/// Parse a string body (after the opening quote); returns (value, bytes
/// consumed including the closing quote).
fn parse_string(s: &str, lineno: usize) -> Result<(String, usize), TomlError> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                other => {
                    return Err(err(
                        lineno,
                        format!(
                            "unsupported escape `\\{}`",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ),
                    ))
                }
            },
            c => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string"))
}

/// Parse a single-line `["a", "b"]` array of strings/ints/bools.
fn parse_array(s: &str, lineno: usize) -> Result<Value, TomlError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(lineno, "arrays must open and close on one line"))?;
    let mut items = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        if let Some(after) = rest.strip_prefix('"') {
            let (v, consumed) = parse_string(after, lineno)?;
            items.push(Value::Str(v));
            rest = after[consumed..].trim_start();
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let tok = rest[..end].trim();
            items.push(parse_value(tok, lineno)?);
            rest = rest[end..].trim_start();
        }
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(err(lineno, "expected `,` between array items"));
        }
    }
    Ok(Value::Array(items))
}

fn ensure_table<'a>(
    root: &'a mut Table,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Table, TomlError> {
    let mut t = root;
    for part in path {
        let entry = t
            .entry(part.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        t = match entry {
            Value::Table(inner) => inner,
            _ => return Err(err(lineno, format!("`{part}` is not a table"))),
        };
    }
    Ok(t)
}

/// Append a new element to the array-of-tables at `path`; returns its index.
fn push_array_table(root: &mut Table, path: &[String], lineno: usize) -> Result<usize, TomlError> {
    let (last, parents) = path.split_last().expect("non-empty path");
    let parent = ensure_table(root, parents, lineno)?;
    let entry = parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(items) => {
            items.push(Value::Table(Table::new()));
            Ok(items.len() - 1)
        }
        _ => Err(err(lineno, format!("`{last}` is not an array of tables"))),
    }
}

/// Resolve the table at `path` (array indices appear as decimal components).
fn resolve_mut<'a>(
    root: &'a mut Table,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Table, TomlError> {
    let mut t = root;
    let mut i = 0;
    while i < path.len() {
        let part = &path[i];
        let entry = t
            .get_mut(part)
            .ok_or_else(|| err(lineno, format!("missing table `{part}`")))?;
        match entry {
            Value::Table(inner) => t = inner,
            Value::Array(items) => {
                i += 1;
                let idx: usize = path[i]
                    .parse()
                    .map_err(|_| err(lineno, "bad array index"))?;
                match &mut items[idx] {
                    Value::Table(inner) => t = inner,
                    _ => return Err(err(lineno, "array element is not a table")),
                }
            }
            _ => return Err(err(lineno, format!("`{part}` is not a table"))),
        }
        i += 1;
    }
    Ok(t)
}

/// Convenience accessors used by config loading.
impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Array of strings, or `None` if not an all-string array.
    pub fn as_str_array(&self) -> Option<Vec<String>> {
        match self {
            Value::Array(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => None,
        }
    }

    pub fn as_table_array(&self) -> Option<Vec<&Table>> {
        match self {
            Value::Array(items) => items.iter().map(Value::as_table).collect(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_arrays_of_tables() {
        let doc = r#"
# top comment
[unsafe_audit]
paths = ["crates/buffers/src/"]
require_deny = true

[[copy_path.module]]
name = "zbytes"
paths = ["crates/buffers/src/zbytes.rs"]
idioms = ["to_vec", "clone"]

[[copy_path.module]]
name = "octet"
paths = ["crates/cdr/src/octet.rs"]
idioms = ["extend_from_slice"]
"#;
        let root = parse(doc).unwrap();
        let ua = root["unsafe_audit"].as_table().unwrap();
        assert_eq!(
            ua["paths"].as_str_array().unwrap(),
            vec!["crates/buffers/src/".to_string()]
        );
        assert_eq!(ua["require_deny"], Value::Bool(true));
        let modules = root["copy_path"].as_table().unwrap()["module"]
            .as_table_array()
            .unwrap();
        assert_eq!(modules.len(), 2);
        assert_eq!(modules[0]["name"].as_str(), Some("zbytes"));
        assert_eq!(
            modules[1]["idioms"].as_str_array().unwrap(),
            vec!["extend_from_slice".to_string()]
        );
    }

    #[test]
    fn comments_inside_strings_survive() {
        let root = parse(r##"key = "value # not a comment" # real comment"##).unwrap();
        assert_eq!(root["key"].as_str(), Some("value # not a comment"));
    }

    #[test]
    fn rejects_unsupported_syntax() {
        assert!(parse("key = { inline = 1 }").is_err());
        assert!(parse("key = 'single quotes'").is_err());
        assert!(parse("= 3").is_err());
        assert!(parse("[t]\nkey = \"a\"\nkey = \"b\"").is_err());
    }

    #[test]
    fn ints_and_bools() {
        let root = parse("a = 42\nb = false").unwrap();
        assert_eq!(root["a"], Value::Int(42));
        assert_eq!(root["b"], Value::Bool(false));
    }
}
