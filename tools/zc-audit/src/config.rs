//! Typed view of `zc-audit.toml`.

use crate::toml::{self, Table, Value};
use std::fmt;
use std::path::Path;

/// A copy idiom the copy-path rule can flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Idiom {
    /// `.to_vec()`
    ToVec,
    /// `.to_owned()`
    ToOwned,
    /// `.clone()` — except `Arc::clone(..)` / `Rc::clone(..)`, which are
    /// refcount bumps by construction and never flagged.
    Clone,
    /// `copy_from_slice(..)` (method or `slice::` form)
    CopyFromSlice,
    /// `.extend_from_slice(..)`
    ExtendFromSlice,
    /// `Vec::from(..)`
    VecFrom,
    /// `ptr::copy` / `ptr::copy_nonoverlapping` / bare `copy_nonoverlapping`
    PtrCopy,
    /// `format!(..)` (allocates + copies into a fresh String)
    Format,
    /// `.to_string()` / `.into_bytes()` style stringification
    ToString,
}

impl Idiom {
    pub fn parse(s: &str) -> Option<Idiom> {
        Some(match s {
            "to_vec" => Idiom::ToVec,
            "to_owned" => Idiom::ToOwned,
            "clone" => Idiom::Clone,
            "copy_from_slice" => Idiom::CopyFromSlice,
            "extend_from_slice" => Idiom::ExtendFromSlice,
            "vec_from" => Idiom::VecFrom,
            "ptr_copy" => Idiom::PtrCopy,
            "format" => Idiom::Format,
            "to_string" => Idiom::ToString,
            _ => return None,
        })
    }

    /// Human name used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            Idiom::ToVec => ".to_vec()",
            Idiom::ToOwned => ".to_owned()",
            Idiom::Clone => ".clone()",
            Idiom::CopyFromSlice => "copy_from_slice()",
            Idiom::ExtendFromSlice => "extend_from_slice()",
            Idiom::VecFrom => "Vec::from()",
            Idiom::PtrCopy => "ptr::copy*()",
            Idiom::Format => "format!()",
            Idiom::ToString => ".to_string()",
        }
    }
}

/// One declared zero-copy module: a set of files plus the idioms banned
/// within them.
#[derive(Debug, Clone)]
pub struct CopyPathModule {
    pub name: String,
    pub paths: Vec<String>,
    pub idioms: Vec<Idiom>,
}

/// Unsafe-audit rule configuration.
#[derive(Debug, Clone, Default)]
pub struct UnsafeAudit {
    /// Files (or directory prefixes ending in `/`) whose `unsafe` tokens
    /// each require a `// SAFETY:` comment.
    pub paths: Vec<String>,
    /// Crate roots that must declare `#![deny(unsafe_op_in_unsafe_fn)]`.
    pub deny_unsafe_op_roots: Vec<String>,
}

/// Meter-coverage rule configuration.
#[derive(Debug, Clone, Default)]
pub struct MeterCoverage {
    /// Files (or directory prefixes) where raw byte-copy primitives must sit
    /// in a function that also touches the copy meter.
    pub paths: Vec<String>,
    /// Identifiers whose presence in the enclosing function counts as
    /// metering (e.g. `meter`, `CopyMeter`, `record`).
    pub markers: Vec<String>,
}

/// zc-escape pass configuration (disabled when `types` is empty).
#[derive(Debug, Clone, Default)]
pub struct ZcEscape {
    /// Zero-copy type names whose values are tracked across call edges
    /// (e.g. `ZcBytes`, `AlignedBuf`, `PooledBuf`).
    pub types: Vec<String>,
    /// Idioms banned when applied to a tracked value in a reachable callee.
    pub idioms: Vec<Idiom>,
}

/// lock-order pass configuration (disabled when `paths` is empty).
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    /// Files (or directory prefixes) whose lock acquisitions are analyzed.
    pub paths: Vec<String>,
    /// Function names considered blocking at the leaves (e.g. `send_data`,
    /// `recv_control`, `connect`); blocking-ness propagates up call edges.
    pub blocking: Vec<String>,
}

/// wire-taint pass configuration (disabled when `paths` is empty).
#[derive(Debug, Clone, Default)]
pub struct TaintConfig {
    /// Files (or directory prefixes) whose decode-path sinks are audited.
    pub paths: Vec<String>,
    /// Function names whose parameters carry wire-controlled bytes (taint
    /// seeds); matched only inside `paths`.
    pub entrypoints: Vec<String>,
    /// Identifiers that bound a tainted value. A `let` rebind whose
    /// initializer mentions one (or any `checked_*`/`saturating_*` call)
    /// clears taint, and taint waiver reasons / `SAFETY:` citations must
    /// name one.
    pub clamps: Vec<String>,
    /// Callee names that allocate proportionally to an argument
    /// (`with_capacity`, `reserve`, this repo's `acquire`, …).
    pub allocs: Vec<String>,
}

/// A declared atomic-ordering protocol kind (see `[[atomics.protocol]]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Relaxed increment, Release decrement, Acquire fence before drop —
    /// the classic `Arc`-style refcount discipline.
    Refcount,
    /// Paired Acquire load / Release store publication on a sequence cell
    /// (named by `seq`), Relaxed data fields in between.
    Seqlock,
    /// AcqRel `compare_exchange`/`fetch_update` with a Relaxed-tolerant
    /// fast path: every non-CAS site must be Relaxed.
    CasRoll,
    /// Relaxed-only statistics counters; stronger orderings (especially
    /// `SeqCst`) are flagged as needless.
    CounterRelaxed,
    /// A stop/shutdown flag: Release store, Acquire load, AcqRel RMW.
    ReleaseFlag,
}

impl ProtocolKind {
    pub fn parse(s: &str) -> Option<ProtocolKind> {
        Some(match s {
            "refcount" => ProtocolKind::Refcount,
            "seqlock" => ProtocolKind::Seqlock,
            "cas-roll" => ProtocolKind::CasRoll,
            "counter-relaxed" => ProtocolKind::CounterRelaxed,
            "release-flag" => ProtocolKind::ReleaseFlag,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Refcount => "refcount",
            ProtocolKind::Seqlock => "seqlock",
            ProtocolKind::CasRoll => "cas-roll",
            ProtocolKind::CounterRelaxed => "counter-relaxed",
            ProtocolKind::ReleaseFlag => "release-flag",
        }
    }
}

/// One `[[atomics.protocol]]` block: a named module, its protocol kind, the
/// files it covers, and (for seqlock) the sequence-cell field names.
#[derive(Debug, Clone)]
pub struct AtomicProtocol {
    pub module: String,
    pub kind: ProtocolKind,
    pub paths: Vec<String>,
    /// Field names treated as the seqlock sequence cell (default `["seq"]`).
    pub seq: Vec<String>,
}

/// atomics-protocol pass configuration (disabled when `paths` is empty).
#[derive(Debug, Clone, Default)]
pub struct AtomicsConfig {
    /// Files (or directory prefixes) whose atomic sites are audited. Every
    /// site inside must fall in some protocol's paths.
    pub paths: Vec<String>,
    pub protocols: Vec<AtomicProtocol>,
}

/// reactor-readiness pass configuration (disabled when `entrypoints` is
/// empty).
#[derive(Debug, Clone, Default)]
pub struct ReactorConfig {
    /// Data-path function names the future reactor shards will own; the
    /// pass walks the name-call graph from these.
    pub entrypoints: Vec<String>,
    /// Callee names classified as blocking leaves (`lock`, `sleep`,
    /// `recv`, socket verbs, …).
    pub blocking: Vec<String>,
}

/// One wire-constant family: a hex literal prefix with a single defining
/// module (disabled when no families and no enums are configured).
#[derive(Debug, Clone)]
pub struct WireFamily {
    pub name: String,
    /// Hex prefix, e.g. `0x5A43` — any hex literal starting with these
    /// digits outside `defined_in` is flagged.
    pub prefix: String,
    pub defined_in: Vec<String>,
}

/// One wire enum whose discriminants must stay in bijection with its
/// decoder's match arms.
#[derive(Debug, Clone)]
pub struct WireEnum {
    pub name: String,
    pub file: String,
    /// Name of the decoding function in the same file (e.g. `from_octet`).
    pub decoder: String,
}

/// wire-consts pass configuration.
#[derive(Debug, Clone, Default)]
pub struct WireConsts {
    pub families: Vec<WireFamily>,
    pub enums: Vec<WireEnum>,
}

/// Full auditor configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes skipped entirely (relative to workspace root).
    pub exclude: Vec<String>,
    /// Valid `CopyLayer` names an `allow(copy)` waiver may cite.
    pub copy_layers: Vec<String>,
    pub modules: Vec<CopyPathModule>,
    pub unsafe_audit: UnsafeAudit,
    pub meter: MeterCoverage,
    pub escape: ZcEscape,
    pub lock_order: LockOrder,
    pub taint: TaintConfig,
    pub wire: WireConsts,
    pub atomics: AtomicsConfig,
    pub reactor: ReactorConfig,
}

#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zc-audit.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<toml::TomlError> for ConfigError {
    fn from(e: toml::TomlError) -> Self {
        ConfigError(e.to_string())
    }
}

fn bad(msg: impl Into<String>) -> ConfigError {
    ConfigError(msg.into())
}

fn str_array(t: &Table, key: &str, ctx: &str) -> Result<Vec<String>, ConfigError> {
    match t.get(key) {
        Some(v) => v
            .as_str_array()
            .ok_or_else(|| bad(format!("{ctx}: `{key}` must be an array of strings"))),
        None => Err(bad(format!("{ctx}: missing `{key}`"))),
    }
}

fn opt_str_array(t: &Table, key: &str, ctx: &str) -> Result<Vec<String>, ConfigError> {
    match t.get(key) {
        Some(v) => v
            .as_str_array()
            .ok_or_else(|| bad(format!("{ctx}: `{key}` must be an array of strings"))),
        None => Ok(Vec::new()),
    }
}

impl Config {
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let root = toml::parse(src)?;

        let exclude = match root.get("audit") {
            Some(v) => {
                let t = v.as_table().ok_or_else(|| bad("`audit` must be a table"))?;
                opt_str_array(t, "exclude", "[audit]")?
            }
            None => Vec::new(),
        };
        let copy_layers = match root.get("audit") {
            Some(Value::Table(t)) => str_array(t, "copy_layers", "[audit]")?,
            _ => return Err(bad("missing `[audit]` table with `copy_layers`")),
        };

        let mut modules = Vec::new();
        if let Some(cp) = root.get("copy_path") {
            let cp = cp
                .as_table()
                .ok_or_else(|| bad("`copy_path` must be a table"))?;
            let list = cp
                .get("module")
                .and_then(Value::as_table_array)
                .ok_or_else(|| bad("`[[copy_path.module]]` entries required"))?;
            for (i, m) in list.iter().enumerate() {
                let ctx = format!("[[copy_path.module]] #{}", i + 1);
                let name = m
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad(format!("{ctx}: missing `name`")))?
                    .to_string();
                let paths = str_array(m, "paths", &ctx)?;
                let idioms = str_array(m, "idioms", &ctx)?
                    .iter()
                    .map(|s| {
                        Idiom::parse(s).ok_or_else(|| bad(format!("{ctx}: unknown idiom `{s}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                modules.push(CopyPathModule {
                    name,
                    paths,
                    idioms,
                });
            }
        }

        let unsafe_audit = match root.get("unsafe_audit") {
            Some(v) => {
                let t = v
                    .as_table()
                    .ok_or_else(|| bad("`unsafe_audit` must be a table"))?;
                UnsafeAudit {
                    paths: str_array(t, "paths", "[unsafe_audit]")?,
                    deny_unsafe_op_roots: opt_str_array(
                        t,
                        "deny_unsafe_op_roots",
                        "[unsafe_audit]",
                    )?,
                }
            }
            None => UnsafeAudit::default(),
        };

        let meter = match root.get("meter_coverage") {
            Some(v) => {
                let t = v
                    .as_table()
                    .ok_or_else(|| bad("`meter_coverage` must be a table"))?;
                MeterCoverage {
                    paths: str_array(t, "paths", "[meter_coverage]")?,
                    markers: str_array(t, "markers", "[meter_coverage]")?,
                }
            }
            None => MeterCoverage::default(),
        };

        let escape = match root.get("zc_escape") {
            Some(v) => {
                let t = v
                    .as_table()
                    .ok_or_else(|| bad("`zc_escape` must be a table"))?;
                ZcEscape {
                    types: str_array(t, "types", "[zc_escape]")?,
                    idioms: str_array(t, "idioms", "[zc_escape]")?
                        .iter()
                        .map(|s| {
                            Idiom::parse(s)
                                .ok_or_else(|| bad(format!("[zc_escape]: unknown idiom `{s}`")))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                }
            }
            None => ZcEscape::default(),
        };

        let lock_order = match root.get("lock_order") {
            Some(v) => {
                let t = v
                    .as_table()
                    .ok_or_else(|| bad("`lock_order` must be a table"))?;
                LockOrder {
                    paths: str_array(t, "paths", "[lock_order]")?,
                    blocking: str_array(t, "blocking", "[lock_order]")?,
                }
            }
            None => LockOrder::default(),
        };

        let taint = match root.get("taint") {
            Some(v) => {
                let t = v.as_table().ok_or_else(|| bad("`taint` must be a table"))?;
                TaintConfig {
                    paths: str_array(t, "paths", "[taint]")?,
                    entrypoints: str_array(t, "entrypoints", "[taint]")?,
                    clamps: str_array(t, "clamps", "[taint]")?,
                    allocs: opt_str_array(t, "allocs", "[taint]")?,
                }
            }
            None => TaintConfig::default(),
        };

        let mut wire = WireConsts::default();
        if let Some(w) = root.get("wire_consts") {
            let w = w
                .as_table()
                .ok_or_else(|| bad("`wire_consts` must be a table"))?;
            if let Some(list) = w.get("family").and_then(Value::as_table_array) {
                for (i, f) in list.iter().enumerate() {
                    let ctx = format!("[[wire_consts.family]] #{}", i + 1);
                    let name = f
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| bad(format!("{ctx}: missing `name`")))?
                        .to_string();
                    let prefix = f
                        .get("prefix")
                        .and_then(Value::as_str)
                        .ok_or_else(|| bad(format!("{ctx}: missing `prefix`")))?
                        .to_string();
                    if !prefix.starts_with("0x") {
                        return Err(bad(format!("{ctx}: `prefix` must be a 0x… hex literal")));
                    }
                    wire.families.push(WireFamily {
                        name,
                        prefix,
                        defined_in: str_array(f, "defined_in", &ctx)?,
                    });
                }
            }
            if let Some(list) = w.get("enum").and_then(Value::as_table_array) {
                for (i, e) in list.iter().enumerate() {
                    let ctx = format!("[[wire_consts.enum]] #{}", i + 1);
                    let get = |key: &str| -> Result<String, ConfigError> {
                        e.get(key)
                            .and_then(Value::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| bad(format!("{ctx}: missing `{key}`")))
                    };
                    wire.enums.push(WireEnum {
                        name: get("name")?,
                        file: get("file")?,
                        decoder: get("decoder")?,
                    });
                }
            }
        }

        let mut atomics = AtomicsConfig::default();
        if let Some(v) = root.get("atomics") {
            let t = v
                .as_table()
                .ok_or_else(|| bad("`atomics` must be a table"))?;
            atomics.paths = str_array(t, "paths", "[atomics]")?;
            if let Some(list) = t.get("protocol").and_then(Value::as_table_array) {
                for (i, p) in list.iter().enumerate() {
                    let ctx = format!("[[atomics.protocol]] #{}", i + 1);
                    let module = p
                        .get("module")
                        .and_then(Value::as_str)
                        .ok_or_else(|| bad(format!("{ctx}: missing `module`")))?
                        .to_string();
                    let kind_str = p
                        .get("kind")
                        .and_then(Value::as_str)
                        .ok_or_else(|| bad(format!("{ctx}: missing `kind`")))?;
                    let kind = ProtocolKind::parse(kind_str).ok_or_else(|| {
                        bad(format!(
                            "{ctx}: unknown protocol kind `{kind_str}` (expected one of \
                             refcount, seqlock, cas-roll, counter-relaxed, release-flag)"
                        ))
                    })?;
                    let paths = str_array(p, "paths", &ctx)?;
                    let mut seq = opt_str_array(p, "seq", &ctx)?;
                    if seq.is_empty() {
                        seq.push("seq".to_string());
                    }
                    atomics.protocols.push(AtomicProtocol {
                        module,
                        kind,
                        paths,
                        seq,
                    });
                }
            }
        }

        let reactor = match root.get("reactor") {
            Some(v) => {
                let t = v
                    .as_table()
                    .ok_or_else(|| bad("`reactor` must be a table"))?;
                ReactorConfig {
                    entrypoints: str_array(t, "entrypoints", "[reactor]")?,
                    blocking: str_array(t, "blocking", "[reactor]")?,
                }
            }
            None => ReactorConfig::default(),
        };

        Ok(Config {
            exclude,
            copy_layers,
            modules,
            unsafe_audit,
            meter,
            escape,
            lock_order,
            taint,
            wire,
            atomics,
            reactor,
        })
    }

    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| bad(format!("cannot read {}: {e}", path.display())))?;
        Config::parse(&src)
    }
}

/// Does `rel` (forward-slash relative path) match `pattern`? A pattern
/// ending in `/` is a directory prefix; anything else is an exact file path.
pub fn path_matches(rel: &str, pattern: &str) -> bool {
    if let Some(prefix) = pattern.strip_suffix('/') {
        rel.strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
            || rel.starts_with(pattern)
    } else {
        rel == pattern
    }
}

/// Does `rel` match any of `patterns`?
pub fn path_matches_any(rel: &str, patterns: &[String]) -> bool {
    patterns.iter().any(|p| path_matches(rel, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[audit]
exclude = ["tools/zc-audit/tests/fixtures/"]
copy_layers = ["AppFill", "Marshal", "Demarshal"]

[[copy_path.module]]
name = "buffers-zbytes"
paths = ["crates/buffers/src/zbytes.rs"]
idioms = ["to_vec", "clone", "copy_from_slice"]

[unsafe_audit]
paths = ["crates/buffers/src/"]
deny_unsafe_op_roots = ["crates/buffers/src/lib.rs"]

[meter_coverage]
paths = ["crates/buffers/src/aligned.rs"]
markers = ["meter", "CopyMeter", "record"]
"#;

    #[test]
    fn parses_sample() {
        let c = Config::parse(SAMPLE).unwrap();
        assert_eq!(c.copy_layers.len(), 3);
        assert_eq!(c.modules.len(), 1);
        assert_eq!(c.modules[0].idioms.len(), 3);
        assert_eq!(c.unsafe_audit.paths, vec!["crates/buffers/src/"]);
        assert_eq!(c.meter.markers.len(), 3);
    }

    #[test]
    fn parses_interproc_sections() {
        let doc = format!(
            "{SAMPLE}\n\
             [zc_escape]\n\
             types = [\"ZcBytes\", \"AlignedBuf\"]\n\
             idioms = [\"to_vec\", \"clone\"]\n\
             \n\
             [lock_order]\n\
             paths = [\"crates/\"]\n\
             blocking = [\"send_data\", \"connect\"]\n\
             \n\
             [[wire_consts.family]]\n\
             name = \"zc-tag\"\n\
             prefix = \"0x5A43\"\n\
             defined_in = [\"crates/cdr/src/wire.rs\"]\n\
             \n\
             [[wire_consts.enum]]\n\
             name = \"MessageType\"\n\
             file = \"crates/giop/src/msg.rs\"\n\
             decoder = \"from_octet\"\n"
        );
        let c = Config::parse(&doc).unwrap();
        assert_eq!(c.escape.types, vec!["ZcBytes", "AlignedBuf"]);
        assert_eq!(c.escape.idioms.len(), 2);
        assert_eq!(c.lock_order.paths, vec!["crates/"]);
        assert_eq!(c.lock_order.blocking.len(), 2);
        assert_eq!(c.wire.families.len(), 1);
        assert_eq!(c.wire.families[0].prefix, "0x5A43");
        assert_eq!(c.wire.enums.len(), 1);
        assert_eq!(c.wire.enums[0].decoder, "from_octet");
    }

    #[test]
    fn interproc_sections_default_off() {
        let c = Config::parse(SAMPLE).unwrap();
        assert!(c.escape.types.is_empty());
        assert!(c.lock_order.paths.is_empty());
        assert!(c.taint.paths.is_empty());
        assert!(c.wire.families.is_empty() && c.wire.enums.is_empty());
    }

    #[test]
    fn parses_taint_section() {
        let doc = format!(
            "{SAMPLE}\n\
             [taint]\n\
             paths = [\"crates/cdr/src/\", \"crates/giop/src/\"]\n\
             entrypoints = [\"decode\", \"read_frame\"]\n\
             clamps = [\"MAX_GIOP_MESSAGE\", \"bounded_capacity\", \"min\"]\n\
             allocs = [\"with_capacity\", \"acquire\"]\n"
        );
        let c = Config::parse(&doc).unwrap();
        assert_eq!(c.taint.paths.len(), 2);
        assert_eq!(c.taint.entrypoints, vec!["decode", "read_frame"]);
        assert_eq!(c.taint.clamps.len(), 3);
        assert_eq!(c.taint.allocs, vec!["with_capacity", "acquire"]);
    }

    #[test]
    fn parses_atomics_and_reactor_sections() {
        let doc = format!(
            "{SAMPLE}\n\
             [atomics]\n\
             paths = [\"crates/trace/src/\", \"crates/buffers/src/\"]\n\
             \n\
             [[atomics.protocol]]\n\
             module = \"trace-seqlock\"\n\
             kind = \"seqlock\"\n\
             paths = [\"crates/trace/src/recorder.rs\"]\n\
             seq = [\"seq\"]\n\
             \n\
             [[atomics.protocol]]\n\
             module = \"trace-windows\"\n\
             kind = \"cas-roll\"\n\
             paths = [\"crates/trace/src/windows.rs\"]\n\
             \n\
             [reactor]\n\
             entrypoints = [\"recv_message\", \"dispatch\"]\n\
             blocking = [\"lock\", \"sleep\", \"recv\"]\n"
        );
        let c = Config::parse(&doc).unwrap();
        assert_eq!(c.atomics.paths.len(), 2);
        assert_eq!(c.atomics.protocols.len(), 2);
        assert_eq!(c.atomics.protocols[0].kind, ProtocolKind::Seqlock);
        assert_eq!(c.atomics.protocols[0].seq, vec!["seq"]);
        assert_eq!(c.atomics.protocols[1].kind, ProtocolKind::CasRoll);
        // `seq` defaults to ["seq"] when omitted.
        assert_eq!(c.atomics.protocols[1].seq, vec!["seq"]);
        assert_eq!(c.reactor.entrypoints, vec!["recv_message", "dispatch"]);
        assert_eq!(c.reactor.blocking.len(), 3);
    }

    #[test]
    fn atomics_and_reactor_default_off() {
        let c = Config::parse(SAMPLE).unwrap();
        assert!(c.atomics.paths.is_empty() && c.atomics.protocols.is_empty());
        assert!(c.reactor.entrypoints.is_empty());
    }

    #[test]
    fn unknown_protocol_kind_rejected() {
        let doc = format!(
            "{SAMPLE}\n\
             [atomics]\n\
             paths = [\"crates/\"]\n\
             [[atomics.protocol]]\n\
             module = \"m\"\n\
             kind = \"lock-free-magic\"\n\
             paths = [\"crates/x.rs\"]\n"
        );
        let err = Config::parse(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown protocol kind"));
    }

    #[test]
    fn unknown_idiom_rejected() {
        let doc = SAMPLE.replace("\"to_vec\"", "\"memmove\"");
        assert!(Config::parse(&doc).is_err());
    }

    #[test]
    fn path_matching() {
        assert!(path_matches(
            "crates/buffers/src/zbytes.rs",
            "crates/buffers/src/zbytes.rs"
        ));
        assert!(path_matches(
            "crates/buffers/src/zbytes.rs",
            "crates/buffers/src/"
        ));
        assert!(path_matches(
            "crates/buffers/src/deep/x.rs",
            "crates/buffers/src/"
        ));
        assert!(!path_matches("crates/buffers2/src/x.rs", "crates/buffers/"));
        assert!(!path_matches(
            "crates/buffers/src/zbytes.rs",
            "crates/buffers/src/pool.rs"
        ));
    }
}
