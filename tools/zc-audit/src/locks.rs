//! lock-order — held-lock propagation, cycle detection, and blocking-call
//! checks.
//!
//! Buffer-loaning transports (U-Net, fbufs, this repo's deposit scheme) are
//! notoriously easy to deadlock: the connection mutex serializes the wire,
//! and any second lock — or a blocking transport call — taken while it is
//! held couples independent wait graphs. This pass:
//!
//! 1. collects every `Mutex`/`RwLock` acquisition (`.lock()`, `.read()`,
//!    `.write()` with no arguments) in the configured paths, with the
//!    parser's conservative guard-hold spans;
//! 2. computes, per function *name*, the closure of lock names its call
//!    tree can acquire, and whether its call tree can reach a configured
//!    blocking leaf (`send_data`, `recv_control`, `connect`, …);
//! 3. reports (a) a lock re-acquired while already held (self-deadlock —
//!    the vendored parking_lot locks are non-reentrant), (b) a lock held
//!    across a blocking call, and (c) cycles in the lock-ordering graph,
//!    where edge `A → B` means B is acquired (directly or via a callee)
//!    while A is held.
//!
//! Lock identity is textual — the field name the acquisition method is
//! called on. Two fields with one name alias into one node (adds edges,
//! over-approximates); one lock reached through differently-named bindings
//! splits into two nodes (a documented false-negative). Waive with
//! `allow(lock-held)` at the acquisition or call line, explaining why the
//! hold cannot deadlock.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::config::{path_matches_any, Config};
use crate::rules::{waiver_for, Violation, Waiver, WaiverKind};
use crate::FileAnalysis;

/// Std-prelude method names treated as *opaque* by name-level resolution.
/// Unioning every workspace `fn len` into one call-graph node makes
/// `HashMap::len` alias `NamingContextServant::len` and floods the ordering
/// graph with phantom edges; likewise `std::mem::drop(guard)` — the
/// guard-release idiom — would alias every `Drop::drop` impl. Calls to
/// these names never propagate blocking-ness or acquisition sets. A name
/// the config explicitly lists as a blocking leaf stays a blocking leaf.
/// The cost is a documented false negative: a lock acquired inside a
/// workspace fn that shadows one of these names is invisible to callers.
pub(crate) const OPAQUE_CALLEES: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "drop",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "min",
    "new",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "pop",
    "position",
    "push",
    "remove",
    "replace",
    "retain",
    "rev",
    "sort",
    "split",
    "take",
    "then",
    "then_some",
    "to_owned",
    "to_string",
    "to_vec",
    "truncate",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "zip",
];

pub(crate) fn run(
    files: &[FileAnalysis],
    cfg: &Config,
    waivers: &[BTreeMap<u32, Waiver>],
    out: &mut Vec<Violation>,
) {
    let lc = &cfg.lock_order;
    if lc.paths.is_empty() {
        return;
    }
    let opaque =
        |name: &str| OPAQUE_CALLEES.contains(&name) && !lc.blocking.iter().any(|b| b == name);

    // Name-level blocking closure: a function is blocking if its name is a
    // configured leaf or it calls a blocking name. Computed over the whole
    // workspace — blocking-ness crosses crate lines.
    let mut blocking: HashSet<String> = lc.blocking.iter().cloned().collect();
    loop {
        let mut changed = false;
        for file in files {
            for f in &file.items {
                if opaque(&f.name) || blocking.contains(&f.name) {
                    continue;
                }
                if f.calls.iter().any(|c| blocking.contains(&c.callee)) {
                    blocking.insert(f.name.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Acquisition closure per function name: the lock names the function or
    // anything it (transitively, by name) calls can acquire.
    let mut acq: HashMap<String, BTreeSet<String>> = HashMap::new();
    for file in files {
        for f in &file.items {
            let entry = acq.entry(f.name.clone()).or_default();
            entry.extend(f.locks.iter().map(|l| l.lock.clone()));
        }
    }
    loop {
        let mut changed = false;
        for file in files {
            for f in &file.items {
                let mut add = BTreeSet::new();
                for c in &f.calls {
                    if opaque(&c.callee) {
                        continue;
                    }
                    if let Some(locks) = acq.get(&c.callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
                let entry = acq.entry(f.name.clone()).or_default();
                let before = entry.len();
                entry.extend(add);
                changed |= entry.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Walk held ranges: blocking-call findings, re-acquire findings, and
    // ordering edges.
    struct Edge {
        from: String,
        to: String,
        file: usize,
        line: u32,
        lock_line: u32,
        waived: bool,
    }
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen_blocking: HashSet<(usize, u32, String, String)> = HashSet::new();

    for (fi, file) in files.iter().enumerate() {
        if !path_matches_any(&file.rel, &lc.paths) || file.in_test_tree {
            continue;
        }
        for f in &file.items {
            if f.is_test {
                continue;
            }
            for l in &f.locks {
                let held = |idx: usize| idx > l.tok_idx && idx < l.hold_end;
                let lock_waived = |line: u32| {
                    waiver_for(&waivers[fi], line, &[WaiverKind::LockHeld]).is_some()
                        || waiver_for(&waivers[fi], l.line, &[WaiverKind::LockHeld]).is_some()
                };
                for m in &f.locks {
                    if !held(m.tok_idx) {
                        continue;
                    }
                    if m.lock == l.lock {
                        if !lock_waived(m.line) {
                            out.push(Violation {
                                file: file.rel.clone(),
                                line: m.line,
                                rule: "lock-order",
                                msg: format!(
                                    "lock `{}` re-acquired in `fn {}` while a guard from \
                                     line {} may still be held (parking_lot locks are \
                                     non-reentrant: self-deadlock)",
                                    m.lock, f.name, l.line
                                ),
                            });
                        }
                    } else {
                        edges.push(Edge {
                            from: l.lock.clone(),
                            to: m.lock.clone(),
                            file: fi,
                            line: m.line,
                            lock_line: l.line,
                            waived: lock_waived(m.line),
                        });
                    }
                }
                for c in &f.calls {
                    if !held(c.tok_idx) {
                        continue;
                    }
                    // Skip the acquisition expressions themselves.
                    if f.locks.iter().any(|o| o.tok_idx == c.tok_idx) {
                        continue;
                    }
                    if blocking.contains(&c.callee)
                        && seen_blocking.insert((fi, c.line, c.callee.clone(), l.lock.clone()))
                        && !lock_waived(c.line)
                    {
                        out.push(Violation {
                            file: file.rel.clone(),
                            line: c.line,
                            rule: "lock-order",
                            msg: format!(
                                "lock `{}` (acquired line {}) held across blocking call \
                                 `{}` in `fn {}`; drop the guard first or waive with \
                                 allow(lock-held) explaining why this cannot deadlock",
                                l.lock, l.line, c.callee, f.name
                            ),
                        });
                    }
                    if opaque(&c.callee) {
                        continue;
                    }
                    if let Some(locks) = acq.get(&c.callee) {
                        for b in locks {
                            if *b != l.lock {
                                edges.push(Edge {
                                    from: l.lock.clone(),
                                    to: b.clone(),
                                    file: fi,
                                    line: c.line,
                                    lock_line: l.line,
                                    waived: lock_waived(c.line),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the ordering graph (distinct lock names only —
    // same-lock re-acquisition is reported above). The graph is tiny, so
    // report every minimal 2+-node strongly connected component once.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                for &m in next {
                    if m == to {
                        return true;
                    }
                    stack.push(m);
                }
            }
        }
        false
    };
    let mut reported: BTreeSet<BTreeSet<&str>> = BTreeSet::new();
    for e in &edges {
        if e.from == e.to || !reaches(&e.to, &e.from) {
            continue;
        }
        let pair: BTreeSet<&str> = [e.from.as_str(), e.to.as_str()].into();
        if !reported.insert(pair) {
            continue;
        }
        // A cycle is tolerated only when every participating edge between
        // the two locks carries a waiver (breaking any edge breaks it, but
        // an unwaived edge is an unexplained edge).
        let cycle_edges: Vec<&Edge> = edges
            .iter()
            .filter(|o| (o.from == e.from && o.to == e.to) || (o.from == e.to && o.to == e.from))
            .collect();
        if cycle_edges.iter().all(|o| o.waived) {
            continue;
        }
        let site = cycle_edges
            .iter()
            .min_by_key(|o| (&files[o.file].rel, o.line))
            .unwrap();
        let mut locations: Vec<String> = cycle_edges
            .iter()
            .map(|o| {
                format!(
                    "{}→{} at {}:{} (held since line {})",
                    o.from, o.to, files[o.file].rel, o.line, o.lock_line
                )
            })
            .collect();
        locations.dedup();
        out.push(Violation {
            file: files[site.file].rel.clone(),
            line: site.line,
            rule: "lock-order",
            msg: format!(
                "lock-order cycle between `{}` and `{}` (potential deadlock): {}",
                e.from,
                e.to,
                locations.join("; ")
            ),
        });
    }
}
