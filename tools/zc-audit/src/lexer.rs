//! A minimal Rust lexer: just enough to audit source reliably.
//!
//! The auditor must never mistake the contents of a string literal or a
//! comment for code (`"call .to_vec() here"` in a doc string is not a
//! violation), and must see comments *as data* (waivers and `SAFETY:` notes
//! live there). A full `syn` parse is unavailable offline, and line-based
//! grepping gets both of the above wrong — so this hand-rolled lexer
//! tokenizes identifiers and punctuation with line numbers, skips string
//! and char literals (including raw and byte strings), distinguishes
//! lifetimes from char literals, and captures comments separately.

/// Kinds of tokens the audit rules inspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (opaque).
    Number,
    /// Single punctuation character.
    Punct,
    /// String/char literal of any flavor (contents dropped).
    Literal,
    /// Lifetime like `'a` (opaque).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment with the 1-based line it *ends* on (for `/* */`, the line of
/// the closing delimiter — what matters for "comment directly above code").
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Token and comment streams for one source file.
#[derive(Debug, Default)]
pub struct Scanned {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated literals/comments end the affected token at
/// EOF rather than erroring: the auditor runs on code that `rustc` already
/// accepts, so malformed input only occurs in fixtures.
pub fn scan(src: &str) -> Scanned {
    let b = src.as_bytes();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let bump_lines = |s: &[u8]| s.iter().filter(|&&c| c == b'\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += bump_lines(&b[start..i]);
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i);
                line += bump_lines(&b[start..i]);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' | b'c' if is_raw_or_byte_string(b, i) => {
                let start = i;
                i = skip_prefixed_string(b, i);
                line += bump_lines(&b[start..i]);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if n == b'_' || n.is_ascii_alphabetic())
                    && after != Some(b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = j;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i] == b'.' || b[i].is_ascii_alphanumeric())
                {
                    // Stop a number at `..` (range operator), not inside it.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                // Keep the literal text: the wire-consts pass matches
                // protocol constants (`0x5A43_0001`) by their digits.
                out.toks.push(Tok {
                    kind: TokKind::Number,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Past-the-end index of the plain string starting at `b[i] == '"'`.
fn skip_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Does `b[i..]` begin a raw/byte/C string prefix (`r"`, `r#"`, `b"`,
/// `br#"`, `c"`, …) as opposed to an identifier starting with that letter?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `cr`), then hashes, then a quote.
    for _ in 0..2 {
        match b.get(j) {
            Some(b'r') | Some(b'b') | Some(b'c') => j += 1,
            _ => break,
        }
    }
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"') && j > i
}

/// Past-the-end index of the raw/byte string starting at `b[i]`.
fn skip_prefixed_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    let mut raw = false;
    for _ in 0..2 {
        match b.get(j) {
            Some(b'r') => {
                raw = true;
                j += 1;
            }
            Some(b'b') | Some(b'c') => j += 1,
            _ => break,
        }
    }
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    j += 1;
    if raw {
        // Ends at `"` followed by `hashes` hashes; no escapes.
        while j < b.len() {
            if b[j] == b'"'
                && b[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == b'#')
                    .count()
                    == hashes
            {
                return j + 1 + hashes;
            }
            j += 1;
        }
        j
    } else {
        skip_string(b, j - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_are_opaque() {
        let ids = idents(r#"let x = "call .to_vec() here"; y.to_vec();"#);
        assert_eq!(ids, vec!["let", "x", "y", "to_vec"]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let ids = idents(r##"let p = r#"a "quoted" .clone()"#; real.clone();"##);
        assert_eq!(ids, vec!["let", "p", "real", "clone"]);
    }

    #[test]
    fn comments_captured_not_tokenized() {
        let s = scan("// zc-audit: allow(copy) — reason\nx.copy_from_slice(&y);");
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("zc-audit"));
        assert_eq!(s.comments[0].line, 1);
        assert!(s
            .toks
            .iter()
            .any(|t| t.text == "copy_from_slice" && t.line == 2));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let s = scan("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = s.toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still comment */ code();");
        assert_eq!(s.comments.len(), 1);
        assert!(s.toks.iter().any(|t| t.text == "code"));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let s = scan("let a = \"two\nlines\";\nb();");
        let b_tok = s.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn number_text_retained() {
        let s = scan("const A: u32 = 0x5A43_0001; let f = 1.5; let n = 42u16;");
        let nums: Vec<&str> = s
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0x5A43_0001", "1.5", "42u16"]);
    }

    #[test]
    fn byte_strings_and_numbers() {
        let ids = idents("let v = b\"bytes .to_vec()\"; let n = 0x1f_u32; w.clone();");
        assert_eq!(ids, vec!["let", "v", "let", "n", "w", "clone"]);
    }
}
