//! Item-level Rust parser for the inter-procedural passes.
//!
//! Built directly on the lexer's token stream: function items, impl blocks,
//! call expressions and lock-guard bindings — deliberately *not* a full
//! grammar. The passes that consume this (zc-escape, lock-order) are
//! name-based over-approximations, so the parser only needs to recover:
//!
//! - every `fn` with a body: name, enclosing `impl` type, parameter names
//!   with the identifiers appearing in their types, return-type identifiers;
//! - every call expression inside that body: callee name, method receiver
//!   (the identifier left of the final `.`), and the identifiers appearing
//!   in the argument list;
//! - every `Mutex`/`RwLock` acquisition (`.lock()` / `.read()` / `.write()`
//!   with no arguments): the lock's field name, the guard binding if the
//!   result is `let`-bound, and a conservative token span over which the
//!   guard is considered held.
//!
//! Guard-hold approximation: a bound guard is held from the acquisition to
//! the *last* `drop(guard)` in the enclosing block (branch-insensitive: if
//! any path drops late, every path is treated as dropping late), clipped to
//! the end of the enclosing `{ … }` block, since a guard cannot outlive its
//! block. An unbound temporary (`self.m.lock().get(..)`) is held to the end
//! of its statement (the next `;`). Early `return`/`?` exits are ignored —
//! both choices over-approximate, which is the correct direction for a
//! deadlock auditor; waivers absorb the false positives they cause.

use crate::lexer::{Tok, TokKind};

/// One declared parameter. Tuple patterns produce one `Param` per bound
/// identifier, each carrying the identifiers of the whole type.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// Identifier tokens appearing in the type (e.g. `["Vec", "ZcBytes"]`).
    pub ty: Vec<String>,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name: `foo(..)`, `x.foo(..)` and `path::foo(..)` all
    /// yield `foo`.
    pub callee: String,
    /// For method calls, the identifier immediately left of the final `.`
    /// (`a.b.foo()` → `b`; `self.foo()` → `self`).
    pub recv: Option<String>,
    /// Token index of the callee identifier.
    pub tok_idx: usize,
    pub line: u32,
    /// Identifier tokens appearing anywhere in the argument list.
    pub args: Vec<String>,
    /// Token index of the closing `)` of the argument list.
    pub args_close: usize,
}

/// One atomic operation site: a call to an atomic method (`load`, `store`,
/// `compare_exchange`, `fetch_add`, …, or a bare `fence`) whose argument
/// list names at least one `Ordering::*` variant. Requiring the ordering
/// ident filters out non-atomic methods that share these names
/// (`io::Read::read`-style `load`/`store` helpers, `cmp::Ordering` uses).
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// The atomic method name (`load`, `fetch_add`, `compare_exchange`,
    /// `fence`, …).
    pub method: String,
    /// Identifier left of the final `.` — the atomic cell's field name
    /// (`self.seq.store(..)` → `seq`). `None` for bare `fence(..)` calls
    /// and indexed receivers.
    pub recv: Option<String>,
    /// Memory orderings named in the argument list, in argument order
    /// (`compare_exchange` lists success then failure).
    pub orderings: Vec<String>,
    pub line: u32,
    /// Token index of the method identifier.
    pub tok_idx: usize,
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Textual lock identity: the identifier the acquisition method is
    /// called on (`self.inner.conn_cache.lock()` → `conn_cache`).
    pub lock: String,
    /// Guard binding name when the acquisition is `let`-bound.
    pub guard: Option<String>,
    /// Token index of the `lock`/`read`/`write` identifier.
    pub tok_idx: usize,
    pub line: u32,
    /// Token index up to which the guard is conservatively considered held.
    pub hold_end: usize,
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Type name of the innermost enclosing `impl` block, if any.
    pub qual: Option<String>,
    pub line: u32,
    /// Token indices of the body's `{` and `}`.
    pub body: (usize, usize),
    pub params: Vec<Param>,
    /// Identifier tokens appearing in the return type.
    pub ret: Vec<String>,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    pub atomics: Vec<AtomicSite>,
    /// Inside a `#[cfg(test)] mod` span.
    pub is_test: bool,
}

impl FnItem {
    /// Does `idx` fall inside this function's body?
    pub fn contains(&self, idx: usize) -> bool {
        idx > self.body.0 && idx < self.body.1
    }
}

/// Identifiers that look like calls when followed by `(` but are keywords.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "loop", "match", "return", "break", "continue", "let",
    "move", "fn", "unsafe", "as", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod",
];

/// Parse every `fn` item with a body out of `toks`. `test_spans` are the
/// inclusive token spans of `#[cfg(test)] mod` items (see
/// [`crate::rules::cfg_test_mod_spans`]).
pub fn parse_items(toks: &[Tok], test_spans: &[(usize, usize)]) -> Vec<FnItem> {
    let impls = impl_spans(toks);
    let mut fns: Vec<FnItem> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let Some(item) = parse_fn_header(toks, i, &impls, test_spans) else {
            i += 1;
            continue;
        };
        // Resume after the signature, not after the body: nested fns must
        // be discovered too (their spans are excluded from the parent scan).
        i = item.body.0 + 1;
        fns.push(item);
    }

    // Second phase: scan each body for calls and locks, excluding the spans
    // of nested fn items so their statements are attributed once.
    for k in 0..fns.len() {
        let (open, close) = fns[k].body;
        let children: Vec<(usize, usize)> = fns
            .iter()
            .filter(|f| f.body.0 > open && f.body.1 < close)
            .map(|f| f.body)
            .collect();
        let (calls, locks, atomics) = scan_body(toks, open, close, &children);
        fns[k].calls = calls;
        fns[k].locks = locks;
        fns[k].atomics = atomics;
    }
    fns
}

/// Parse one `fn` header starting at token `fn_idx` (`fn`). Returns `None`
/// for bodyless declarations (trait methods, extern fns).
fn parse_fn_header(
    toks: &[Tok],
    fn_idx: usize,
    impls: &[(String, usize, usize)],
    test_spans: &[(usize, usize)],
) -> Option<FnItem> {
    let name_tok = &toks[fn_idx + 1];
    let mut j = fn_idx + 2;
    if tok_is(toks, j, "<") {
        j = skip_angles(toks, j);
    }
    if !tok_is(toks, j, "(") {
        return None;
    }
    let (params, params_close) = parse_params(toks, j)?;

    let mut ret = Vec::new();
    let mut k = params_close + 1;
    if tok_is(toks, k, "-") && tok_is(toks, k + 1, ">") {
        k += 2;
        while k < toks.len() && !matches!(toks[k].text.as_str(), "{" | ";" | "where") {
            if toks[k].kind == TokKind::Ident {
                ret.push(toks[k].text.clone());
            }
            k += 1;
        }
    }

    let body = brace_span(toks, params_close)?;
    // Innermost enclosing impl wins (nested impls are vanishingly rare, but
    // the tightest span is the right answer if they occur).
    let qual = impls
        .iter()
        .filter(|&&(_, open, close)| fn_idx > open && fn_idx < close)
        .min_by_key(|&&(_, open, close)| close - open)
        .map(|(name, _, _)| name.clone());
    let is_test = test_spans.iter().any(|&(a, b)| fn_idx >= a && fn_idx <= b);

    Some(FnItem {
        name: name_tok.text.clone(),
        qual,
        line: name_tok.line,
        body,
        params,
        ret,
        calls: Vec::new(),
        locks: Vec::new(),
        atomics: Vec::new(),
        is_test,
    })
}

/// `(type_name, body_open, body_close)` for every `impl` block. For
/// `impl Trait for Type` the type is `Type`; paths keep their last segment.
fn impl_spans(toks: &[Tok]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "impl") {
            continue;
        }
        let Some((open, close)) = brace_span(toks, i) else {
            continue;
        };
        let mut j = i + 1;
        if tok_is(toks, j, "<") {
            j = skip_angles(toks, j);
        }
        // The self type starts after the last depth-0 `for` (HRTB `for<'a>`
        // sits inside angle brackets or is followed by `<`, so it never
        // looks like the trait/type separator).
        let mut seg_start = j;
        let mut depth = 0i32;
        for k in j..open {
            match toks[k].text.as_str() {
                "<" => depth += 1,
                ">" if k > 0 && matches!(toks[k - 1].text.as_str(), "-" | "=") => {}
                ">" => depth = (depth - 1).max(0),
                "for" if depth == 0 && !tok_is(toks, k + 1, "<") => seg_start = k + 1,
                _ => {}
            }
        }
        // Last depth-0 path identifier before `where`/`{` names the type.
        let mut name = None;
        let mut depth = 0i32;
        for k in seg_start..open {
            match toks[k].text.as_str() {
                "<" => depth += 1,
                ">" if k > 0 && matches!(toks[k - 1].text.as_str(), "-" | "=") => {}
                ">" => depth = (depth - 1).max(0),
                "where" if depth == 0 => break,
                t if depth == 0 && toks[k].kind == TokKind::Ident && t != "dyn" => {
                    name = Some(t.to_string())
                }
                _ => {}
            }
        }
        if let Some(name) = name {
            spans.push((name, open, close));
        }
    }
    spans
}

/// Parse the parameter list starting at `open` (`(`). Returns the params
/// and the index of the matching `)`.
fn parse_params(toks: &[Tok], open: usize) -> Option<(Vec<Param>, usize)> {
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut bracket = 0i32;
    let mut chunks: Vec<(usize, usize)> = Vec::new();
    let mut chunk_start = open + 1;
    let mut close = None;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                if paren == 0 {
                    chunks.push((chunk_start, j));
                    close = Some(j);
                    break;
                }
            }
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "<" => angle += 1,
            ">" if j > 0 && matches!(toks[j - 1].text.as_str(), "-" | "=") => {}
            ">" => angle = (angle - 1).max(0),
            "," if paren == 1 && angle == 0 && bracket == 0 => {
                chunks.push((chunk_start, j));
                chunk_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    let close = close?;

    let mut params = Vec::new();
    for (a, b) in chunks {
        if a >= b {
            continue;
        }
        params.extend(params_from_chunk(toks, a, b));
    }
    Some((params, close))
}

/// Split one parameter chunk (`pattern: Type` or a `self` receiver) into
/// `Param`s.
fn params_from_chunk(toks: &[Tok], a: usize, b: usize) -> Vec<Param> {
    // Find the pattern/type `:` at top nesting depth; `::` is a path.
    let mut colon = None;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut bracket = 0i32;
    for k in a..b {
        match toks[k].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            ":" if paren == 0 && angle == 0 && bracket == 0 => {
                let part_of_path = tok_is(toks, k + 1, ":") || (k > a && tok_is(toks, k - 1, ":"));
                if !part_of_path {
                    colon = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }

    match colon {
        None => {
            // Receiver shorthand: `self`, `&self`, `&mut self`, `mut self`.
            if toks[a..b].iter().any(|t| t.text == "self") {
                vec![Param {
                    name: "self".into(),
                    ty: Vec::new(),
                }]
            } else {
                Vec::new()
            }
        }
        Some(ci) => {
            let ty: Vec<String> = toks[ci + 1..b]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect();
            let names: Vec<String> = toks[a..ci]
                .iter()
                .filter(|t| {
                    t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                })
                .map(|t| t.text.clone())
                .collect();
            names
                .into_iter()
                .map(|name| Param {
                    name,
                    ty: ty.clone(),
                })
                .collect()
        }
    }
}

/// Atomic method names recognized for [`AtomicSite`] extraction. A call
/// only becomes a site when its argument list also names an `Ordering::*`
/// variant (see [`MEMORY_ORDERINGS`]).
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "fence",
];

/// `std::sync::atomic::Ordering` variant names.
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Collect call, lock and atomic sites in `toks[open+1..close]`, excluding
/// nested fn body spans in `children`.
fn scan_body(
    toks: &[Tok],
    open: usize,
    close: usize,
    children: &[(usize, usize)],
) -> (Vec<CallSite>, Vec<LockSite>, Vec<AtomicSite>) {
    let excluded = |idx: usize| children.iter().any(|&(a, b)| idx >= a && idx <= b);
    let mut calls = Vec::new();
    let mut locks = Vec::new();
    let mut atomics = Vec::new();

    for i in open + 1..close {
        if excluded(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !tok_is(toks, i + 1, "(") {
            continue;
        }
        if KEYWORDS.contains(&t.text.as_str()) || tok_is(toks, i - 1, "fn") {
            continue;
        }
        let recv = (tok_is(toks, i - 1, ".") && toks[i - 2].kind == TokKind::Ident)
            .then(|| toks[i - 2].text.clone());
        let (args, args_close) = paren_args(toks, i + 1);
        let call = CallSite {
            callee: t.text.clone(),
            recv,
            tok_idx: i,
            line: t.line,
            args,
            args_close,
        };
        if matches!(call.callee.as_str(), "lock" | "read" | "write")
            && call.recv.is_some()
            && call.args.is_empty()
        {
            locks.push(lock_site(toks, &call, close, &excluded));
        }
        if ATOMIC_METHODS.contains(&call.callee.as_str()) {
            let orderings: Vec<String> = call
                .args
                .iter()
                .filter(|a| MEMORY_ORDERINGS.contains(&a.as_str()))
                .cloned()
                .collect();
            if !orderings.is_empty() {
                atomics.push(AtomicSite {
                    method: call.callee.clone(),
                    recv: call.recv.clone(),
                    orderings,
                    line: call.line,
                    tok_idx: call.tok_idx,
                });
            }
        }
        calls.push(call);
    }
    (calls, locks, atomics)
}

/// Identifier texts inside a paren group starting at `open` (`(`), plus the
/// index of the matching `)`.
fn paren_args(toks: &[Tok], open: usize) -> (Vec<String>, usize) {
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return (args, j);
                }
            }
            _ => {
                if toks[j].kind == TokKind::Ident {
                    args.push(toks[j].text.clone());
                }
            }
        }
        j += 1;
    }
    (args, j.saturating_sub(1))
}

/// Build the `LockSite` for an acquisition call (see module docs for the
/// hold-range approximation).
fn lock_site(
    toks: &[Tok],
    call: &CallSite,
    body_close: usize,
    excluded: &dyn Fn(usize) -> bool,
) -> LockSite {
    let i = call.tok_idx;
    // Walk the receiver chain back to its first identifier to see whether
    // the whole expression is `let`-bound.
    let mut s = i;
    while s >= 2 && tok_is(toks, s - 1, ".") && toks[s - 2].kind == TokKind::Ident {
        s -= 2;
    }
    let mut guard = None;
    // A chained call (`conn.lock().wire_order()`) binds the *method result*,
    // not the guard — the guard is a temporary living to the statement end.
    let chained = tok_is(toks, call.args_close + 1, ".");
    if !chained && s >= 2 && tok_is(toks, s - 1, "=") {
        let k = s - 2;
        if toks[k].kind == TokKind::Ident && toks[k].text != "mut" {
            let let_bound = tok_is(toks, k.wrapping_sub(1), "let")
                || (tok_is(toks, k.wrapping_sub(1), "mut")
                    && tok_is(toks, k.wrapping_sub(2), "let"));
            if let_bound {
                guard = Some(toks[k].text.clone());
            }
        }
    }

    // End of the enclosing `{ … }` block: a guard cannot outlive it.
    let mut block_end = body_close;
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(body_close).skip(i) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    block_end = j;
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }

    let hold_end = match &guard {
        Some(g) => {
            // Last `drop(g)` before the block end, else the block end.
            let mut end = block_end;
            let mut j = call.args_close;
            let mut last_drop = None;
            while j + 3 < block_end {
                if !excluded(j)
                    && toks[j].text == "drop"
                    && tok_is(toks, j + 1, "(")
                    && toks[j + 2].text == *g
                    && tok_is(toks, j + 3, ")")
                {
                    last_drop = Some(j + 3);
                }
                j += 1;
            }
            if let Some(d) = last_drop {
                end = d;
            }
            end
        }
        None => {
            // Unbound temporary: held to the end of the statement.
            let mut j = call.args_close + 1;
            let mut depth = 0i32;
            loop {
                if j >= block_end {
                    break block_end;
                }
                match toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break j,
                    _ => {}
                }
                j += 1;
            }
        }
    };

    LockSite {
        lock: call.recv.clone().unwrap_or_default(),
        guard,
        tok_idx: i,
        line: call.line,
        hold_end,
    }
}

/// From `start` at a `<`, return the index just past the matching `>`.
/// `->` and `=>` arrows inside (e.g. `Fn() -> T` bounds) do not close.
fn skip_angles(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" if j > 0 && matches!(toks[j - 1].text.as_str(), "-" | "=") => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn tok_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

/// From a token at/before a block's opening `{`, return (open, close) token
/// indices of the matched braces; `None` if a `;` arrives first (no body).
fn brace_span(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < toks.len() && toks[i].text != "{" {
        if toks[i].text == ";" {
            return None;
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::rules::cfg_test_mod_spans;

    fn parse(src: &str) -> Vec<FnItem> {
        let s = scan(src);
        let spans = cfg_test_mod_spans(&s.toks);
        parse_items(&s.toks, &spans)
    }

    #[test]
    fn fn_params_and_ret() {
        let items =
            parse("fn send(buf: &ZcBytes, n: usize) -> Result<Vec<u8>, Error> { helper(buf); }");
        assert_eq!(items.len(), 1);
        let f = &items[0];
        assert_eq!(f.name, "send");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "buf");
        assert!(f.params[0].ty.contains(&"ZcBytes".to_string()));
        assert!(f.ret.contains(&"Vec".to_string()));
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].callee, "helper");
        assert_eq!(f.calls[0].args, vec!["buf"]);
    }

    #[test]
    fn impl_qualifies_methods() {
        let items = parse(
            "impl fmt::Debug for Conn { fn fmt(&self) {} }\n\
             impl<'a> Walker<'a> { fn step(&mut self, b: ZcBytes) { self.go(b); } }",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].qual.as_deref(), Some("Conn"));
        assert_eq!(items[1].qual.as_deref(), Some("Walker"));
        assert_eq!(items[1].params[0].name, "self");
        assert_eq!(items[1].params[1].name, "b");
        let call = &items[1].calls[0];
        assert_eq!(call.callee, "go");
        assert_eq!(call.recv.as_deref(), Some("self"));
    }

    #[test]
    fn generic_sig_with_fn_bound() {
        let items = parse(
            "fn apply<F: Fn(&[u8]) -> usize>(f: F, data: &ZcBytes) -> usize { f(data.as_slice()) }",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].params.len(), 2);
        assert_eq!(items[0].params[1].name, "data");
    }

    #[test]
    fn nested_fn_calls_not_attributed_to_parent() {
        let items = parse("fn outer() { fn inner() { secret(); } inner(); }");
        let outer = items.iter().find(|f| f.name == "outer").unwrap();
        let inner = items.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().all(|c| c.callee != "secret"));
        assert!(outer.calls.iter().any(|c| c.callee == "inner"));
        assert!(inner.calls.iter().any(|c| c.callee == "secret"));
    }

    #[test]
    fn lock_guard_bound_and_dropped() {
        let items = parse(
            "fn f(&self) {\n\
               let mut conn = self.inner.conn.lock();\n\
               conn.send();\n\
               drop(conn);\n\
               after();\n\
             }",
        );
        let f = &items[0];
        assert_eq!(f.locks.len(), 1);
        let l = &f.locks[0];
        assert_eq!(l.lock, "conn");
        assert_eq!(l.guard.as_deref(), Some("conn"));
        let send = f.calls.iter().find(|c| c.callee == "send").unwrap();
        let after = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(send.tok_idx < l.hold_end, "send is under the lock");
        assert!(after.tok_idx > l.hold_end, "after runs past the drop");
    }

    #[test]
    fn lock_temporary_held_to_statement_end() {
        let items = parse(
            "fn f(&self) {\n\
               self.cache.lock().insert(1);\n\
               later();\n\
             }",
        );
        let f = &items[0];
        assert_eq!(f.locks.len(), 1);
        assert!(f.locks[0].guard.is_none());
        let later = f.calls.iter().find(|c| c.callee == "later").unwrap();
        assert!(later.tok_idx > f.locks[0].hold_end);
    }

    #[test]
    fn lock_guard_clipped_to_block() {
        let items = parse(
            "fn f(&self) {\n\
               let v = { let g = self.table.read(); g.len() };\n\
               outside();\n\
             }",
        );
        let f = &items[0];
        assert_eq!(f.locks.len(), 1);
        let outside = f.calls.iter().find(|c| c.callee == "outside").unwrap();
        assert!(
            outside.tok_idx > f.locks[0].hold_end,
            "guard dies with its block"
        );
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let items = parse("fn f(&mut self, buf: &mut [u8]) { self.sock.read(buf); }");
        assert!(items[0].locks.is_empty());
        assert!(items[0].calls.iter().any(|c| c.callee == "read"));
    }

    #[test]
    fn cfg_test_fns_marked() {
        let items = parse("fn real() {}\n#[cfg(test)]\nmod tests { fn t() { x.to_vec(); } }");
        assert!(!items.iter().find(|f| f.name == "real").unwrap().is_test);
        assert!(items.iter().find(|f| f.name == "t").unwrap().is_test);
    }

    #[test]
    fn trait_decls_skipped() {
        let items = parse("trait T { fn decl(&self); fn with_default(&self) { self.decl(); } }");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "with_default");
    }

    #[test]
    fn atomic_sites_with_orderings() {
        let items = parse(
            "fn f(&self) {\n\
               let s = self.seq.load(Ordering::Acquire);\n\
               self.seq.compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed);\n\
               self.seq.store(s + 2, Ordering::Release);\n\
               fence(Ordering::Acquire);\n\
             }",
        );
        let a = &items[0].atomics;
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].method, "load");
        assert_eq!(a[0].recv.as_deref(), Some("seq"));
        assert_eq!(a[0].orderings, vec!["Acquire"]);
        assert_eq!(a[1].method, "compare_exchange");
        assert_eq!(a[1].orderings, vec!["Acquire", "Relaxed"]);
        assert_eq!(a[2].orderings, vec!["Release"]);
        assert_eq!(a[3].method, "fence");
        assert!(a[3].recv.is_none());
    }

    #[test]
    fn non_atomic_load_store_not_sites() {
        let items = parse(
            "fn f(&mut self) {\n\
               self.cart.load(path);\n\
               self.disk.store(bytes);\n\
               items.sort_by(|a, b| a.cmp(b));\n\
             }",
        );
        assert!(items[0].atomics.is_empty());
    }

    #[test]
    fn tuple_pattern_params() {
        let items = parse("fn f((a, b): (ZcBytes, usize)) { use_both(a, b); }");
        let names: Vec<&str> = items[0].params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(items[0].params[0].ty.contains(&"ZcBytes".to_string()));
    }
}
