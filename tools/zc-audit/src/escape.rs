//! zc-escape — inter-procedural escape analysis for zero-copy values.
//!
//! The per-file copy-path rule only sees the declared data-path modules. A
//! `ZcBytes` handed to a helper in an *unlisted* file can be `.to_vec()`'d
//! there without any rule firing — exactly the silent-copy regression the
//! paper's whole-path argument warns about. This pass closes that hole:
//!
//! 1. **Seeds**: every non-test function in a declared data-path module
//!    whose signature mentions a configured zero-copy type.
//! 2. **Taint**: within each function, the zero-copy-typed parameters plus
//!    locals bound from them (`let view = block…`, `for b in &deposits`)
//!    form the tainted set. Propagation is a single forward pass.
//! 3. **Edges**: a call `f → g` exists when the call's receiver or any
//!    argument identifier is tainted in `f` and some function named like
//!    the callee has a zero-copy-typed signature. Resolution is by bare
//!    name (no type inference), unioned over same-named functions — an
//!    over-approximation that can only add edges.
//! 4. **Report**: any banned idiom applied to a tainted value inside a
//!    function reachable from a seed but *outside* the declared modules is
//!    a violation, waivable exactly like rule 1 (`allow(copy)` citing a
//!    `CopyLayer`, `allow(cheap-clone)`, `allow(control-plane)`).
//!
//! Known false negatives (documented in docs/zero-copy-invariants.md):
//! values smuggled through struct fields or returned-then-copied, and
//! callee resolution across trait objects, are not tracked.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::config::{path_matches_any, Config};
use crate::lexer::TokKind;
use crate::parser::FnItem;
use crate::rules::{find_idiom_sites, waiver_for, Violation, Waiver, COPY_KINDS};
use crate::FileAnalysis;

/// Global function handle: (file index, item index).
type FnRef = (usize, usize);

pub(crate) fn run(
    files: &[FileAnalysis],
    cfg: &Config,
    waivers: &[BTreeMap<u32, Waiver>],
    out: &mut Vec<Violation>,
) {
    let types = &cfg.escape.types;
    if types.is_empty() {
        return;
    }
    let is_type = |name: &str| types.iter().any(|t| t == name);
    let dp_paths: Vec<String> = cfg
        .modules
        .iter()
        .flat_map(|m| m.paths.iter().cloned())
        .collect();

    // Index every function by name.
    let mut by_name: HashMap<&str, Vec<FnRef>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ii, item) in file.items.iter().enumerate() {
            by_name
                .entry(item.name.as_str())
                .or_default()
                .push((fi, ii));
        }
    }

    let zc_params = |f: &FnItem| -> HashSet<String> {
        f.params
            .iter()
            .filter(|p| {
                p.ty.iter().any(|t| is_type(t))
                    || (p.name == "self" && f.qual.as_deref().is_some_and(is_type))
            })
            .map(|p| p.name.clone())
            .collect()
    };
    let handles_zc =
        |f: &FnItem| -> bool { !zc_params(f).is_empty() || f.ret.iter().any(|t| is_type(t)) };

    // Memoized tainted-identifier sets.
    let mut tainted: HashMap<FnRef, HashSet<String>> = HashMap::new();
    let mut taint_of = |r: FnRef, files: &[FileAnalysis]| -> HashSet<String> {
        if let Some(t) = tainted.get(&r) {
            return t.clone();
        }
        let f = &files[r.0].items[r.1];
        let t = taint_locals(&files[r.0], f, zc_params(f));
        tainted.insert(r, t.clone());
        t
    };

    // Seeds: zero-copy-signature functions inside declared modules.
    let mut queue: VecDeque<FnRef> = VecDeque::new();
    let mut origin: HashMap<FnRef, (String, u32)> = HashMap::new(); // seed name, distance
    for (fi, file) in files.iter().enumerate() {
        if !path_matches_any(&file.rel, &dp_paths) {
            continue;
        }
        for (ii, item) in file.items.iter().enumerate() {
            if item.is_test || file.in_test_tree || !handles_zc(item) {
                continue;
            }
            origin.insert((fi, ii), (item.name.clone(), 0));
            queue.push_back((fi, ii));
        }
    }

    // BFS along tainted call edges.
    while let Some(r) = queue.pop_front() {
        let (seed, dist) = origin[&r].clone();
        let taint = taint_of(r, files);
        let f = &files[r.0].items[r.1];
        for call in &f.calls {
            let flows = call.recv.as_deref().is_some_and(|rv| taint.contains(rv))
                || call.args.iter().any(|a| taint.contains(a));
            if !flows {
                continue;
            }
            let Some(targets) = by_name.get(call.callee.as_str()) else {
                continue;
            };
            for &g in targets {
                if origin.contains_key(&g) {
                    continue;
                }
                if !handles_zc(&files[g.0].items[g.1]) {
                    continue;
                }
                origin.insert(g, (seed.clone(), dist + 1));
                queue.push_back(g);
            }
        }
    }

    // Flag banned idioms on tainted values in reached functions outside the
    // declared modules (inside them, the per-file copy-path rule already
    // runs with per-module idiom lists).
    for (&(fi, ii), (seed, dist)) in &origin {
        let file = &files[fi];
        if *dist == 0 || path_matches_any(&file.rel, &dp_paths) {
            continue;
        }
        let item = &file.items[ii];
        if item.is_test || file.in_test_tree {
            continue;
        }
        let taint = taint_of((fi, ii), files);
        let toks = &file.scanned.toks;
        for site in find_idiom_sites(toks, &cfg.escape.idioms) {
            if !item.contains(site.tok_idx) {
                continue;
            }
            // The innermost function owning the site must be this one, not
            // a nested fn (which is reported on its own if reached).
            if file
                .items
                .iter()
                .any(|o| o.contains(site.tok_idx) && item.contains(o.body.0))
            {
                continue;
            }
            let recv_tainted = site.tok_idx >= 2
                && toks[site.tok_idx - 1].text == "."
                && toks[site.tok_idx - 2].kind == TokKind::Ident
                && taint.contains(&toks[site.tok_idx - 2].text);
            let args_tainted = arg_idents(file, site.tok_idx)
                .iter()
                .any(|a| taint.contains(a));
            if !recv_tainted && !args_tainted {
                continue;
            }
            if waiver_for(&waivers[fi], site.line, COPY_KINDS).is_some() {
                continue;
            }
            out.push(Violation {
                file: file.rel.clone(),
                line: site.line,
                rule: "zc-escape",
                msg: format!(
                    "{} applied to a zero-copy value in `fn {}`, reachable from \
                     data-path `fn {}` ({} call{} away); move the copy behind the \
                     meter or waive it (allow(copy) citing a CopyLayer, \
                     cheap-clone, or control-plane)",
                    site.idiom.describe(),
                    item.name,
                    seed,
                    dist,
                    if *dist == 1 { "" } else { "s" },
                ),
            });
        }
    }
}

/// Identifier texts inside the call's argument parens, if the site is
/// followed by `(…)`.
fn arg_idents(file: &FileAnalysis, tok_idx: usize) -> Vec<String> {
    let toks = &file.scanned.toks;
    if toks.get(tok_idx + 1).map(|t| t.text.as_str()) != Some("(") {
        return Vec::new();
    }
    let mut depth = 0i32;
    let mut args = Vec::new();
    for t in &toks[tok_idx + 1..] {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if t.kind == TokKind::Ident {
                    args.push(t.text.clone());
                }
            }
        }
    }
    args
}

/// Forward-propagate taint from `seed` parameters through simple local
/// bindings: `let x = …tainted…;` and `for x in …tainted… {`.
fn taint_locals(file: &FileAnalysis, f: &FnItem, seed: HashSet<String>) -> HashSet<String> {
    let toks = &file.scanned.toks;
    let mut taint = seed;
    let (open, close) = f.body;
    let mut i = open + 1;
    while i < close {
        let (binder_stop, rhs_stop) = match toks[i].text.as_str() {
            "let" => ("=", ";"),
            "for" => ("in", "{"),
            _ => {
                i += 1;
                continue;
            }
        };
        // Collect bound identifiers up to `=` / `in`.
        let mut j = i + 1;
        let mut binders = Vec::new();
        while j < close && toks[j].text != binder_stop && toks[j].text != ";" {
            if toks[j].kind == TokKind::Ident
                && !matches!(
                    toks[j].text.as_str(),
                    "mut" | "ref" | "_" | "Some" | "Ok" | "Err"
                )
            {
                binders.push(toks[j].text.clone());
            }
            j += 1;
        }
        if j >= close || toks[j].text != binder_stop {
            i = j;
            continue;
        }
        // Does the initializer mention a tainted identifier?
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut rhs_tainted = false;
        while k < close {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                t if t == rhs_stop && depth == 0 => break,
                _ => {
                    if toks[k].kind == TokKind::Ident && taint.contains(&toks[k].text) {
                        rhs_tainted = true;
                    }
                }
            }
            k += 1;
        }
        if rhs_tainted {
            taint.extend(binders);
        }
        i = k + 1;
    }
    taint
}
