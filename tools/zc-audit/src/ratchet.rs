//! waiver-debt ratchet: per-kind waiver counts against a committed baseline.
//!
//! Every waiver in the tree is tolerated debt on the road to the zero-waiver
//! `--deny` goal. The ratchet makes that debt monotone: `zc-audit --ratchet
//! zc-audit.baseline.json` counts the current waivers per kind and fails if
//! any kind's count *rose* above the committed baseline. Paying debt down is
//! always allowed (and prints a hint to tighten the baseline);
//! `--update-ratchet <file>` rewrites the baseline from the current tree.
//!
//! The baseline is a tiny JSON document with its own schema so it can be
//! diffed and reviewed like any other committed artifact:
//!
//! ```json
//! {
//!   "schema": "zc-audit-baseline/v1",
//!   "waivers": { "cheap-clone": 12, "copy": 9 }
//! }
//! ```

use crate::Report;
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub const BASELINE_SCHEMA: &str = "zc-audit-baseline/v1";

/// Result of comparing the current waiver counts against a baseline.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    pub baseline: BTreeMap<String, u32>,
    pub current: BTreeMap<String, u32>,
    /// Kinds whose count rose above the baseline (ratchet failure).
    pub grown: Vec<String>,
    /// Kinds whose count fell below the baseline (tighten the baseline).
    pub shrunk: Vec<String>,
}

impl RatchetOutcome {
    pub fn ok(&self) -> bool {
        self.grown.is_empty()
    }
}

/// Count the report's waivers per kind name.
pub fn waiver_counts(report: &Report) -> BTreeMap<String, u32> {
    let mut m = BTreeMap::new();
    for w in &report.waivers {
        *m.entry(w.kind.name().to_string()).or_insert(0u32) += 1;
    }
    m
}

/// Serialize counts as a baseline document.
pub fn baseline_json(counts: &BTreeMap<String, u32>) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{{\n  \"schema\": \"{BASELINE_SCHEMA}\",\n  \"waivers\": {{"
    );
    for (i, (kind, n)) in counts.iter().enumerate() {
        let _ = write!(s, "    \"{kind}\": {n}");
        s.push_str(if i + 1 < counts.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n}\n");
    s
}

/// Parse a baseline document. Deliberately a tiny hand-rolled reader for
/// exactly the shape [`baseline_json`] writes (flat string→integer map).
pub fn parse_baseline(src: &str) -> Result<BTreeMap<String, u32>, String> {
    if !src.contains(BASELINE_SCHEMA) {
        return Err(format!("baseline schema must be `{BASELINE_SCHEMA}`"));
    }
    let wpos = src
        .find("\"waivers\"")
        .ok_or_else(|| "baseline missing `\"waivers\"` object".to_string())?;
    let open = src[wpos..]
        .find('{')
        .ok_or_else(|| "baseline `waivers` must be an object".to_string())?
        + wpos;
    let close = src[open..]
        .find('}')
        .ok_or_else(|| "unterminated `waivers` object".to_string())?
        + open;
    let mut map = BTreeMap::new();
    for part in src[open + 1..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once(':')
            .ok_or_else(|| format!("bad waivers entry `{part}`"))?;
        let k = k.trim().trim_matches('"');
        let n: u32 = v
            .trim()
            .parse()
            .map_err(|_| format!("bad waiver count in `{part}`"))?;
        if k.is_empty() {
            return Err(format!("empty waiver kind in `{part}`"));
        }
        map.insert(k.to_string(), n);
    }
    Ok(map)
}

/// Compare current counts against a baseline. A kind absent from the
/// baseline counts as baseline 0 — brand-new waiver kinds start at zero
/// debt and any use is growth until the baseline is consciously updated.
pub fn compare(baseline: BTreeMap<String, u32>, current: BTreeMap<String, u32>) -> RatchetOutcome {
    let mut grown = Vec::new();
    let mut shrunk = Vec::new();
    for (kind, &cur) in &current {
        let base = baseline.get(kind).copied().unwrap_or(0);
        if cur > base {
            grown.push(kind.clone());
        } else if cur < base {
            shrunk.push(kind.clone());
        }
    }
    for kind in baseline.keys() {
        if !current.contains_key(kind) && baseline[kind] > 0 {
            shrunk.push(kind.clone());
        }
    }
    shrunk.sort();
    shrunk.dedup();
    RatchetOutcome {
        baseline,
        current,
        grown,
        shrunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u32)]) -> BTreeMap<String, u32> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn baseline_round_trips() {
        let c = counts(&[("cheap-clone", 12), ("copy", 9), ("atomics-protocol", 1)]);
        let json = baseline_json(&c);
        assert!(json.contains(BASELINE_SCHEMA));
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let c = BTreeMap::new();
        let parsed = parse_baseline(&baseline_json(&c)).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn growth_fails_shrink_hints() {
        let base = counts(&[("copy", 3), ("lock-held", 2), ("wire-const", 1)]);
        let cur = counts(&[("copy", 4), ("lock-held", 1)]);
        let o = compare(base, cur);
        assert!(!o.ok());
        assert_eq!(o.grown, vec!["copy"]);
        assert_eq!(o.shrunk, vec!["lock-held", "wire-const"]);
    }

    #[test]
    fn new_kind_counts_as_growth_from_zero() {
        let o = compare(counts(&[]), counts(&[("reactor-blocking", 1)]));
        assert!(!o.ok());
        assert_eq!(o.grown, vec!["reactor-blocking"]);
    }

    #[test]
    fn wrong_schema_rejected() {
        assert!(parse_baseline("{\"schema\": \"other/v9\", \"waivers\": {}}").is_err());
    }
}
