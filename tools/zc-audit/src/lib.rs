//! zc-audit — static auditor for this workspace's zero-copy invariants.
//!
//! The repo reproduces Kurmann & Stricker's zero-copy CORBA transport; its
//! whole value is that payload bytes cross the stack without being copied.
//! Nothing in the type system stops a convenient `.to_vec()` from quietly
//! re-introducing a copy on the data path, so this tool enforces the
//! discipline structurally. See `zc-audit.toml` for the rule configuration
//! and `docs/zero-copy-invariants.md` for the underlying invariants.
//!
//! Run as `cargo run -p zc-audit` (non-zero exit on violations) or via the
//! `workspace_is_clean` integration test.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod toml;

pub use config::Config;
pub use rules::{audit_file, Violation};

use std::path::{Path, PathBuf};

/// Locate the workspace root: walk up from `start` until a directory
/// containing `zc-audit.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("zc-audit.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect workspace-relative paths of `.rs` files under `root`,
/// skipping VCS/build directories and configured excludes. Paths use `/`
/// separators regardless of platform.
pub fn collect_rs_files(root: &Path, exclude: &[String]) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = relative_slash(root, &path);
            if config::path_matches_any(&rel, exclude)
                || exclude.iter().any(|e| e.trim_end_matches('/') == rel)
            {
                continue;
            }
            if path.is_dir() {
                if name == ".git" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Audit the whole workspace rooted at `root` with `cfg`. Violations are
/// sorted by file then line.
pub fn audit_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for rel in collect_rs_files(root, &cfg.exclude)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        out.extend(audit_file(&rel, &src, cfg));
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_manifest_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root with zc-audit.toml");
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn collect_skips_excluded() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).unwrap();
        let all = collect_rs_files(&root, &[]).unwrap();
        let filtered =
            collect_rs_files(&root, &["tools/zc-audit/tests/fixtures/".to_string()]).unwrap();
        assert!(all.iter().any(|f| f.starts_with("crates/")));
        assert!(filtered.len() <= all.len());
        assert!(!filtered
            .iter()
            .any(|f| f.starts_with("tools/zc-audit/tests/fixtures/")));
    }
}
