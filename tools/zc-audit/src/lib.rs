//! zc-audit — static auditor for this workspace's zero-copy invariants.
//!
//! The repo reproduces Kurmann & Stricker's zero-copy CORBA transport; its
//! whole value is that payload bytes cross the stack without being copied.
//! Nothing in the type system stops a convenient `.to_vec()` from quietly
//! re-introducing a copy on the data path, so this tool enforces the
//! discipline structurally. See `zc-audit.toml` for the rule configuration
//! and `docs/zero-copy-invariants.md` for the underlying invariants.
//!
//! Run as `cargo run -p zc-audit` (non-zero exit on violations) or via the
//! `workspace_is_clean` integration test.

mod atomics;
mod blocking;
pub mod config;
mod escape;
pub mod lexer;
mod locks;
pub mod parser;
pub mod ratchet;
pub mod rules;
mod taint;
pub mod toml;
mod wire;

pub use atomics::{AtomicsSummary, ProtocolStat};
pub use blocking::ReactorFinding;
pub use config::Config;
pub use rules::{audit_file, Violation, WaiverKind};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One scanned + item-parsed workspace file, shared by the
/// inter-procedural passes.
pub struct FileAnalysis {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub scanned: lexer::Scanned,
    pub items: Vec<parser::FnItem>,
    /// Token spans of `#[cfg(test)] mod` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Under a tests/benches/examples/fixtures directory.
    pub in_test_tree: bool,
}

/// Locate the workspace root: walk up from `start` until a directory
/// containing `zc-audit.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("zc-audit.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect workspace-relative paths of `.rs` files under `root`,
/// skipping VCS/build directories and configured excludes. Paths use `/`
/// separators regardless of platform.
pub fn collect_rs_files(root: &Path, exclude: &[String]) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = relative_slash(root, &path);
            if config::path_matches_any(&rel, exclude)
                || exclude.iter().any(|e| e.trim_end_matches('/') == rel)
            {
                continue;
            }
            if path.is_dir() {
                if name == ".git" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// One waiver seen during a workspace audit (for machine-readable output:
/// every tolerated finding is a used waiver).
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    pub file: String,
    pub line: u32,
    pub kind: WaiverKind,
    pub used: bool,
}

/// Which advisory rule families are upgraded to hard failures.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deny {
    pub lock_order: bool,
    pub taint: bool,
    pub atomics: bool,
    pub reactor: bool,
}

/// Full result of a workspace audit: violations plus the waiver inventory
/// and the v4 pass summaries.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub waivers: Vec<WaiverRecord>,
    pub atomics: AtomicsSummary,
    /// Blocking leaves reachable from the reactor entrypoints.
    pub reactor: Vec<ReactorFinding>,
    pub reactor_entrypoints: Vec<String>,
}

impl Report {
    /// Are all remaining violations advisory-grade? Advisory families are
    /// opt-in hard failures: `lock-order` under `--deny-lock-order`, the
    /// `taint-*` rules under `--deny-taint`, `atomics-protocol` under
    /// `--deny-atomics` and `reactor-blocking` under `--deny-reactor`. The
    /// `workspace_is_clean` test is strict on everything except live
    /// `reactor-blocking` debt (measured, to be retired by ROADMAP item 1).
    pub fn only_advisory(&self) -> bool {
        !self.violations.is_empty()
            && self.violations.iter().all(|v| {
                v.rule == "lock-order"
                    || v.rule.starts_with("taint-")
                    || v.rule == "atomics-protocol"
                    || v.rule == "reactor-blocking"
            })
    }

    /// Would this report fail with the given enforcement flags? Advisory
    /// families stay exit-0 until their deny flag upgrades them.
    pub fn fails(&self, deny: Deny) -> bool {
        self.violations.iter().any(|v| {
            if v.rule == "lock-order" {
                deny.lock_order
            } else if v.rule.starts_with("taint-") {
                deny.taint
            } else if v.rule == "atomics-protocol" {
                deny.atomics
            } else if v.rule == "reactor-blocking" {
                deny.reactor
            } else {
                true
            }
        })
    }

    /// Machine-readable findings: every violation and every waiver with its
    /// status, as one JSON document (no ratchet section).
    pub fn to_json(&self) -> String {
        self.to_json_with(None)
    }

    /// Machine-readable findings including the ratchet outcome when a
    /// `--ratchet` comparison ran.
    pub fn to_json_with(&self, ratchet: Option<&ratchet::RatchetOutcome>) -> String {
        let mut s = String::from("{\n  \"schema\": \"zc-audit/v4\",\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"msg\": {}}}",
                if i > 0 { "," } else { "" },
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.msg)
            );
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"file\": {}, \"line\": {}, \"kind\": {}, \"used\": {}}}",
                if i > 0 { "," } else { "" },
                json_str(&w.file),
                w.line,
                json_str(w.kind.name()),
                w.used
            );
        }
        if !self.waivers.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"atomics\": {\n    \"protocols\": [");
        for (i, p) in self.atomics.protocols.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n      {{\"module\": {}, \"kind\": {}, \"sites\": {}}}",
                if i > 0 { "," } else { "" },
                json_str(&p.module),
                json_str(p.kind),
                p.sites
            );
        }
        if !self.atomics.protocols.is_empty() {
            s.push_str("\n    ");
        }
        let _ = write!(
            s,
            "],\n    \"undeclared_sites\": {}\n  }},\n  \"reactor\": {{\n    \"entrypoints\": [",
            self.atomics.undeclared_sites
        );
        for (i, ep) in self.reactor_entrypoints.iter().enumerate() {
            let _ = write!(s, "{}{}", if i > 0 { ", " } else { "" }, json_str(ep));
        }
        s.push_str("],\n    \"blocking\": [");
        for (i, r) in self.reactor.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n      {{\"file\": {}, \"line\": {}, \"leaf\": {}, \"entrypoint\": {}, \
                 \"chain\": {}}}",
                if i > 0 { "," } else { "" },
                json_str(&r.file),
                r.line,
                json_str(&r.leaf),
                json_str(&r.entrypoint),
                json_str(&r.chain.join(" -> "))
            );
        }
        if !self.reactor.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  },\n  \"ratchet\": ");
        match ratchet {
            None => s.push_str("null"),
            Some(o) => {
                s.push_str("{\n    \"ok\": ");
                s.push_str(if o.ok() { "true" } else { "false" });
                s.push_str(",\n    \"rules\": [");
                let kinds: std::collections::BTreeSet<&String> =
                    o.baseline.keys().chain(o.current.keys()).collect();
                for (i, kind) in kinds.iter().enumerate() {
                    let _ = write!(
                        s,
                        "{}\n      {{\"kind\": {}, \"baseline\": {}, \"current\": {}}}",
                        if i > 0 { "," } else { "" },
                        json_str(kind),
                        o.baseline.get(kind.as_str()).copied().unwrap_or(0),
                        o.current.get(kind.as_str()).copied().unwrap_or(0)
                    );
                }
                if !kinds.is_empty() {
                    s.push_str("\n    ");
                }
                s.push_str("]\n  }");
            }
        }
        s.push_str("\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Audit the whole workspace rooted at `root` with `cfg`: the per-file
/// rules plus the inter-procedural passes (zc-escape, lock-order,
/// wire-taint, wire-consts, atomics-protocol, reactor-readiness).
/// Violations are sorted by file then line.
pub fn audit_workspace_report(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for rel in collect_rs_files(root, &cfg.exclude)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let scanned = lexer::scan(&src);
        let test_spans = rules::cfg_test_mod_spans(&scanned.toks);
        let items = parser::parse_items(&scanned.toks, &test_spans);
        let in_test_tree = rules::is_test_tree(&rel);
        files.push(FileAnalysis {
            rel,
            scanned,
            items,
            test_spans,
            in_test_tree,
        });
    }

    let mut out = Vec::new();
    // Unlike the per-file entry point, collect waivers everywhere: the
    // inter-procedural passes accept waivers in files no per-file rule
    // covers (a lock-held waiver in the ORB, say).
    let waivers: Vec<BTreeMap<u32, rules::Waiver>> = files
        .iter()
        .map(|f| rules::collect_waivers(&f.rel, &f.scanned, cfg, &mut out))
        .collect();

    for (f, w) in files.iter().zip(&waivers) {
        rules::run_rules(&f.rel, &f.scanned, cfg, w, &f.test_spans, &mut out);
    }
    escape::run(&files, cfg, &waivers, &mut out);
    locks::run(&files, cfg, &waivers, &mut out);
    taint::run(&files, cfg, &waivers, &mut out);
    wire::run(&files, cfg, &waivers, &mut out);
    let atomics_summary = atomics::run(&files, cfg, &waivers, &mut out);
    let reactor = blocking::run(&files, cfg, &waivers, &mut out);

    // Stale sweep, deferred until every pass has had a chance to consume
    // its waivers. Reported under the rule the waiver kind belongs to.
    let mut records = Vec::new();
    for (f, ws) in files.iter().zip(&waivers) {
        for w in ws.values() {
            if !w.used.get() {
                out.push(Violation {
                    file: f.rel.clone(),
                    line: w.line,
                    rule: w.kind.stale_rule(),
                    msg: format!(
                        "stale waiver: no {} finding on this or the next line",
                        w.kind.name()
                    ),
                });
            }
            records.push(WaiverRecord {
                file: f.rel.clone(),
                line: w.line,
                kind: w.kind,
                used: w.used.get(),
            });
        }
    }

    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(Report {
        violations: out,
        waivers: records,
        atomics: atomics_summary,
        reactor,
        reactor_entrypoints: cfg.reactor.entrypoints.clone(),
    })
}

/// Audit the whole workspace rooted at `root` with `cfg`. Violations are
/// sorted by file then line. Convenience wrapper over
/// [`audit_workspace_report`].
pub fn audit_workspace(root: &Path, cfg: &Config) -> std::io::Result<Vec<Violation>> {
    Ok(audit_workspace_report(root, cfg)?.violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_manifest_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root with zc-audit.toml");
        assert!(root.join("Cargo.toml").is_file());
    }

    #[test]
    fn collect_skips_excluded() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).unwrap();
        let all = collect_rs_files(&root, &[]).unwrap();
        let filtered =
            collect_rs_files(&root, &["tools/zc-audit/tests/fixtures/".to_string()]).unwrap();
        assert!(all.iter().any(|f| f.starts_with("crates/")));
        assert!(filtered.len() <= all.len());
        assert!(!filtered
            .iter()
            .any(|f| f.starts_with("tools/zc-audit/tests/fixtures/")));
    }
}
