//! CLI entry point: audit the workspace, print violations, exit non-zero if
//! any are found.
//!
//! Usage: `cargo run -p zc-audit [-- <root>]` — `<root>` defaults to the
//! nearest ancestor directory containing `zc-audit.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match zc_audit::find_root(&start) {
                Some(root) => root,
                None => {
                    eprintln!("zc-audit: no zc-audit.toml found above {}", start.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cfg = match zc_audit::Config::load(&root.join("zc-audit.toml")) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("zc-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let violations = match zc_audit::audit_workspace(&root, &cfg) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("zc-audit: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if violations.is_empty() {
        println!("zc-audit: clean — zero-copy invariants hold");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("zc-audit: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
