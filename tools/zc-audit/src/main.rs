//! CLI entry point: audit the workspace, print violations, exit non-zero if
//! any are found.
//!
//! Usage: `cargo run -p zc-audit [-- [--json] [--deny-lock-order]
//! [--deny-taint] [--deny-atomics] [--deny-reactor] [--reactor-report]
//! [--ratchet <baseline.json>] [--update-ratchet <baseline.json>] [<root>]]`
//!
//! - `<root>` defaults to the nearest ancestor directory containing
//!   `zc-audit.toml`.
//! - `--json` emits the machine-readable report (rule, file, line, msg,
//!   the full waiver inventory with used/stale status, the atomics/reactor
//!   pass summaries and the ratchet outcome) on stdout.
//! - lock-order, wire-taint (`taint-*`), atomics-protocol and
//!   reactor-blocking findings are *advisory* by default (printed, exit 0);
//!   the matching `--deny-*` flag upgrades the family to a hard failure
//!   like every other rule. The `workspace_is_clean` test is strict on
//!   everything except live reactor-blocking debt.
//! - `--ratchet <file>` compares the current per-kind waiver counts against
//!   the committed baseline and fails (exit 1) if any kind grew; shrinkage
//!   prints a hint to tighten the baseline. `--update-ratchet <file>`
//!   rewrites the baseline from the current tree.
//! - `--reactor-report` prints the blocking-reachability report (one line
//!   per reachable blocking leaf with its call chain) after the findings.
//!
//! Relative ratchet paths resolve against the workspace root.

use std::path::PathBuf;
use std::process::ExitCode;
use zc_audit::{ratchet, Deny};

fn main() -> ExitCode {
    let mut json = false;
    let mut deny = Deny::default();
    let mut reactor_report = false;
    let mut ratchet_path: Option<PathBuf> = None;
    let mut update_ratchet_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args_os().skip(1);
    while let Some(arg) = args.next() {
        match arg.to_str() {
            Some("--json") => json = true,
            Some("--deny-lock-order") => deny.lock_order = true,
            Some("--deny-taint") => deny.taint = true,
            Some("--deny-atomics") => deny.atomics = true,
            Some("--deny-reactor") => deny.reactor = true,
            Some("--reactor-report") => reactor_report = true,
            Some(s @ ("--ratchet" | "--update-ratchet")) => {
                let Some(path) = args.next() else {
                    eprintln!("zc-audit: {s} requires a baseline path");
                    return ExitCode::from(2);
                };
                let path = PathBuf::from(path);
                if s == "--ratchet" {
                    ratchet_path = Some(path);
                } else {
                    update_ratchet_path = Some(path);
                }
            }
            Some(s) if s.starts_with("--") => {
                eprintln!("zc-audit: unknown flag `{s}`");
                return ExitCode::from(2);
            }
            _ => root_arg = Some(PathBuf::from(arg)),
        }
    }

    let root = match root_arg {
        Some(root) => root,
        None => {
            let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match zc_audit::find_root(&start) {
                Some(root) => root,
                None => {
                    eprintln!("zc-audit: no zc-audit.toml found above {}", start.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let resolve = |p: PathBuf| if p.is_relative() { root.join(p) } else { p };

    let cfg = match zc_audit::Config::load(&root.join("zc-audit.toml")) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("zc-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match zc_audit::audit_workspace_report(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("zc-audit: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = update_ratchet_path {
        let path = resolve(path);
        let counts = ratchet::waiver_counts(&report);
        if let Err(e) = std::fs::write(&path, ratchet::baseline_json(&counts)) {
            eprintln!("zc-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !json {
            println!("zc-audit: wrote waiver baseline to {}", path.display());
        }
    }

    let ratchet_outcome = match ratchet_path {
        None => None,
        Some(path) => {
            let path = resolve(path);
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("zc-audit: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let baseline = match ratchet::parse_baseline(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("zc-audit: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            Some(ratchet::compare(baseline, ratchet::waiver_counts(&report)))
        }
    };

    if json {
        print!("{}", report.to_json_with(ratchet_outcome.as_ref()));
    } else if report.violations.is_empty() {
        println!("zc-audit: clean — zero-copy invariants hold");
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        println!("zc-audit: {} violation(s)", report.violations.len());
    }

    if reactor_report && !json {
        println!(
            "reactor-readiness: {} blocking leaf site(s) reachable from entrypoints [{}]",
            report.reactor.len(),
            report.reactor_entrypoints.join(", ")
        );
        for r in &report.reactor {
            println!(
                "  {}:{}: `{}` via {}",
                r.file,
                r.line,
                r.leaf,
                r.chain.join(" -> ")
            );
        }
    }

    let mut ratchet_failed = false;
    if let Some(o) = &ratchet_outcome {
        if !json {
            for kind in &o.grown {
                let base = o.baseline.get(kind).copied().unwrap_or(0);
                let cur = o.current.get(kind).copied().unwrap_or(0);
                println!(
                    "zc-audit: ratchet: waiver debt for `{kind}` grew {base} -> {cur}; \
                     pay it down or consciously update the baseline with --update-ratchet"
                );
            }
            for kind in &o.shrunk {
                let base = o.baseline.get(kind).copied().unwrap_or(0);
                let cur = o.current.get(kind).copied().unwrap_or(0);
                println!(
                    "zc-audit: ratchet: waiver debt for `{kind}` fell {base} -> {cur}; \
                     tighten the baseline with --update-ratchet to lock in the win"
                );
            }
            if o.ok() {
                println!("zc-audit: ratchet: waiver debt within baseline");
            }
        }
        ratchet_failed = !o.ok();
    }

    if ratchet_failed {
        return ExitCode::FAILURE;
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else if !report.fails(deny) {
        if !json {
            println!(
                "zc-audit: all findings are advisory (lock-order / taint-* / \
                 atomics-protocol / reactor-blocking); exiting 0 (use the matching \
                 --deny-* flag to enforce)"
            );
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
