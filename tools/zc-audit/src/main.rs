//! CLI entry point: audit the workspace, print violations, exit non-zero if
//! any are found.
//!
//! Usage: `cargo run -p zc-audit [-- [--json] [--deny-lock-order]
//! [--deny-taint] [<root>]]`
//!
//! - `<root>` defaults to the nearest ancestor directory containing
//!   `zc-audit.toml`.
//! - `--json` emits the machine-readable report (rule, file, line, msg,
//!   and the full waiver inventory with used/stale status) on stdout.
//! - lock-order and wire-taint (`taint-*`) findings are *advisory* by
//!   default (printed, exit 0) while waivers settle across the workspace;
//!   `--deny-lock-order` / `--deny-taint` upgrade their family to hard
//!   failures like every other rule. The `workspace_is_clean` test is
//!   always strict.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_lock_order = false;
    let mut deny_taint = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args_os().skip(1) {
        match arg.to_str() {
            Some("--json") => json = true,
            Some("--deny-lock-order") => deny_lock_order = true,
            Some("--deny-taint") => deny_taint = true,
            Some(s) if s.starts_with("--") => {
                eprintln!("zc-audit: unknown flag `{s}`");
                return ExitCode::from(2);
            }
            _ => root_arg = Some(PathBuf::from(arg)),
        }
    }

    let root = match root_arg {
        Some(root) => root,
        None => {
            let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match zc_audit::find_root(&start) {
                Some(root) => root,
                None => {
                    eprintln!("zc-audit: no zc-audit.toml found above {}", start.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cfg = match zc_audit::Config::load(&root.join("zc-audit.toml")) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("zc-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match zc_audit::audit_workspace_report(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("zc-audit: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else if report.violations.is_empty() {
        println!("zc-audit: clean — zero-copy invariants hold");
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        println!("zc-audit: {} violation(s)", report.violations.len());
    }

    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else if !report.fails(deny_lock_order, deny_taint) {
        if !json {
            println!(
                "zc-audit: all findings are advisory (lock-order / taint-*); exiting 0 \
                 (use --deny-lock-order / --deny-taint to enforce)"
            );
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
