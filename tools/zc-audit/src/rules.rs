//! The three audit rule families.
//!
//! 1. **copy-path** — inside declared zero-copy modules, byte-copying idioms
//!    (`.to_vec()`, `.clone()`, `copy_from_slice`, `extend_from_slice`,
//!    `Vec::from`, `ptr::copy*`, `format!`) are violations unless the site
//!    carries a `// zc-audit: allow(...)` waiver. An `allow(copy)` waiver
//!    must name the `CopyLayer` the copy is metered under; `allow(cheap-clone)`
//!    marks O(1) refcount/handle clones; `allow(control-plane)` marks small
//!    fixed-size header/diagnostic work that never touches payload bytes.
//! 2. **unsafe-audit** — every `unsafe` token in the configured crates must
//!    have a `// SAFETY:` comment on the same or one of the three preceding
//!    lines, and configured crate roots must declare
//!    `#![deny(unsafe_op_in_unsafe_fn)]`.
//! 3. **meter-coverage** — raw byte-moving primitives (`ptr::copy*`,
//!    `copy_from_slice`) in configured files must live in a function that
//!    also touches the copy meter, or carry an `allow(copy)` waiver naming
//!    the layer under which callers meter them.
//!
//! Test code is exempt from copy-path and meter-coverage (tests copy freely
//! to build expectations): files under `tests/`, `benches/` or `examples/`
//! and spans of `#[cfg(test)] mod … { … }` are skipped. The unsafe-audit
//! rule applies everywhere — test `unsafe` needs justification too.

use crate::config::{path_matches_any, Config, CopyPathModule, Idiom};
use crate::lexer::{scan, Scanned, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;

/// A single finding, printable as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Waiver kinds recognized in `// zc-audit: allow(<kind>) — <reason>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiverKind {
    /// A real payload copy; the reason must name a `CopyLayer`.
    Copy,
    /// An O(1) refcount/handle clone (no payload bytes move).
    CheapClone,
    /// Control-plane work: headers, errors, logs — bounded and payload-free.
    ControlPlane,
    /// A lock deliberately held across a blocking call / ordering edge
    /// (lock-order pass); the reason must explain why it cannot deadlock.
    LockHeld,
    /// A numeric literal that coincides with a wire-constant family but is
    /// not a wire constant (wire-consts pass).
    WireConst,
    /// A panicking idiom on a wire-tainted value that cannot actually fire
    /// (wire-taint pass); the reason must cite a configured clamp.
    TaintPanic,
    /// Unchecked arithmetic on a wire-tainted length/offset that cannot
    /// overflow (wire-taint pass); the reason must cite a configured clamp.
    TaintArith,
    /// An allocation sized by a wire-tainted value that is bounded by
    /// construction (wire-taint pass); the reason must cite a configured
    /// clamp.
    TaintAlloc,
    /// A wire-tainted value entering `unsafe` where the bound lives outside
    /// the `SAFETY:` comment (wire-taint pass); the reason must cite a
    /// configured clamp.
    TaintUnsafe,
    /// An atomic site deviating from its module's declared ordering
    /// protocol (atomics-protocol pass); the reason must cite the loom
    /// model covering the ordering.
    AtomicsProtocol,
    /// A blocking leaf deliberately left reachable from a reactor
    /// entrypoint (reactor-readiness pass, advisory until ROADMAP item 1).
    ReactorBlocking,
}

impl WaiverKind {
    pub fn parse(s: &str) -> Option<WaiverKind> {
        Some(match s {
            "copy" => WaiverKind::Copy,
            "cheap-clone" => WaiverKind::CheapClone,
            "control-plane" => WaiverKind::ControlPlane,
            "lock-held" => WaiverKind::LockHeld,
            "wire-const" => WaiverKind::WireConst,
            "taint-panic" => WaiverKind::TaintPanic,
            "taint-arith" => WaiverKind::TaintArith,
            "taint-alloc" => WaiverKind::TaintAlloc,
            "taint-unsafe" => WaiverKind::TaintUnsafe,
            "atomics-protocol" => WaiverKind::AtomicsProtocol,
            "reactor-blocking" => WaiverKind::ReactorBlocking,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            WaiverKind::Copy => "copy",
            WaiverKind::CheapClone => "cheap-clone",
            WaiverKind::ControlPlane => "control-plane",
            WaiverKind::LockHeld => "lock-held",
            WaiverKind::WireConst => "wire-const",
            WaiverKind::TaintPanic => "taint-panic",
            WaiverKind::TaintArith => "taint-arith",
            WaiverKind::TaintAlloc => "taint-alloc",
            WaiverKind::TaintUnsafe => "taint-unsafe",
            WaiverKind::AtomicsProtocol => "atomics-protocol",
            WaiverKind::ReactorBlocking => "reactor-blocking",
        }
    }

    /// The rule a stale waiver of this kind is reported under.
    pub(crate) fn stale_rule(self) -> &'static str {
        match self {
            WaiverKind::Copy | WaiverKind::CheapClone | WaiverKind::ControlPlane => "copy-path",
            WaiverKind::LockHeld => "lock-order",
            WaiverKind::WireConst => "wire-consts",
            WaiverKind::TaintPanic => "taint-panic",
            WaiverKind::TaintArith => "taint-arith",
            WaiverKind::TaintAlloc => "taint-alloc",
            WaiverKind::TaintUnsafe => "taint-unsafe",
            WaiverKind::AtomicsProtocol => "atomics-protocol",
            WaiverKind::ReactorBlocking => "reactor-blocking",
        }
    }

    /// Is this one of the wire-taint waiver kinds (whose reasons must cite
    /// a configured clamp)?
    pub(crate) fn is_taint(self) -> bool {
        matches!(
            self,
            WaiverKind::TaintPanic
                | WaiverKind::TaintArith
                | WaiverKind::TaintAlloc
                | WaiverKind::TaintUnsafe
        )
    }
}

/// The copy-flavored kinds accepted by copy-path, meter-coverage and
/// zc-escape sites.
pub(crate) const COPY_KINDS: &[WaiverKind] = &[
    WaiverKind::Copy,
    WaiverKind::CheapClone,
    WaiverKind::ControlPlane,
];

#[derive(Debug, Clone)]
pub(crate) struct Waiver {
    pub(crate) kind: WaiverKind,
    /// Line of the waiver comment; it covers this line and the next.
    pub(crate) line: u32,
    /// Set once a flagged idiom consumes the waiver (stale-waiver check).
    pub(crate) used: std::cell::Cell<bool>,
}

/// Is `rel` a test-tree path (tests/benches/examples/fixtures directory)?
pub(crate) fn is_test_tree(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures")
}

/// Audit one file with the per-file rules. `rel` is the workspace-relative
/// path with `/` separators. The inter-procedural passes need the whole
/// workspace and run only through [`crate::audit_workspace_report`].
pub fn audit_file(rel: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let scanned = scan(src);
    let mut out = Vec::new();

    let test_spans = cfg_test_mod_spans(&scanned.toks);
    let modules_apply = cfg.modules.iter().any(|m| path_matches_any(rel, &m.paths));
    let meter_applies = path_matches_any(rel, &cfg.meter.paths);

    // Waivers only exist (and are only validated) where copy rules run;
    // elsewhere, prose that happens to mention the syntax is just prose.
    let waivers = if modules_apply || meter_applies {
        collect_waivers(rel, &scanned, cfg, &mut out)
    } else {
        BTreeMap::new()
    };

    run_rules(rel, &scanned, cfg, &waivers, &test_spans, &mut out);

    // Stale waivers: a waiver that no flagged site consumed is dead weight
    // and hides future regressions. Only meaningful where rules ran.
    if modules_apply || meter_applies {
        for w in waivers.values() {
            if !w.used.get() {
                out.push(Violation {
                    file: rel.to_string(),
                    line: w.line,
                    rule: "copy-path",
                    msg: "stale waiver: no audited copy idiom on this or the next line".into(),
                });
            }
        }
    }

    out.sort_by_key(|v| v.line);
    out
}

/// Run the per-file rules (copy-path, unsafe-audit, meter-coverage) on one
/// scanned file. Waiver collection and stale-waiver sweeping are the
/// caller's job — the workspace runner defers the sweep until the
/// inter-procedural passes have had their chance to consume waivers.
pub(crate) fn run_rules(
    rel: &str,
    scanned: &Scanned,
    cfg: &Config,
    waivers: &BTreeMap<u32, Waiver>,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let in_test_tree = is_test_tree(rel);
    let in_test_code = |tok_idx: usize| {
        in_test_tree
            || test_spans
                .iter()
                .any(|&(a, b)| tok_idx >= a && tok_idx <= b)
    };

    let modules: Vec<&CopyPathModule> = cfg
        .modules
        .iter()
        .filter(|m| path_matches_any(rel, &m.paths))
        .collect();

    if !modules.is_empty() {
        copy_path_rule(rel, &scanned.toks, &modules, waivers, &in_test_code, out);
    }

    if path_matches_any(rel, &cfg.unsafe_audit.paths) {
        let safety_lines: Vec<u32> = scanned
            .comments
            .iter()
            .filter(|c| c.text.contains("SAFETY:"))
            .map(|c| c.line)
            .collect();
        unsafe_rule(rel, &scanned.toks, &safety_lines, out);
    }
    if cfg
        .unsafe_audit
        .deny_unsafe_op_roots
        .iter()
        .any(|p| p == rel)
        && !scanned
            .toks
            .iter()
            .any(|t| t.text == "unsafe_op_in_unsafe_fn")
    {
        out.push(Violation {
            file: rel.to_string(),
            line: 1,
            rule: "unsafe-audit",
            msg: "crate root must declare #![deny(unsafe_op_in_unsafe_fn)]".into(),
        });
    }

    if path_matches_any(rel, &cfg.meter.paths) {
        meter_rule(rel, &scanned.toks, cfg, waivers, &in_test_code, out);
    }
}

/// Parse `// zc-audit: allow(<kind>) — <reason>` comments, validating them
/// as they are collected. Returns waivers keyed by comment line.
pub(crate) fn collect_waivers(
    rel: &str,
    scanned: &Scanned,
    cfg: &Config,
    out: &mut Vec<Violation>,
) -> BTreeMap<u32, Waiver> {
    let mut waivers = BTreeMap::new();
    for c in &scanned.comments {
        let Some(pos) = c.text.find("zc-audit:") else {
            continue;
        };
        let body = c.text[pos + "zc-audit:".len()..].trim();
        let mut push_err = |msg: String| {
            out.push(Violation {
                file: rel.to_string(),
                line: c.line,
                rule: "copy-path",
                msg,
            })
        };
        let Some(rest) = body.strip_prefix("allow(") else {
            // Prose that merely mentions the marker (docs, this tool's own
            // sources) is not a waiver attempt; only an `allow` spelling is.
            if body.starts_with("allow") {
                push_err(format!("malformed zc-audit comment: `{body}`"));
            }
            continue;
        };
        let Some(close) = rest.find(')') else {
            push_err("malformed waiver: missing `)`".into());
            continue;
        };
        let kind_str = &rest[..close];
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '—', '-', ':'])
            .trim();
        let Some(kind) = WaiverKind::parse(kind_str) else {
            // Diagnose plausible kind spellings; skip placeholder prose
            // like `allow(<kind>)` or `allow(...)` in documentation.
            let plausible = !kind_str.is_empty()
                && kind_str
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b == b'-');
            if plausible {
                push_err(format!(
                    "unknown waiver kind `{kind_str}` (expected copy, cheap-clone, \
                     control-plane, lock-held, wire-const, taint-panic, taint-arith, \
                     taint-alloc, taint-unsafe, atomics-protocol or reactor-blocking)"
                ));
            }
            continue;
        };
        if reason.is_empty() {
            push_err("waiver must carry a reason after the kind".into());
            continue;
        }
        if kind == WaiverKind::Copy && !cfg.copy_layers.iter().any(|l| reason.contains(l.as_str()))
        {
            push_err(format!(
                "allow(copy) waiver must name a CopyLayer ({})",
                cfg.copy_layers.join(", ")
            ));
            continue;
        }
        if kind.is_taint()
            && !cfg.taint.clamps.is_empty()
            && !cfg.taint.clamps.iter().any(|c| reason.contains(c.as_str()))
        {
            push_err(format!(
                "allow({}) waiver must cite the clamp bounding the value ({})",
                kind.name(),
                cfg.taint.clamps.join(", ")
            ));
            continue;
        }
        if kind == WaiverKind::AtomicsProtocol && !reason.contains("loom") {
            push_err(
                "allow(atomics-protocol) waiver must cite the loom model covering the \
                 ordering (a crates/*/tests/loom.rs case)"
                    .into(),
            );
            continue;
        }
        waivers.insert(
            c.line,
            Waiver {
                kind,
                line: c.line,
                used: std::cell::Cell::new(false),
            },
        );
    }
    waivers
}

/// Find a waiver of one of `kinds` covering `line` (trailing comment on the
/// same line, or a comment on the line directly above) and mark it used.
/// A waiver of the wrong kind neither silences the site nor is consumed —
/// it will surface as stale.
pub(crate) fn waiver_for(
    waivers: &BTreeMap<u32, Waiver>,
    line: u32,
    kinds: &[WaiverKind],
) -> Option<WaiverKind> {
    for l in [line, line.saturating_sub(1)] {
        if let Some(w) = waivers.get(&l) {
            if kinds.contains(&w.kind) {
                w.used.set(true);
                return Some(w.kind);
            }
        }
    }
    None
}

/// Token-index spans (inclusive) of `#[cfg(test)] mod … { … }` items.
pub(crate) fn cfg_test_mod_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Match `# [ cfg ( … test … ) ]` …
        if toks[i].text == "#"
            && tok_is(toks, i + 1, "[")
            && tok_is(toks, i + 2, "cfg")
            && tok_is(toks, i + 3, "(")
        {
            let mut j = i + 4;
            let mut depth = 1;
            let mut saw_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            // … followed by `]` and (possibly after more attributes) `mod`.
            if saw_test && tok_is(toks, j, "]") {
                let mut k = j + 1;
                while tok_is(toks, k, "#") {
                    k = skip_attr(toks, k);
                }
                if tok_is(toks, k, "mod") {
                    if let Some((_open, close)) = brace_span(toks, k) {
                        spans.push((i, close));
                        i = close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    spans
}

fn tok_is(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

/// Given `i` at a `#`, return the index just past the closing `]`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if !tok_is(toks, j, "[") {
        return i + 1;
    }
    let mut depth = 0;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// From a token at/before a block's opening `{`, return (open, close)
/// token indices of the matched braces.
fn brace_span(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < toks.len() && toks[i].text != "{" {
        // A `;` first means no body here (e.g. `mod foo;`, trait fn decl).
        if toks[i].text == ";" {
            return None;
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    let mut depth = 0;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// A flagged idiom occurrence.
pub(crate) struct Site {
    pub(crate) tok_idx: usize,
    pub(crate) line: u32,
    pub(crate) idiom: Idiom,
}

/// Locate every occurrence of `idioms` in the token stream.
pub(crate) fn find_idiom_sites(toks: &[Tok], idioms: &[Idiom]) -> Vec<Site> {
    let mut sites = Vec::new();
    let prev = |i: usize, n: usize| i.checked_sub(n).map(|j| toks[j].text.as_str());
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `fn copy_from_slice(...)` is a definition, not a call site.
        if prev(i, 1) == Some("fn") {
            continue;
        }
        let next_is_call = tok_is(toks, i + 1, "(");
        let next_is_bang = tok_is(toks, i + 1, "!");
        let method_recv = prev(i, 1) == Some(".");
        let path_call = prev(i, 1) == Some(":") && prev(i, 2) == Some(":");
        let idiom = match t.text.as_str() {
            "to_vec" if method_recv && next_is_call => Some(Idiom::ToVec),
            "to_owned" if method_recv && next_is_call => Some(Idiom::ToOwned),
            "clone" if next_is_call && (method_recv || path_call) => {
                // `Arc::clone(&x)` / `Rc::clone(&x)` are refcount bumps by
                // construction — the idiomatic *non*-copying spelling.
                let cheap_path = path_call && matches!(prev(i, 3), Some("Arc") | Some("Rc"));
                if cheap_path {
                    None
                } else {
                    Some(Idiom::Clone)
                }
            }
            "copy_from_slice" if next_is_call => Some(Idiom::CopyFromSlice),
            "extend_from_slice" if method_recv && next_is_call => Some(Idiom::ExtendFromSlice),
            "from" if next_is_call && path_call && prev(i, 3) == Some("Vec") => {
                Some(Idiom::VecFrom)
            }
            "copy" | "copy_nonoverlapping"
                if next_is_call && path_call && prev(i, 3) == Some("ptr") =>
            {
                Some(Idiom::PtrCopy)
            }
            "copy_nonoverlapping" if next_is_call && !path_call => Some(Idiom::PtrCopy),
            "format" if next_is_bang => Some(Idiom::Format),
            "to_string" if method_recv && next_is_call => Some(Idiom::ToString),
            _ => None,
        };
        if let Some(idiom) = idiom.filter(|id| idioms.contains(id)) {
            sites.push(Site {
                tok_idx: i,
                line: t.line,
                idiom,
            });
        }
    }
    sites
}

fn copy_path_rule(
    rel: &str,
    toks: &[Tok],
    modules: &[&CopyPathModule],
    waivers: &BTreeMap<u32, Waiver>,
    in_test_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    let mut idioms: Vec<Idiom> = Vec::new();
    for m in modules {
        for &i in &m.idioms {
            if !idioms.contains(&i) {
                idioms.push(i);
            }
        }
    }
    let module_names = modules
        .iter()
        .map(|m| m.name.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    for site in find_idiom_sites(toks, &idioms) {
        if in_test_code(site.tok_idx) {
            continue;
        }
        if waiver_for(waivers, site.line, COPY_KINDS).is_some() {
            continue;
        }
        out.push(Violation {
            file: rel.to_string(),
            line: site.line,
            rule: "copy-path",
            msg: format!(
                "{} in zero-copy module `{}` needs a `// zc-audit: allow(...)` waiver \
                 (copy with a CopyLayer, cheap-clone, or control-plane)",
                site.idiom.describe(),
                module_names
            ),
        });
    }
}

fn unsafe_rule(rel: &str, toks: &[Tok], safety_lines: &[u32], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // `unsafe_op_in_unsafe_fn` etc. are distinct idents; `t.text` is the
        // whole identifier so no prefix confusion. Skip attribute mentions
        // like `#![deny(unsafe_code)]` — an `unsafe` keyword is followed by
        // `{`, `fn`, `impl` or `trait`.
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        if !matches!(
            next,
            Some("{") | Some("fn") | Some("impl") | Some("trait") | Some("extern")
        ) {
            continue;
        }
        let covered = safety_lines.iter().any(|&l| l <= t.line && t.line - l <= 3);
        if !covered {
            out.push(Violation {
                file: rel.to_string(),
                line: t.line,
                rule: "unsafe-audit",
                msg: format!(
                    "`unsafe {}` without a `// SAFETY:` comment on the same or \
                     preceding lines",
                    next.unwrap_or("")
                ),
            });
        }
    }
}

fn meter_rule(
    rel: &str,
    toks: &[Tok],
    cfg: &Config,
    waivers: &BTreeMap<u32, Waiver>,
    in_test_code: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    let sites: Vec<Site> = find_idiom_sites(toks, &[Idiom::CopyFromSlice, Idiom::PtrCopy]);
    if sites.is_empty() {
        return;
    }
    let fns = fn_body_spans(toks);
    for site in sites {
        if in_test_code(site.tok_idx) {
            continue;
        }
        let Some((name, open, close)) = fns
            .iter()
            .find(|&&(_, open, close)| site.tok_idx > open && site.tok_idx < close)
            .map(|(n, o, c)| (n.clone(), *o, *c))
        else {
            continue; // not inside a function body (macro arm, const init)
        };
        let metered = toks[open..=close]
            .iter()
            .any(|t| t.kind == TokKind::Ident && cfg.meter.markers.iter().any(|m| m == &t.text));
        if metered {
            // The enclosing function meters; consume any waiver present so
            // it does not read as stale.
            waiver_for(waivers, site.line, COPY_KINDS);
            continue;
        }
        if waiver_for(waivers, site.line, COPY_KINDS) == Some(WaiverKind::Copy) {
            continue; // waiver names the layer under which callers meter it
        }
        out.push(Violation {
            file: rel.to_string(),
            line: site.line,
            rule: "meter-coverage",
            msg: format!(
                "{} in `fn {name}` which never touches the copy meter \
                 ({}); meter it or add an allow(copy) waiver naming the layer",
                site.idiom.describe(),
                cfg.meter.markers.join("/"),
            ),
        });
    }
}

/// (name, body_open, body_close) token spans for every `fn` with a body.
/// Innermost functions appear first so closures/nested fns match before
/// their enclosing function.
fn fn_body_spans(toks: &[Tok]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "fn" {
            let Some(name_tok) = toks.get(i + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            if let Some((open, close)) = brace_span(toks, i) {
                spans.push((name_tok.text.clone(), open, close));
            }
        }
    }
    // Sort by span length so the tightest enclosing fn wins lookups.
    spans.sort_by_key(|&(_, open, close)| close - open);
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn test_cfg() -> Config {
        Config::parse(
            r#"
[audit]
copy_layers = ["Marshal", "Demarshal", "SocketSend"]

[[copy_path.module]]
name = "demo"
paths = ["src/demo.rs"]
idioms = ["to_vec", "clone", "copy_from_slice", "extend_from_slice", "format"]

[unsafe_audit]
paths = ["src/unsafe_demo.rs"]
deny_unsafe_op_roots = ["src/unsafe_demo.rs"]

[meter_coverage]
paths = ["src/meter_demo.rs"]
markers = ["meter", "CopyMeter", "record"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn flags_unwaivered_copy() {
        let v = audit_file(
            "src/demo.rs",
            "fn f(a: &[u8]) -> Vec<u8> { a.to_vec() }",
            &test_cfg(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "copy-path");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn waiver_with_layer_passes() {
        let src = "fn f(a: &[u8], b: &mut [u8]) {\n\
                   // zc-audit: allow(copy) — staged into send ring, metered as SocketSend\n\
                   b.copy_from_slice(a);\n}\n";
        let v = audit_file("src/demo.rs", src, &test_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn copy_waiver_without_layer_rejected() {
        let src = "fn f(a: &[u8], b: &mut [u8]) {\n\
                   // zc-audit: allow(copy) — we really need this\n\
                   b.copy_from_slice(a);\n}\n";
        let v = audit_file("src/demo.rs", src, &test_cfg());
        assert_eq!(v.len(), 2, "{v:?}"); // malformed waiver + unwaivered site
        assert!(v[0].msg.contains("CopyLayer"));
    }

    #[test]
    fn cheap_clone_waiver_and_arc_clone() {
        let src = "fn f(h: &Handle, a: &Arc<u8>) {\n\
                   let _x = Arc::clone(a);\n\
                   // zc-audit: allow(cheap-clone) — Handle is a refcounted view\n\
                   let _y = h.clone();\n}\n";
        let v = audit_file("src/demo.rs", src, &test_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_mod_and_test_tree_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(a: &[u8]) { let _ = a.to_vec(); }\n}\n";
        assert!(audit_file("src/demo.rs", src, &test_cfg()).is_empty());
        let v = audit_file(
            "src/tests/demo.rs",
            "fn g(a: &[u8]) { a.to_vec(); }",
            &test_cfg(),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn stale_waiver_flagged() {
        let src = "// zc-audit: allow(cheap-clone) — nothing here\nfn f() {}\n";
        let v = audit_file("src/demo.rs", src, &test_cfg());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("stale waiver"));
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n\
                   fn f(p: *mut u8) { unsafe { p.write(0) } }\n";
        let v = audit_file("src/unsafe_demo.rs", src, &test_cfg());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsafe-audit");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unsafe_with_safety_passes() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n\
                   fn f(p: *mut u8) {\n\
                   // SAFETY: p is valid for writes by contract.\n\
                   unsafe { p.write(0) }\n}\n";
        let v = audit_file("src/unsafe_demo.rs", src, &test_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_deny_attr_flagged() {
        let v = audit_file("src/unsafe_demo.rs", "fn f() {}\n", &test_cfg());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("unsafe_op_in_unsafe_fn"));
    }

    #[test]
    fn meter_coverage_flags_unmetered_fn() {
        let src = "fn fill(dst: &mut [u8], src: &[u8]) { dst.copy_from_slice(src); }\n\
                   fn metered(dst: &mut [u8], src: &[u8], meter: &M) {\n\
                       meter.record(src.len());\n\
                       dst.copy_from_slice(src);\n\
                   }\n";
        let v = audit_file("src/meter_demo.rs", src, &test_cfg());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "meter-coverage");
        assert_eq!(v[0].line, 1);
        assert!(v[0].msg.contains("fn fill"));
    }

    #[test]
    fn meter_coverage_respects_copy_waiver() {
        let src = "fn raw(dst: &mut [u8], src: &[u8]) {\n\
                   // zc-audit: allow(copy) — callers meter this as Demarshal\n\
                   dst.copy_from_slice(src);\n}\n";
        let v = audit_file("src/meter_demo.rs", src, &test_cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn format_and_vec_from_detected() {
        let cfg = Config::parse(
            r#"
[audit]
copy_layers = ["Marshal"]
[[copy_path.module]]
name = "demo"
paths = ["src/demo.rs"]
idioms = ["format", "vec_from", "ptr_copy"]
"#,
        )
        .unwrap();
        let src = "fn f(a: &[u8]) {\n\
                   let _s = format!(\"{}\", a.len());\n\
                   let _v = Vec::from(a);\n\
                   unsafe { ptr::copy_nonoverlapping(a.as_ptr(), a.as_ptr() as *mut u8, 0) };\n}\n";
        let v = audit_file("src/demo.rs", src, &cfg);
        assert_eq!(v.len(), 3, "{v:?}");
    }
}
