//! atomics-protocol pass: per-module atomic-ordering protocol enforcement.
//!
//! ROADMAP item 1 (sharded reactor core) retires the data-path locks and
//! leans entirely on the lock-free structures — the seqlock flight recorder,
//! the CAS-rolled `RateWindow`s, the refcounted buffers. Nothing in the type
//! system stops a refactor from quietly weakening `Ordering::Release` to
//! `Ordering::Relaxed`, so this pass enforces the ordering discipline
//! structurally: `[[atomics.protocol]]` blocks in `zc-audit.toml` declare
//! which protocol each lock-free module follows, and every atomic site in
//! the configured `[atomics] paths` must (a) fall inside some declared
//! protocol module and (b) use the orderings that protocol demands.
//!
//! Protocol kinds (see [`ProtocolKind`]):
//!
//! - `refcount` — Relaxed increment, Release decrement, Acquire fence (or
//!   acquire-flavored barrier) before the payload drop.
//! - `seqlock` — Release store publishes the sequence cell, Acquire load
//!   observes it; data fields in between stay Relaxed. A Relaxed re-check
//!   load of the sequence cell is tolerated only in a function that also
//!   claims via CAS or fences with Acquire.
//! - `cas-roll` — the window roll CAS (`compare_exchange`/`fetch_update`)
//!   must publish with AcqRel; every fast-path site stays Relaxed.
//! - `counter-relaxed` — statistics counters: Relaxed only, and `SeqCst`
//!   is flagged as needless even though it is "stronger".
//! - `release-flag` — a stop/shutdown flag: Release store, Acquire load,
//!   AcqRel read-modify-write.
//!
//! Violations are waivable only with an `allow(atomics-protocol)` waiver
//! comment whose reason cites the loom model covering the ordering
//! (enforced in [`crate::rules::collect_waivers`]).

use crate::config::{path_matches_any, AtomicProtocol, Config, ProtocolKind};
use crate::parser::{AtomicSite, FnItem};
use crate::rules::{waiver_for, Violation, Waiver, WaiverKind};
use crate::FileAnalysis;
use std::collections::BTreeMap;

/// Per-protocol site count for the JSON report.
#[derive(Debug, Clone)]
pub struct ProtocolStat {
    pub module: String,
    pub kind: &'static str,
    pub sites: usize,
}

/// Machine-readable summary of the pass (JSON `atomics` section).
#[derive(Debug, Clone, Default)]
pub struct AtomicsSummary {
    pub protocols: Vec<ProtocolStat>,
    /// Atomic sites inside `[atomics] paths` but outside every declared
    /// protocol module (each one is also a violation unless waived).
    pub undeclared_sites: usize,
}

/// Is this method a CAS-family read-modify-write whose first ordering is
/// the success ordering?
fn is_cas(method: &str) -> bool {
    matches!(
        method,
        "compare_exchange" | "compare_exchange_weak" | "fetch_update"
    )
}

/// Is this method a read-modify-write (CAS family, `swap`, `fetch_*`)?
fn is_rmw(method: &str) -> bool {
    is_cas(method) || method == "swap" || method.starts_with("fetch_")
}

pub(crate) fn run(
    files: &[FileAnalysis],
    cfg: &Config,
    waivers: &[BTreeMap<u32, Waiver>],
    out: &mut Vec<Violation>,
) -> AtomicsSummary {
    let ac = &cfg.atomics;
    let mut summary = AtomicsSummary::default();
    if ac.paths.is_empty() {
        return summary;
    }

    let mut states: Vec<ModState> = ac.protocols.iter().map(|_| ModState::default()).collect();

    for (fi, f) in files.iter().enumerate() {
        if f.in_test_tree || !path_matches_any(&f.rel, &ac.paths) {
            continue;
        }
        let proto_idx = ac
            .protocols
            .iter()
            .position(|p| path_matches_any(&f.rel, &p.paths));
        for item in &f.items {
            if item.is_test {
                continue;
            }
            for site in &item.atomics {
                let Some(pi) = proto_idx else {
                    summary.undeclared_sites += 1;
                    if waiver_for(&waivers[fi], site.line, &[WaiverKind::AtomicsProtocol]).is_none()
                    {
                        out.push(Violation {
                            file: f.rel.clone(),
                            line: site.line,
                            rule: "atomics-protocol",
                            msg: format!(
                                "atomic `{}` site outside any declared [[atomics.protocol]] \
                                 module; declare this file's protocol in zc-audit.toml or \
                                 waive with allow(atomics-protocol) citing the covering \
                                 loom model",
                                site.method
                            ),
                        });
                    }
                    continue;
                };
                let proto = &ac.protocols[pi];
                let st = &mut states[pi];
                st.sites += 1;
                track_module_state(proto, site, st, fi);
                if let Some(problem) = site_problem(proto, item, site) {
                    st.site_problems += 1;
                    if waiver_for(&waivers[fi], site.line, &[WaiverKind::AtomicsProtocol]).is_none()
                    {
                        out.push(Violation {
                            file: f.rel.clone(),
                            line: site.line,
                            rule: "atomics-protocol",
                            msg: format!(
                                "protocol `{}` ({}): {}",
                                proto.module,
                                proto.kind.name(),
                                problem
                            ),
                        });
                    }
                }
            }
        }
    }

    // Module-level pairing checks: only when every site individually
    // conforms (otherwise the pairing failure just restates a site finding).
    for (pi, st) in states.iter().enumerate() {
        let proto = &ac.protocols[pi];
        summary.protocols.push(ProtocolStat {
            module: proto.module.clone(),
            kind: proto.kind.name(),
            sites: st.sites,
        });
        if st.site_problems > 0 {
            continue;
        }
        let anchored = |out: &mut Vec<Violation>, at: (usize, u32), msg: String| {
            let (fi, line) = at;
            if waiver_for(&waivers[fi], line, &[WaiverKind::AtomicsProtocol]).is_none() {
                out.push(Violation {
                    file: files[fi].rel.clone(),
                    line,
                    rule: "atomics-protocol",
                    msg,
                });
            }
        };
        match proto.kind {
            ProtocolKind::Seqlock => {
                if let Some(at) = st.first_seq {
                    if !(st.seq_release_store && st.seq_acquire_load) {
                        anchored(
                            out,
                            at,
                            format!(
                                "protocol `{}` (seqlock): publication must pair a Release \
                                 store of the sequence cell with an Acquire load; the \
                                 module has {}",
                                proto.module,
                                match (st.seq_release_store, st.seq_acquire_load) {
                                    (false, false) => "neither",
                                    (false, true) => "no Release store",
                                    (true, false) => "no Acquire load",
                                    (true, true) => unreachable!(),
                                }
                            ),
                        );
                    }
                }
            }
            ProtocolKind::Refcount => {
                if let Some(at) = st.first_dec {
                    if !st.has_acquire_barrier {
                        anchored(
                            out,
                            at,
                            format!(
                                "protocol `{}` (refcount): a Release decrement needs an \
                                 Acquire fence (or acquire-flavored load/RMW) before the \
                                 payload drop; none found in the module",
                                proto.module
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
    summary
}

/// Per-protocol accumulation for the module-level pairing checks.
#[derive(Default)]
struct ModState {
    sites: usize,
    /// Site-level problems seen (waived or not): when a site already
    /// deviates, the module-level pairing check would only restate it.
    site_problems: usize,
    seq_release_store: bool,
    seq_acquire_load: bool,
    first_seq: Option<(usize, u32)>,
    has_decrement: bool,
    has_acquire_barrier: bool,
    first_dec: Option<(usize, u32)>,
}

/// Update the per-module pairing state for one site.
fn track_module_state(proto: &AtomicProtocol, site: &AtomicSite, st: &mut ModState, fi: usize) {
    let o1 = site.orderings.first().map(String::as_str).unwrap_or("");
    match proto.kind {
        ProtocolKind::Seqlock => {
            let on_seq = site
                .recv
                .as_deref()
                .is_some_and(|r| proto.seq.iter().any(|s| s == r));
            if on_seq {
                if st.first_seq.is_none() {
                    st.first_seq = Some((fi, site.line));
                }
                if site.method == "store" && o1 == "Release" {
                    st.seq_release_store = true;
                }
                if site.method == "load" && o1 == "Acquire" {
                    st.seq_acquire_load = true;
                }
            }
        }
        ProtocolKind::Refcount => {
            if site.method == "fetch_sub" {
                st.has_decrement = true;
                if st.first_dec.is_none() {
                    st.first_dec = Some((fi, site.line));
                }
            }
            let acquirey = matches!(o1, "Acquire" | "AcqRel");
            if acquirey && (site.method == "fence" || site.method == "load" || is_rmw(&site.method))
            {
                st.has_acquire_barrier = true;
            }
        }
        _ => {}
    }
}

/// Check one site against its module's protocol. Returns the problem
/// description, or `None` when the site conforms.
fn site_problem(proto: &AtomicProtocol, item: &FnItem, site: &AtomicSite) -> Option<String> {
    let ords = &site.orderings;
    let o1 = ords.first().map(String::as_str).unwrap_or("");
    let method = site.method.as_str();
    match proto.kind {
        ProtocolKind::CounterRelaxed => {
            if let Some(o) = ords.iter().find(|o| o.as_str() != "Relaxed") {
                if o == "SeqCst" {
                    return Some(format!(
                        "needless `SeqCst` on a relaxed statistics counter (`{method}`); \
                         counters carry no synchronization, use Ordering::Relaxed"
                    ));
                }
                return Some(format!(
                    "counter sites must use Ordering::Relaxed (found `{o}` on `{method}`)"
                ));
            }
            None
        }
        ProtocolKind::CasRoll => {
            if is_cas(method) {
                if o1 != "AcqRel" {
                    return Some(format!(
                        "the window-roll CAS (`{method}`) must publish with success \
                         ordering AcqRel (found `{o1}`): the rolled counters must be \
                         visible to the thread that wins the roll"
                    ));
                }
                if ords.get(1).is_some_and(|o| o == "SeqCst") {
                    return Some(format!(
                        "needless `SeqCst` failure ordering on `{method}`; Relaxed is \
                         enough for the losing roller"
                    ));
                }
                None
            } else if method == "fence" {
                (o1 == "SeqCst").then(|| "needless `SeqCst` fence under cas-roll".to_string())
            } else if o1 != "Relaxed" {
                Some(format!(
                    "fast-path `{method}` must stay Ordering::Relaxed under cas-roll \
                     (found `{o1}`); only the roll CAS synchronizes"
                ))
            } else {
                None
            }
        }
        ProtocolKind::Seqlock => {
            let on_seq = site
                .recv
                .as_deref()
                .is_some_and(|r| proto.seq.iter().any(|s| s == r));
            if method == "fence" {
                if matches!(o1, "Acquire" | "Release") {
                    return None;
                }
                return Some(format!(
                    "seqlock fences must be Acquire or Release (found `{o1}`)"
                ));
            }
            if on_seq {
                match method {
                    "store" => (o1 != "Release").then(|| {
                        format!(
                            "publication store of sequence cell `{}` must be \
                             Ordering::Release (found `{o1}`)",
                            site.recv.as_deref().unwrap_or("seq")
                        )
                    }),
                    "load" => {
                        if o1 == "Acquire" {
                            return None;
                        }
                        // A Relaxed re-check is sound only after an Acquire
                        // barrier in the same function: the claim CAS on the
                        // writer side, the fence on the reader side.
                        let has_barrier = item.atomics.iter().any(|a| {
                            let ao = a.orderings.first().map(String::as_str).unwrap_or("");
                            (a.method == "fence" && ao == "Acquire")
                                || (is_cas(&a.method) && matches!(ao, "Acquire" | "AcqRel"))
                        });
                        if o1 == "Relaxed" && has_barrier {
                            return None;
                        }
                        Some(format!(
                            "sequence-cell load must be Ordering::Acquire (found `{o1}`; \
                             Relaxed is tolerated only as a re-check after an Acquire \
                             fence or claim CAS in the same fn)"
                        ))
                    }
                    m if is_cas(m) => (!matches!(o1, "Acquire" | "AcqRel")).then(|| {
                        format!(
                            "claim CAS on the sequence cell must acquire \
                             (success ordering Acquire or AcqRel, found `{o1}`)"
                        )
                    }),
                    _ => Some(format!(
                        "`{method}` on the sequence cell is outside the seqlock \
                         protocol (load/store/CAS only)"
                    )),
                }
            } else if o1 != "Relaxed" {
                Some(format!(
                    "non-sequence field under seqlock must be Ordering::Relaxed \
                     (found `{o1}` on `{method}`); the sequence cell orders publication"
                ))
            } else {
                None
            }
        }
        ProtocolKind::Refcount => match method {
            "fetch_add" => (o1 != "Relaxed")
                .then(|| format!("refcount increment must be Ordering::Relaxed (found `{o1}`)")),
            "fetch_sub" => (!matches!(o1, "Release" | "AcqRel")).then(|| {
                format!(
                    "refcount decrement must be Ordering::Release or AcqRel \
                     (found `{o1}`): prior writes must happen-before the drop"
                )
            }),
            "fence" => (!matches!(o1, "Acquire" | "Release"))
                .then(|| format!("refcount fences must be Acquire or Release (found `{o1}`)")),
            _ => ords
                .iter()
                .any(|o| o == "SeqCst")
                .then(|| format!("needless `SeqCst` on refcount `{method}`")),
        },
        ProtocolKind::ReleaseFlag => match method {
            "store" => (o1 != "Release")
                .then(|| format!("flag store must be Ordering::Release (found `{o1}`)")),
            "load" => (o1 != "Acquire")
                .then(|| format!("flag load must be Ordering::Acquire (found `{o1}`)")),
            "fence" => (!matches!(o1, "Acquire" | "Release"))
                .then(|| format!("flag fences must be Acquire or Release (found `{o1}`)")),
            m if is_rmw(m) => (o1 != "AcqRel")
                .then(|| format!("flag read-modify-write must be AcqRel (found `{o1}`)")),
            _ => None,
        },
    }
}
