//! wire-consts — single source of truth for protocol literals.
//!
//! Two checks:
//!
//! 1. **Families**: a configured hex prefix (e.g. `0x5A43`, the ASCII "ZC"
//!    tag) may be spelled as a literal only in its defining module. Any
//!    other non-test hex literal starting with those digits must import
//!    the constant instead, or carry an `allow(wire-const)` waiver (for
//!    coincidences like RNG seeds). String/byte literals are opaque to the
//!    lexer, so byte-string magics (`b"GIOP"`) are covered by the enum
//!    check and cross-asserting unit tests, not by families.
//! 2. **Enums**: a wire enum's explicit discriminants (the encode side —
//!    values are emitted by `as u8`/`as u32` casts) must be in bijection
//!    with its decoder's match-arm patterns (the decode side). A variant
//!    without a decode arm, or an arm decoding a value no variant encodes,
//!    is drift. Values are compared numerically when both sides are
//!    literals, and by final path segment when either side names a
//!    constant — so `ZcOctetSeq = ZC_TAG` must be decoded by a `ZC_TAG`
//!    arm, not a re-spelled literal.

use std::collections::BTreeMap;

use crate::config::{path_matches_any, Config};
use crate::lexer::{Tok, TokKind};
use crate::rules::{waiver_for, Violation, Waiver, WaiverKind};
use crate::FileAnalysis;

/// A discriminant / match-arm value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Val {
    Num(u128),
    Sym(String),
}

impl std::fmt::Display for Val {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Val::Num(n) => write!(f, "{n}"),
            Val::Sym(s) => write!(f, "`{s}`"),
        }
    }
}

pub(crate) fn run(
    files: &[FileAnalysis],
    cfg: &Config,
    waivers: &[BTreeMap<u32, Waiver>],
    out: &mut Vec<Violation>,
) {
    for fam in &cfg.wire.families {
        let Some(want) = hex_digits(&fam.prefix) else {
            continue;
        };
        for (fi, file) in files.iter().enumerate() {
            if path_matches_any(&file.rel, &fam.defined_in) || file.in_test_tree {
                continue;
            }
            for (i, t) in file.scanned.toks.iter().enumerate() {
                if t.kind != TokKind::Number {
                    continue;
                }
                let Some(digits) = hex_digits(&t.text) else {
                    continue;
                };
                if !digits.starts_with(&want) {
                    continue;
                }
                if file.test_spans.iter().any(|&(a, b)| i >= a && i <= b) {
                    continue;
                }
                if waiver_for(&waivers[fi], t.line, &[WaiverKind::WireConst]).is_some() {
                    continue;
                }
                out.push(Violation {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: "wire-consts",
                    msg: format!(
                        "literal `{}` duplicates wire-constant family `{}` (defined in \
                         {}); import the constant, or waive a coincidence with \
                         allow(wire-const)",
                        t.text,
                        fam.name,
                        fam.defined_in.join(", ")
                    ),
                });
            }
        }
    }

    for en in &cfg.wire.enums {
        let Some(file) = files.iter().find(|f| f.rel == en.file) else {
            out.push(Violation {
                file: en.file.clone(),
                line: 1,
                rule: "wire-consts",
                msg: format!(
                    "configured wire enum `{}`: file `{}` not found in workspace",
                    en.name, en.file
                ),
            });
            continue;
        };
        let toks = &file.scanned.toks;
        let Some(variants) = enum_variants(toks, &en.name) else {
            out.push(Violation {
                file: file.rel.clone(),
                line: 1,
                rule: "wire-consts",
                msg: format!(
                    "configured wire enum `{}` not found in `{}`",
                    en.name, en.file
                ),
            });
            continue;
        };
        // Prefer the decoder in the enum's own impl block: several types in
        // one file may share a decoder name (`from_octet`).
        let decoder = file
            .items
            .iter()
            .find(|f| f.name == en.decoder && f.qual.as_deref() == Some(en.name.as_str()))
            .or_else(|| file.items.iter().find(|f| f.name == en.decoder));
        let Some(decoder) = decoder else {
            out.push(Violation {
                file: file.rel.clone(),
                line: 1,
                rule: "wire-consts",
                msg: format!(
                    "configured decoder `fn {}` for wire enum `{}` not found in `{}`",
                    en.decoder, en.name, en.file
                ),
            });
            continue;
        };
        let arms = decoder_arm_values(toks, decoder.body);

        for (name, val, line) in &variants {
            let Some(val) = val else { continue };
            if !arms.iter().any(|(v, _)| v == val) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: *line,
                    rule: "wire-consts",
                    msg: format!(
                        "wire enum `{}` variant `{name}` (= {val}) has no matching \
                         decode arm in `fn {}`",
                        en.name, en.decoder
                    ),
                });
            }
        }
        for (val, line) in &arms {
            if !variants.iter().any(|(_, v, _)| v.as_ref() == Some(val)) {
                out.push(Violation {
                    file: file.rel.clone(),
                    line: *line,
                    rule: "wire-consts",
                    msg: format!(
                        "`fn {}` decodes {val}, which no `{}` variant encodes",
                        en.decoder, en.name
                    ),
                });
            }
        }
    }
}

/// Hex digit string (lowercase, `_` stripped) of a `0x…` literal; `None`
/// for anything else (decimal, float, non-number).
fn hex_digits(text: &str) -> Option<String> {
    let stripped: String = text.chars().filter(|&c| c != '_').collect();
    let rest = stripped
        .strip_prefix("0x")
        .or_else(|| stripped.strip_prefix("0X"))?;
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect::<String>()
        .to_ascii_lowercase();
    (!digits.is_empty()).then_some(digits)
}

/// Numeric value of a literal token, if parseable.
fn num_value(text: &str) -> Option<u128> {
    let stripped: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = hex_digits(text) {
        return u128::from_str_radix(&hex, 16).ok();
    }
    let digits: String = stripped.chars().take_while(char::is_ascii_digit).collect();
    // Reject floats (`1.5`) — the dot follows the leading digits.
    if stripped[digits.len()..].starts_with('.') {
        return None;
    }
    digits.parse().ok()
}

/// Explicit (or sequentially inferred) discriminants of `enum <name>`:
/// `(variant, value, line)` triples. `None` values are unknowable (implicit
/// after a symbolic discriminant) and skipped by the bijection check.
fn enum_variants(toks: &[Tok], name: &str) -> Option<Vec<(String, Option<Val>, u32)>> {
    let mut at = None;
    for i in 0..toks.len() {
        if toks[i].text == "enum" && toks.get(i + 1).is_some_and(|t| t.text == name) {
            at = Some(i);
            break;
        }
    }
    let start = at?;
    let (open, close) = brace_span(toks, start)?;

    let mut variants = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Skip attributes and doc comments are not tokens; attributes are.
        if toks[i].text == "#" {
            i = skip_attr(toks, i);
            continue;
        }
        if toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let vname = toks[i].text.clone();
        let vline = toks[i].line;
        let mut j = i + 1;
        // Tuple/struct variant payloads (not expected on wire enums, but
        // don't mis-parse them).
        if j < close && matches!(toks[j].text.as_str(), "(" | "{") {
            j = skip_group(toks, j);
        }
        let val = if j < close && toks[j].text == "=" {
            let mut k = j + 1;
            let mut val_toks = Vec::new();
            while k < close && toks[k].text != "," {
                val_toks.push(&toks[k]);
                k += 1;
            }
            j = k;
            classify(&val_toks)
        } else {
            // Implicit: previous + 1 when the previous value is numeric.
            match variants.last() {
                Some((_, Some(Val::Num(n)), _)) => Some(Val::Num(n + 1)),
                Some(_) => None,
                None => Some(Val::Num(0)),
            }
        };
        variants.push((vname, val, vline));
        // Advance past the `,`.
        while j < close && toks[j].text != "," {
            j += 1;
        }
        i = j + 1;
    }
    Some(variants)
}

/// Values decoded by the match arms inside `body`: `(value, line)` pairs.
/// Binding patterns (`other`, `_`), guards, and structural patterns are
/// skipped — only literal and constant-path arms participate.
fn decoder_arm_values(toks: &[Tok], body: (usize, usize)) -> Vec<(Val, u32)> {
    let (open, close) = body;
    let mut vals = Vec::new();
    for i in open + 1..close {
        if toks[i].text != "=" || toks.get(i + 1).map(|t| t.text.as_str()) != Some(">") {
            continue;
        }
        // Walk the pattern back to the previous arm/block boundary.
        let mut start = i;
        while start > open + 1 && !matches!(toks[start - 1].text.as_str(), "," | "{" | "}" | ";") {
            start -= 1;
        }
        let pat: Vec<&Tok> = toks[start..i].iter().collect();
        // `x if cond =>` guards: classify only the tokens before the `if`.
        let pat = match pat.iter().position(|t| t.text == "if") {
            Some(p) => pat[..p].to_vec(),
            None => pat,
        };
        // Alternation: `5 | 6 =>` contributes each alternative.
        for piece in pat.split(|t| t.text == "|") {
            if let Some(v) = classify(piece) {
                let line = piece.first().map(|t| t.line).unwrap_or(toks[i].line);
                vals.push((v, line));
            }
        }
    }
    vals
}

/// Classify a discriminant expression / arm pattern as a comparable value.
fn classify(toks: &[&Tok]) -> Option<Val> {
    let meaningful: Vec<&&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.text.as_str(), "(" | ")"))
        .collect();
    match meaningful.as_slice() {
        [t] if t.kind == TokKind::Number => num_value(&t.text).map(Val::Num),
        _ => {
            // A path of identifiers/`::` ending in a constant-looking name
            // (contains an uppercase letter). Lone lowercase identifiers
            // are match bindings, `_` is a catch-all: both skipped.
            if !meaningful
                .iter()
                .all(|t| t.kind == TokKind::Ident || t.text == ":")
            {
                return None;
            }
            let last = meaningful.iter().rev().find(|t| t.kind == TokKind::Ident)?;
            last.text
                .chars()
                .any(|c| c.is_ascii_uppercase())
                .then(|| Val::Sym(last.text.clone()))
        }
    }
}

/// Past-the-end index of a balanced `(…)`/`{…}`/`[…]` group at `i`.
fn skip_group(toks: &[Tok], i: usize) -> usize {
    let (openc, closec) = match toks[i].text.as_str() {
        "(" => ("(", ")"),
        "{" => ("{", "}"),
        _ => ("[", "]"),
    };
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].text == openc {
            depth += 1;
        } else if toks[j].text == closec {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Given `i` at a `#`, return the index just past the closing `]`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if j < toks.len() && toks[j].text == "!" {
        j += 1;
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("[") {
        return i + 1;
    }
    skip_group(toks, j)
}

/// From a token at/before a block's opening `{`, return (open, close).
fn brace_span(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < toks.len() && toks[i].text != "{" {
        if toks[i].text == ";" {
            return None;
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}
