//! wire-taint — inter-procedural panic/OOM safety for wire-controlled
//! values.
//!
//! A zero-copy decode path hands network bytes — lengths, offsets, counts —
//! straight into buffer management. One unchecked `with_capacity(wire_len)`
//! or slice index turns a hostile peer into a denial of service. The
//! corruption proptests probe this dynamically; this pass proves it
//! statically over the same call graph the other inter-procedural passes
//! use:
//!
//! 1. **Seeds**: every non-test function in a configured taint path whose
//!    name is a configured entrypoint (`decode`, `read_frame`, …). All of
//!    its parameters are wire-tainted — including `self`, so values read
//!    *through* a decoder (`dec.read_u32()?`) come back tainted.
//! 2. **Flow**: within a body, one forward scan tracks the tainted set.
//!    `let`/`for` bindings whose initializer mentions a tainted identifier
//!    become tainted; a rebind through a sanitizer — any `checked_*` /
//!    `saturating_*` call or a configured clamp identifier — *clears*
//!    taint, which is what makes `let len = checked_len(n)?;` the idiom
//!    this pass teaches. `x += tainted` taints `x`; calls on a tainted
//!    receiver taint their `&mut ident` arguments (how `read_exact` fills
//!    a header from the socket).
//! 3. **Edges**: a call whose receiver chain or argument list mentions a
//!    tainted identifier propagates all-params taint to every same-named
//!    workspace function. Std-prelude names are opaque (see
//!    [`crate::locks::OPAQUE_CALLEES`]) *except* when called as
//!    `self.method(..)`, which resolves within the same file and `impl`
//!    type — `self.take(n)` inside the CDR decoder must not vanish behind
//!    `Iterator::take`.
//! 4. **Sinks** (audited only in taint paths, test code exempt):
//!    - `taint-panic`: `.unwrap()` / `.expect(..)` / `panic!(..)` whose
//!      statement mentions a tainted value, and indexing/slicing whose
//!      *index expression* contains one (`buf[off..off + n]`).
//!    - `taint-arith`: binary `+` / `*` / `<<` (and `+=`) with a tainted
//!      operand — debug-panic or release-wraparound on wire data.
//!    - `taint-alloc`: configured allocator callees (`with_capacity`,
//!      `reserve`, `acquire`, …) or `vec![x; n]` with a tainted size and
//!      no clamp in the argument.
//!    - `taint-unsafe`: an `unsafe { … }` block touching a tainted value
//!      without a `SAFETY:` comment (≤ 3 lines above) citing a clamp.
//!
//! Each class has a same-named waiver kind whose reason must cite a
//! configured clamp; stale waivers are swept like every other kind.
//!
//! Known approximations (documented in docs/zero-copy-invariants.md):
//! guards (`if len > MAX { return Err }`) do not clear taint — only a
//! sanitizing *rebind* does; `match` binders and struct-field flows are
//! untracked; indexing with a tainted *receiver* but constant index is
//! deliberately not flagged (length-guarded constant indexing is idiomatic
//! in header parsing).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::config::{path_matches_any, Config};
use crate::lexer::TokKind;
use crate::locks::OPAQUE_CALLEES;
use crate::rules::{waiver_for, Violation, Waiver, WaiverKind};
use crate::FileAnalysis;

/// Global function handle: (file index, item index).
type FnRef = (usize, usize);

/// One flagged sink inside an analyzed function.
struct Sink {
    line: u32,
    kind: WaiverKind,
    what: String,
}

/// One outgoing tainted call edge.
struct TaintedCall {
    callee: String,
    /// The receiver chain starts at `self` (`self.take(n)`), which lets an
    /// otherwise-opaque name resolve within the same impl.
    via_self: bool,
}

pub(crate) fn run(
    files: &[FileAnalysis],
    cfg: &Config,
    waivers: &[BTreeMap<u32, Waiver>],
    out: &mut Vec<Violation>,
) {
    let tc = &cfg.taint;
    if tc.paths.is_empty() {
        return;
    }

    // Index every function by name.
    let mut by_name: HashMap<&str, Vec<FnRef>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ii, item) in file.items.iter().enumerate() {
            by_name
                .entry(item.name.as_str())
                .or_default()
                .push((fi, ii));
        }
    }

    // Seeds: configured entrypoints inside the taint paths.
    let mut queue: VecDeque<FnRef> = VecDeque::new();
    let mut origin: HashMap<FnRef, (String, u32)> = HashMap::new(); // seed name, distance
    for (fi, file) in files.iter().enumerate() {
        if !path_matches_any(&file.rel, &tc.paths) || file.in_test_tree {
            continue;
        }
        for (ii, item) in file.items.iter().enumerate() {
            if item.is_test || !tc.entrypoints.iter().any(|e| e == &item.name) {
                continue;
            }
            origin.insert((fi, ii), (item.name.clone(), 0));
            queue.push_back((fi, ii));
        }
    }

    // BFS along tainted call edges, analyzing each function once with all
    // parameters tainted (the over-approximate seed for reached callees).
    while let Some(r) = queue.pop_front() {
        let (seed, dist) = origin[&r].clone();
        let (fi, ii) = r;
        let file = &files[fi];
        let item = &file.items[ii];
        let audited = path_matches_any(&file.rel, &tc.paths) && !file.in_test_tree && !item.is_test;
        let (sinks, calls) = analyze_fn(file, ii, tc);

        if audited {
            for s in &sinks {
                if waiver_for(&waivers[fi], s.line, &[s.kind]).is_some() {
                    continue;
                }
                let rule = match s.kind {
                    WaiverKind::TaintPanic => "taint-panic",
                    WaiverKind::TaintArith => "taint-arith",
                    WaiverKind::TaintAlloc => "taint-alloc",
                    _ => "taint-unsafe",
                };
                let remedy = match s.kind {
                    WaiverKind::TaintPanic => "return an error instead, or rebind through a clamp",
                    WaiverKind::TaintArith => "use checked_/saturating_ arithmetic",
                    WaiverKind::TaintAlloc => {
                        "clamp the size (bounded_capacity / a configured clamp) first"
                    }
                    _ => "cite the clamp in the SAFETY: comment",
                };
                out.push(Violation {
                    file: file.rel.clone(),
                    line: s.line,
                    rule,
                    msg: format!(
                        "{} on a wire-tainted value in `fn {}`, reachable from \
                         untrusted entrypoint `fn {}` ({} call{} away); {} or waive \
                         with allow({}) citing a clamp",
                        s.what,
                        item.name,
                        seed,
                        dist,
                        if dist == 1 { "" } else { "s" },
                        remedy,
                        rule,
                    ),
                });
            }
        }

        for c in &calls {
            let opaque = OPAQUE_CALLEES.contains(&c.callee.as_str());
            if opaque && !c.via_self {
                continue;
            }
            let Some(targets) = by_name.get(c.callee.as_str()) else {
                continue;
            };
            for &g in targets {
                if origin.contains_key(&g) {
                    continue;
                }
                let gt = &files[g.0].items[g.1];
                if gt.is_test || files[g.0].in_test_tree {
                    continue;
                }
                // An opaque name only resolves as a same-impl method.
                if opaque && !(g.0 == fi && gt.qual == item.qual) {
                    continue;
                }
                origin.insert(g, (seed.clone(), dist + 1));
                queue.push_back(g);
            }
        }
    }
}

/// Analyze one function body with every parameter tainted: a single forward
/// token scan maintaining the tainted-identifier set, collecting sinks and
/// outgoing tainted calls.
fn analyze_fn(
    file: &FileAnalysis,
    ii: usize,
    tc: &crate::config::TaintConfig,
) -> (Vec<Sink>, Vec<TaintedCall>) {
    let item = &file.items[ii];
    let toks = &file.scanned.toks;
    let (open, close) = item.body;
    let mut taint: HashSet<String> = item.params.iter().map(|p| p.name.clone()).collect();
    let mut sinks = Vec::new();
    let mut calls = Vec::new();

    let in_child = |idx: usize| {
        file.items
            .iter()
            .enumerate()
            .any(|(oi, o)| oi != ii && o.body.0 > open && o.body.1 < close && o.contains(idx))
    };
    let is_clamp = |text: &str| {
        text.starts_with("checked_")
            || text.starts_with("saturating_")
            || tc.clamps.iter().any(|c| c == text)
    };
    let tainted_at = |taint: &HashSet<String>, i: usize| {
        toks[i].kind == TokKind::Ident && taint.contains(&toks[i].text)
    };
    // Walk a method receiver chain (`a.b.c`) leftwards from the identifier
    // at `i`; true when any link is tainted.
    let chain_tainted = |taint: &HashSet<String>, mut i: usize| -> bool {
        loop {
            if tainted_at(taint, i) {
                return true;
            }
            if i >= 2 && toks[i - 1].text == "." && toks[i - 2].kind == TokKind::Ident {
                i -= 2;
            } else {
                return false;
            }
        }
    };

    let mut i = open + 1;
    while i < close {
        if in_child(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];

        // --- taint propagation -------------------------------------------
        match t.text.as_str() {
            "let" | "for" => {
                let (binder_stop, rhs_stop) = if t.text == "let" {
                    ("=", ";")
                } else {
                    ("in", "{")
                };
                let mut j = i + 1;
                let mut binders = Vec::new();
                while j < close && toks[j].text != binder_stop && toks[j].text != ";" {
                    if toks[j].kind == TokKind::Ident
                        && !matches!(
                            toks[j].text.as_str(),
                            "mut" | "ref" | "_" | "Some" | "Ok" | "Err"
                        )
                    {
                        binders.push(toks[j].text.clone());
                    }
                    j += 1;
                }
                if j < close && toks[j].text == binder_stop {
                    // Scan the initializer for taint and sanitizers. A `{`
                    // at depth 0 also ends it (`if let … = x { … }`).
                    let mut k = j + 1;
                    let mut depth = 0i32;
                    let mut rhs_tainted = false;
                    let mut rhs_clamped = false;
                    while k < close {
                        match toks[k].text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => break,
                            s if s == rhs_stop && depth == 0 => break,
                            _ => {
                                if toks[k].kind == TokKind::Ident {
                                    if taint.contains(&toks[k].text) {
                                        rhs_tainted = true;
                                    }
                                    if is_clamp(&toks[k].text) {
                                        rhs_clamped = true;
                                    }
                                }
                            }
                        }
                        k += 1;
                    }
                    if rhs_tainted && !rhs_clamped {
                        taint.extend(binders);
                    } else {
                        // A rebind through a sanitizer (or from clean data)
                        // clears any earlier taint on these names.
                        for b in &binders {
                            taint.remove(b);
                        }
                    }
                }
            }
            _ => {}
        }

        // A call whose receiver chain or arguments are tainted writes taint
        // into its `&mut ident` arguments: `self.stream.read_exact(&mut
        // header)` is how socket bytes land in a local buffer.
        if t.kind == TokKind::Ident
            && !kw(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !(i > 0 && toks[i - 1].text == "fn")
        {
            let recv_hit = i >= 2 && toks[i - 1].text == "." && chain_tainted(&taint, i - 2);
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut arg_hit = false;
            let mut mut_args = Vec::new();
            while j < close {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "&" if toks.get(j + 1).is_some_and(|n| n.text == "mut")
                        && toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident) =>
                    {
                        mut_args.push(toks[j + 2].text.clone());
                    }
                    _ => {
                        if tainted_at(&taint, j) {
                            arg_hit = true;
                        }
                    }
                }
                j += 1;
            }
            if recv_hit || arg_hit {
                taint.extend(mut_args);
            }
        }

        // --- sinks and call edges ----------------------------------------
        match (t.kind, t.text.as_str()) {
            // `x[tainted]` / `x[a..a + n]`: indexing whose index expression
            // mentions a tainted identifier.
            (TokKind::Punct, "[") => {
                let indexable_recv = i > 0
                    && (toks[i - 1].kind == TokKind::Ident && !kw(&toks[i - 1].text)
                        || toks[i - 1].text == ")"
                        || toks[i - 1].text == "]");
                if indexable_recv {
                    let (idents, _) = bracket_idents(toks, i, close);
                    let hit = idents.iter().any(|s| taint.contains(s));
                    let clamped = idents.iter().any(|s| is_clamp(s));
                    if hit && !clamped {
                        sinks.push(Sink {
                            line: t.line,
                            kind: WaiverKind::TaintPanic,
                            what: "indexing/slicing".into(),
                        });
                    }
                }
            }
            // Binary `+` / `*`, compound `+=`, shift `<<`.
            (TokKind::Punct, "+") | (TokKind::Punct, "*") => {
                let compound = toks.get(i + 1).is_some_and(|n| n.text == "=");
                if compound && t.text == "+" {
                    // `x += …tainted…;` — flag, and `x` itself turns tainted.
                    let mut k = i + 2;
                    let mut depth = 0i32;
                    let mut rhs_tainted = false;
                    while k < close {
                        match toks[k].text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            ";" if depth == 0 => break,
                            _ => {
                                if tainted_at(&taint, k) {
                                    rhs_tainted = true;
                                }
                            }
                        }
                        k += 1;
                    }
                    if rhs_tainted {
                        sinks.push(Sink {
                            line: t.line,
                            kind: WaiverKind::TaintArith,
                            what: "unchecked `+=`".into(),
                        });
                        if i > 0 && toks[i - 1].kind == TokKind::Ident {
                            taint.insert(toks[i - 1].text.clone());
                        }
                    }
                } else if !compound {
                    if let Some(s) = binary_arith_sink(toks, i, close, &taint, &chain_tainted) {
                        sinks.push(s);
                    }
                }
            }
            (TokKind::Punct, "<") if toks.get(i + 1).is_some_and(|n| n.text == "<") => {
                let binary = i > 0
                    && (matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Number)
                        || toks[i - 1].text == ")"
                        || toks[i - 1].text == "]");
                if binary {
                    let left = i > 0 && chain_tainted(&taint, i - 1);
                    let right = toks
                        .get(i + 2)
                        .is_some_and(|n| n.kind == TokKind::Ident && taint.contains(&n.text));
                    if left || right {
                        sinks.push(Sink {
                            line: t.line,
                            kind: WaiverKind::TaintArith,
                            what: "unchecked `<<`".into(),
                        });
                    }
                }
            }
            // `vec![fill; n]` with a tainted repeat count.
            (TokKind::Ident, "vec")
                if toks.get(i + 1).is_some_and(|n| n.text == "!")
                    && toks.get(i + 2).is_some_and(|n| n.text == "[") =>
            {
                let (idents, semi_split) = bracket_idents(toks, i + 2, close);
                // `vec![a, b]` without a `;` is a list literal of fixed
                // arity, not a length-driven allocation — only the repeat
                // count of `vec![fill; n]` is a sizing sink.
                if let Some(s) = semi_split {
                    let len_part = &idents[s..];
                    let hit = len_part.iter().any(|s| taint.contains(s));
                    let clamped = len_part.iter().any(|s| is_clamp(s));
                    if hit && !clamped {
                        sinks.push(Sink {
                            line: t.line,
                            kind: WaiverKind::TaintAlloc,
                            what: "`vec![…; n]` sized".into(),
                        });
                    }
                }
            }
            // `unsafe { … }` touching tainted values.
            (TokKind::Ident, "unsafe") if toks.get(i + 1).is_some_and(|n| n.text == "{") => {
                let mut depth = 0i32;
                let mut k = i + 1;
                let mut touches = false;
                while k < close {
                    match toks[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if tainted_at(&taint, k) {
                                touches = true;
                            }
                        }
                    }
                    k += 1;
                }
                if touches {
                    let cited = file.scanned.comments.iter().any(|c| {
                        c.text.contains("SAFETY:")
                            && c.line <= t.line
                            && t.line - c.line <= 3
                            && (tc.clamps.iter().any(|cl| c.text.contains(cl.as_str()))
                                || c.text.contains("checked_")
                                || c.text.contains("saturating_"))
                    });
                    if !cited {
                        sinks.push(Sink {
                            line: t.line,
                            kind: WaiverKind::TaintUnsafe,
                            what: "`unsafe` block".into(),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Call-expression sinks and edges come from the parsed call sites; the
    // flow-sensitive set above is position-dependent, so recompute taint
    // state lazily by replaying? No — the scan above already fixed the set
    // as of each statement; calls are re-walked here against the *final*
    // set, which over-approximates only for values sanitized later in the
    // body (rebinds remove names, so a cleared `len` stays cleared).
    for call in &item.calls {
        if in_child(call.tok_idx) {
            continue;
        }

        // Panicking extractors: the whole statement left of the call is the
        // receiver expression (`data.first().copied().unwrap()` has no
        // single receiver identifier), so scan back to the statement start.
        if matches!(call.callee.as_str(), "unwrap" | "expect")
            && statement_tainted(toks, call.tok_idx, open, &taint)
        {
            sinks.push(Sink {
                line: call.line,
                kind: WaiverKind::TaintPanic,
                what: format!("`.{}()`", call.callee),
            });
        }

        let arg_hit = call.args.iter().any(|a| taint.contains(a));
        let recv_hit = call.recv.is_some() && chain_tainted(&taint, call.tok_idx - 2);
        if !arg_hit && !recv_hit {
            continue;
        }

        // Allocator sinks: tainted size with no clamp among the arguments.
        if tc.allocs.iter().any(|a| a == &call.callee)
            && arg_hit
            && !call.args.iter().any(|a| is_clamp(a))
        {
            sinks.push(Sink {
                line: call.line,
                kind: WaiverKind::TaintAlloc,
                what: format!("`{}(..)` sized", call.callee),
            });
        }

        calls.push(TaintedCall {
            callee: call.callee.clone(),
            via_self: receiver_root(toks, call.tok_idx) == Some("self"),
        });
    }

    // `panic!(…tainted…)`.
    let mut k = open + 1;
    while k < close {
        if toks[k].kind == TokKind::Ident
            && toks[k].text == "panic"
            && toks.get(k + 1).is_some_and(|n| n.text == "!")
            && !in_child(k)
        {
            let (idents, _) = paren_or_bracket_idents(toks, k + 2, close);
            if idents.iter().any(|s| taint.contains(s)) {
                sinks.push(Sink {
                    line: toks[k].line,
                    kind: WaiverKind::TaintPanic,
                    what: "`panic!`".into(),
                });
            }
        }
        k += 1;
    }

    sinks.sort_by_key(|s| s.line);
    (sinks, calls)
}

/// Binary `+`/`*` sink check at punct index `i`. Skips raw-pointer types
/// (`as *mut T`), unary deref, and reference-ish positions by requiring an
/// operand-shaped token on the left.
fn binary_arith_sink(
    toks: &[crate::lexer::Tok],
    i: usize,
    close: usize,
    taint: &HashSet<String>,
    chain_tainted: &dyn Fn(&HashSet<String>, usize) -> bool,
) -> Option<Sink> {
    let t = &toks[i];
    if i == 0 {
        return None;
    }
    let prev = &toks[i - 1];
    let operand_left = matches!(prev.kind, TokKind::Ident | TokKind::Number) && !kw(&prev.text)
        || prev.text == ")"
        || prev.text == "]";
    if !operand_left || prev.text == "as" {
        return None;
    }
    if t.text == "*"
        && toks
            .get(i + 1)
            .is_some_and(|n| matches!(n.text.as_str(), "mut" | "const"))
    {
        return None; // raw pointer type, not multiplication
    }
    let left = prev.kind == TokKind::Ident && chain_tainted(taint, i - 1);
    let mut right = false;
    if i + 1 < close {
        let n = &toks[i + 1];
        if n.kind == TokKind::Ident && taint.contains(&n.text) {
            right = true;
        }
    }
    (left || right).then(|| Sink {
        line: t.line,
        kind: WaiverKind::TaintArith,
        what: format!("unchecked `{}`", t.text),
    })
}

/// Identifier texts inside the bracket group opening at `open` (`[`), plus
/// the ident-count position of the first depth-0 `;` (for `vec![x; n]`).
fn bracket_idents(
    toks: &[crate::lexer::Tok],
    open: usize,
    close: usize,
) -> (Vec<String>, Option<usize>) {
    let mut depth = 0i32;
    let mut idents = Vec::new();
    let mut semi = None;
    let mut j = open;
    while j < close {
        match toks[j].text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ";" if depth == 1 => semi = Some(idents.len()),
            _ => {
                if toks[j].kind == TokKind::Ident {
                    idents.push(toks[j].text.clone());
                }
            }
        }
        j += 1;
    }
    (idents, semi)
}

/// Identifier texts inside the paren or bracket group opening at `open`.
fn paren_or_bracket_idents(
    toks: &[crate::lexer::Tok],
    open: usize,
    close: usize,
) -> (Vec<String>, Option<usize>) {
    bracket_idents(toks, open, close)
}

/// Does the statement containing the token at `at` mention a tainted
/// identifier to its left? Scans back to the nearest statement boundary
/// (`;`, `{`, `}`), clipped to the body open brace.
fn statement_tainted(
    toks: &[crate::lexer::Tok],
    at: usize,
    body_open: usize,
    taint: &HashSet<String>,
) -> bool {
    let mut i = at;
    while i > body_open + 1 {
        i -= 1;
        match toks[i].text.as_str() {
            ";" | "{" | "}" => return false,
            _ => {
                if toks[i].kind == TokKind::Ident && taint.contains(&toks[i].text) {
                    return true;
                }
            }
        }
    }
    false
}

/// The first identifier of the receiver chain of the call at `tok_idx`
/// (`self.inner.take(..)` → `self`), if it is a method call.
fn receiver_root(toks: &[crate::lexer::Tok], tok_idx: usize) -> Option<&str> {
    let mut i = tok_idx;
    while i >= 2 && toks[i - 1].text == "." && toks[i - 2].kind == TokKind::Ident {
        i -= 2;
    }
    (i != tok_idx).then(|| toks[i].text.as_str())
}

fn kw(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "in"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "move"
            | "fn"
            | "unsafe"
            | "as"
            | "where"
            | "impl"
            | "dyn"
            | "ref"
            | "mut"
            | "pub"
            | "use"
            | "mod"
            | "self"
    )
}
