//! reactor-readiness pass: blocking-leaf reachability from the future
//! reactor entrypoints.
//!
//! ROADMAP item 1 moves the data-path functions (`GiopConn` frame pump,
//! dispatch, deposit collection) onto non-blocking reactor shards. A shard
//! must never block, so every blocking leaf reachable from those functions
//! today is migration debt. This pass walks the same name-resolved call
//! graph the lock-order pass uses, starting from the configured
//! `[reactor] entrypoints`, and reports every reachable call to a
//! configured blocking leaf (`Mutex::lock`, socket read/write/connect,
//! `thread::sleep`, `JoinHandle::join`, channel `recv`).
//!
//! Findings are emitted under the `reactor-blocking` rule — **advisory**
//! until item 1 lands and `--deny-reactor` flips the gate. The point this
//! PR is the measured starting debt, not a clean bill.

use crate::config::Config;
use crate::locks::OPAQUE_CALLEES;
use crate::parser::CallSite;
use crate::rules::{waiver_for, Violation, Waiver, WaiverKind};
use crate::FileAnalysis;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// One blocking leaf reachable from a reactor entrypoint (JSON `reactor`
/// section and the human report).
#[derive(Debug, Clone)]
pub struct ReactorFinding {
    pub file: String,
    pub line: u32,
    /// The blocking callee (`lock`, `recv_data`, `sleep`, …).
    pub leaf: String,
    /// The entrypoint whose BFS tree first reached the enclosing fn.
    pub entrypoint: String,
    /// One call chain from the entrypoint to the enclosing fn (names).
    pub chain: Vec<String>,
}

/// Does this call have the *shape* of its blocking namesake? Filters the
/// worst name collisions: `parts.join(sep)` is not `JoinHandle::join`,
/// a free `read()` helper is not `Read::read`.
fn blocking_shape(c: &CallSite) -> bool {
    // `(` is at tok_idx + 1, so an empty argument list closes at + 2.
    let no_args = c.args_close == c.tok_idx + 2;
    match c.callee.as_str() {
        "lock" | "join" => c.recv.is_some() && no_args,
        "read" | "write" | "recv" | "recv_timeout" | "wait" => c.recv.is_some(),
        _ => true,
    }
}

pub(crate) fn run(
    files: &[FileAnalysis],
    cfg: &Config,
    waivers: &[BTreeMap<u32, Waiver>],
    out: &mut Vec<Violation>,
) -> Vec<ReactorFinding> {
    let rc = &cfg.reactor;
    if rc.entrypoints.is_empty() {
        return Vec::new();
    }

    // Name-resolved graph: bare fn name → every non-test workspace fn of
    // that name (same over-approximation as the lock-order pass).
    let mut by_name: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (fi, f) in files.iter().enumerate() {
        if f.in_test_tree {
            continue;
        }
        for (ii, item) in f.items.iter().enumerate() {
            if item.is_test {
                continue;
            }
            by_name
                .entry(item.name.as_str())
                .or_default()
                .push((fi, ii));
        }
    }

    // BFS from the entrypoints, recording one parent per discovered name so
    // a concrete example chain can be reconstructed for each finding.
    let mut parent: HashMap<String, String> = HashMap::new();
    let mut root_ep: HashMap<String, String> = HashMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for ep in &rc.entrypoints {
        if by_name.contains_key(ep.as_str()) && !root_ep.contains_key(ep) {
            root_ep.insert(ep.clone(), ep.clone());
            queue.push_back(ep.clone());
        }
    }

    let mut findings: Vec<ReactorFinding> = Vec::new();
    let mut seen_sites: HashSet<(usize, u32, String)> = HashSet::new();
    while let Some(name) = queue.pop_front() {
        let ep = root_ep[&name].clone();
        let fns = by_name.get(name.as_str()).cloned().unwrap_or_default();
        for (fi, ii) in fns {
            let item = &files[fi].items[ii];
            for call in &item.calls {
                let callee = call.callee.as_str();
                if rc.blocking.iter().any(|b| b == callee) {
                    // A blocking name is a leaf: report (if it has the right
                    // shape) and never traverse into it.
                    if !blocking_shape(call)
                        || !seen_sites.insert((fi, call.line, callee.to_string()))
                    {
                        continue;
                    }
                    let mut chain = vec![name.clone()];
                    let mut cur = name.clone();
                    while let Some(p) = parent.get(&cur) {
                        chain.push(p.clone());
                        cur = p.clone();
                    }
                    chain.reverse();
                    if waiver_for(&waivers[fi], call.line, &[WaiverKind::ReactorBlocking]).is_some()
                    {
                        continue;
                    }
                    out.push(Violation {
                        file: files[fi].rel.clone(),
                        line: call.line,
                        rule: "reactor-blocking",
                        msg: format!(
                            "blocking leaf `{callee}` reachable from reactor entrypoint \
                             `{ep}` via {}; must go non-blocking (or move off-shard) \
                             before the ROADMAP item 1 reactor cutover",
                            chain.join(" -> ")
                        ),
                    });
                    findings.push(ReactorFinding {
                        file: files[fi].rel.clone(),
                        line: call.line,
                        leaf: callee.to_string(),
                        entrypoint: ep.clone(),
                        chain,
                    });
                    continue;
                }
                if OPAQUE_CALLEES.contains(&callee) || !by_name.contains_key(callee) {
                    continue;
                }
                if !root_ep.contains_key(callee) {
                    parent.insert(callee.to_string(), name.clone());
                    root_ep.insert(callee.to_string(), ep.clone());
                    queue.push_back(callee.to_string());
                }
            }
        }
    }

    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    findings
}
