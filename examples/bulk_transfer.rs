//! Bulk distribution: ship a large dataset to several storage nodes, once
//! over the conventional path and once under the zero-copy regime, and
//! compare what the copy meter saw — the paper's Figure 5/6 story at
//! example scale.
//!
//! ```text
//! cargo run --release --example bulk_transfer
//! ```

use std::sync::Arc;
use std::time::Instant;

use zcorba::buffers::{AlignedBuf, CopyMeter, ZcBytes};
use zcorba::cdr::{OctetSeq, ZcOctetSeq};
use zcorba::orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zcorba::transport::{SimConfig, SimNetwork};

const NODES: usize = 3;
const CHUNK: usize = 2 << 20; // 2 MiB per request
const CHUNKS_PER_NODE: usize = 8;

struct StorageNode;

impl Servant for StorageNode {
    fn repo_id(&self) -> &'static str {
        "IDL:bulk/StorageNode:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "store_std" => {
                let chunk: OctetSeq = req.arg()?;
                req.result(&(chunk.len() as u64))
            }
            "store_zc" => {
                let chunk: ZcOctetSeq = req.arg()?;
                req.result(&(chunk.len() as u64))
            }
            other => req.bad_operation(other),
        }
    }
}

fn run(label: &str, cfg: SimConfig, zc: bool) {
    let meter = CopyMeter::new_shared();
    let net = SimNetwork::new(cfg);
    let server_orb = Orb::builder()
        .sim(net.clone())
        .zc(zc)
        .meter(Arc::clone(&meter))
        .build();
    for n in 0..NODES {
        server_orb
            .adapter()
            .register(&format!("node-{n}"), Arc::new(StorageNode));
    }
    let server = server_orb.serve(0).unwrap();
    let client_orb = Orb::builder()
        .sim(net)
        .zc(zc)
        .meter(Arc::clone(&meter))
        .build();

    // the dataset: one aligned chunk reused per request (TTCP-style)
    let mut buf = AlignedBuf::zeroed(CHUNK);
    buf.as_mut_slice().fill(0xA5);
    let chunk = ZcBytes::from_aligned(buf);

    let before = meter.snapshot();
    let start = Instant::now();
    let mut threads = Vec::new();
    for n in 0..NODES {
        let ior = server
            .ior_for(&format!("node-{n}"), "IDL:bulk/StorageNode:1.0")
            .unwrap();
        let obj = client_orb.resolve_private(&ior).unwrap();
        let chunk = chunk.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..CHUNKS_PER_NODE {
                let acked: u64 = if zc {
                    obj.request("store_zc")
                        .arg(&ZcOctetSeq::from_zc(chunk.clone()))
                        .unwrap()
                        .invoke()
                        .unwrap()
                        .result()
                        .unwrap()
                } else {
                    obj.request("store_std")
                        .arg(&OctetSeq(chunk.as_slice().to_vec()))
                        .unwrap()
                        .invoke()
                        .unwrap()
                        .result()
                        .unwrap()
                };
                assert_eq!(acked as usize, CHUNK);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let wall = start.elapsed();
    let delta = meter.snapshot().since(&before);

    let total = (NODES * CHUNKS_PER_NODE * CHUNK) as f64;
    println!("--- {label} ---");
    println!(
        "  {} MiB to {NODES} nodes in {:.1} ms  →  {:.0} Mbit/s aggregate",
        total as usize >> 20,
        wall.as_secs_f64() * 1e3,
        total * 8.0 / wall.as_secs_f64() / 1e6
    );
    println!(
        "  payload copies along the way: {:.2} per byte\n",
        delta.overhead_bytes() as f64 / total
    );
    server.shutdown();
}

fn main() {
    println!(
        "distributing {} MiB ({} nodes × {} × {} MiB)\n",
        (NODES * CHUNKS_PER_NODE * CHUNK) >> 20,
        NODES,
        CHUNKS_PER_NODE,
        CHUNK >> 20
    );
    run(
        "conventional: sequence<octet>, standard ORB, copying stack",
        SimConfig::copying(),
        false,
    );
    run(
        "zero-copy: sequence<ZC_Octet>, direct deposit, zero-copy stack",
        SimConfig::zero_copy(),
        true,
    );
}
