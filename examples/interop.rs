//! Interoperability: the optimization must never break standard CORBA.
//!
//! A server offers zero-copy; three clients connect — a homogeneous
//! ZC-capable peer, a homogeneous peer with ZC disabled, and a peer
//! claiming a *foreign architecture* (swapped byte order). All three run
//! the same application code against the same IOR string; only the
//! negotiated data path differs.
//!
//! ```text
//! cargo run --example interop
//! ```

use std::sync::Arc;

use zcorba::cdr::ZcOctetSeq;
use zcorba::orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zcorba::transport::{SimConfig, SimNetwork};

struct Calculator;

impl Servant for Calculator {
    fn repo_id(&self) -> &'static str {
        "IDL:interop/Calculator:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            // mixed scalar types exercise real byte-order conversion for
            // the foreign peer
            "fma" => {
                let a: f64 = req.arg()?;
                let b: f64 = req.arg()?;
                let c: i64 = req.arg()?;
                req.result(&(a * b + c as f64))
            }
            "blob_sum" => {
                let blob: ZcOctetSeq = req.arg()?;
                req.result(&blob.iter().map(|&x| x as u64).sum::<u64>())
            }
            other => req.bad_operation(other),
        }
    }
}

fn exercise(label: &str, client_orb: &Orb, ior_string: &str) {
    let obj = client_orb.resolve_str(ior_string).expect("resolve");
    let fma: f64 = obj
        .request("fma")
        .arg(&2.5f64)
        .unwrap()
        .arg(&4.0f64)
        .unwrap()
        .arg(&-3i64)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(fma, 7.0);

    let blob = ZcOctetSeq::from_zc({
        let mut b = zcorba::buffers::AlignedBuf::zeroed(100_000);
        b.as_mut_slice().fill(3);
        zcorba::buffers::ZcBytes::from_aligned(b)
    });
    let sum: u64 = obj
        .request("blob_sum")
        .arg(&blob)
        .unwrap()
        .invoke()
        .unwrap()
        .result()
        .unwrap();
    assert_eq!(sum, 300_000);

    println!(
        "{label:<46} fma ✓  blob ✓   zero-copy deposits: {}",
        if obj.is_zero_copy() {
            "ON"
        } else {
            "off (fell back to marshaled IIOP)"
        }
    );
}

fn main() {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let server_orb = Orb::builder().sim(net.clone()).zc(true).build();
    server_orb.adapter().register("calc", Arc::new(Calculator));
    let server = server_orb.serve(0).unwrap();
    let ior = server
        .ior_for("calc", "IDL:interop/Calculator:1.0")
        .unwrap()
        .to_ior_string();
    println!("server IOR: {}…\n", &ior[..40]);

    let native_zc = Orb::builder().sim(net.clone()).zc(true).build();
    exercise("homogeneous peer, ZC offered:", &native_zc, &ior);

    let native_no_zc = Orb::builder().sim(net.clone()).zc(false).build();
    exercise("homogeneous peer, ZC refused:", &native_no_zc, &ior);

    let foreign = Orb::builder().sim(net).pretend_foreign(true).build();
    exercise("foreign architecture (swapped byte order):", &foreign, &ior);

    println!("\nsame application code, same IOR, same results — only the data path differs.");
    server.shutdown();
}
