//! The TTCP benchmark as a command-line tool — the workhorse of §5.
//!
//! ```text
//! cargo run --release --example ttcp -- [raw|zc-tcp|corba|corba-zc] [block_kib] [total_mib]
//! cargo run --release --example ttcp -- all
//! ```

use zcorba::ttcp::{run_measured, run_modeled, TtcpParams, TtcpVersion};

fn parse_version(s: &str) -> Option<TtcpVersion> {
    Some(match s {
        "raw" => TtcpVersion::RawTcp,
        "zc-tcp" => TtcpVersion::ZcTcp,
        "corba" => TtcpVersion::CorbaStd,
        "corba-zc" => TtcpVersion::CorbaZc,
        _ => return None,
    })
}

fn run_one(version: TtcpVersion, block: usize, total: usize) {
    let mut p = TtcpParams::new(version, block, total);
    p.verify = true;
    let out = run_measured(&p);
    println!(
        "{:<26} block {:>7}  {:>9.0} Mbit/s on this host   ({:>6.1} Mbit/s on the 2003 testbed model)   {:.2} copies/byte",
        version.label(),
        format!("{}K", block >> 10),
        out.mbit_s,
        run_modeled(version, block),
        out.overhead_copy_factor,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let block = args
        .get(1)
        .and_then(|s| s.parse::<usize>().ok())
        .map(|k| k << 10)
        .unwrap_or(1 << 20);
    let total = args
        .get(2)
        .and_then(|s| s.parse::<usize>().ok())
        .map(|m| m << 20)
        .unwrap_or(16 << 20);

    match args.first().map(String::as_str) {
        Some("all") | None => {
            println!(
                "ttcp: {} MiB in {} KiB blocks, all versions\n",
                total >> 20,
                block >> 10
            );
            for v in [
                TtcpVersion::RawTcp,
                TtcpVersion::ZcTcp,
                TtcpVersion::CorbaStd,
                TtcpVersion::CorbaZc,
            ] {
                run_one(v, block, total);
            }
        }
        Some(name) => match parse_version(name) {
            Some(v) => run_one(v, block, total),
            None => {
                eprintln!("unknown version {name:?}; use raw | zc-tcp | corba | corba-zc | all");
                std::process::exit(1);
            }
        },
    }
}
