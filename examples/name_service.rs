//! Naming service + data-parallel collectives: bootstrap a small
//! "compute grid" the way a real CORBA deployment would — one well-known
//! name service, workers registered by name, work scattered zero-copy.
//!
//! ```text
//! cargo run --example name_service
//! ```

use std::sync::Arc;

use zcorba::buffers::{AlignedBuf, ZcBytes};
use zcorba::cdr::ZcOctetSeq;
use zcorba::orb::naming::{install_name_service, NamingClient};
use zcorba::orb::{ObjectAdapterExt, Orb, OrbResult, ParGroup, Servant, ServerRequest};
use zcorba::transport::{SimConfig, SimNetwork};

/// A histogram worker: counts byte values in its part of the data.
struct HistogramWorker;

impl Servant for HistogramWorker {
    fn repo_id(&self) -> &'static str {
        "IDL:grid/HistogramWorker:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            // the ParGroup scatter contract
            "histogram" => {
                let part: u32 = req.arg()?;
                let _parts: u32 = req.arg()?;
                let _offset: u64 = req.arg()?;
                let data: ZcOctetSeq = req.arg()?;
                let mut counts = vec![0u64; 256];
                for &b in data.iter() {
                    counts[b as usize] += 1;
                }
                println!(
                    "  worker got part {part}: {} bytes (page aligned: {})",
                    data.len(),
                    data.is_page_aligned()
                );
                req.result(&counts)
            }
            other => req.bad_operation(other),
        }
    }
}

fn main() {
    let net = SimNetwork::new(SimConfig::zero_copy());

    // --- the grid: one server ORB hosting the name service and 3 workers
    let grid_orb = Orb::builder().sim(net.clone()).build();
    let server = grid_orb.serve(0).expect("serve");
    install_name_service(&grid_orb, &server).expect("name service");
    for i in 0..3 {
        grid_orb
            .adapter()
            .register(&format!("worker-{i}"), Arc::new(HistogramWorker));
    }

    // the grid registers its workers under well-known names
    let bootstrap = Orb::builder().sim(net.clone()).build();
    let ns = NamingClient::connect(&bootstrap, server.host(), server.port()).expect("ns");
    for i in 0..3 {
        let ior = server
            .ior_for(&format!("worker-{i}"), "IDL:grid/HistogramWorker:1.0")
            .unwrap();
        ns.bind(&format!("grid/worker/{i}"), &ior).unwrap();
    }
    println!("bound names: {:?}\n", ns.list().unwrap());

    // --- a client that knows only the name service endpoint
    let client = Orb::builder().sim(net).build();
    let ns = NamingClient::connect(&client, server.host(), server.port()).expect("ns");
    let members = ns
        .list()
        .unwrap()
        .iter()
        .map(|name| {
            let ior = ns.resolve_name(name).unwrap();
            client.resolve_private(&ior).unwrap()
        })
        .collect();
    let group = ParGroup::new(members);

    // 8 MiB of data, scattered to the workers by reference (O(1) slices)
    let mut buf = AlignedBuf::zeroed(8 << 20);
    for (i, b) in buf.as_mut_slice().iter_mut().enumerate() {
        *b = ((i / 4096) % 7) as u8; // page-striped values 0..6
    }
    let data = ZcBytes::from_aligned(buf);
    println!(
        "scattering {} MiB to {} workers:",
        data.len() >> 20,
        group.len()
    );
    let partials: Vec<Vec<u64>> = group.scatter("histogram", &data).expect("scatter");

    // reduce on the master
    let mut total = vec![0u64; 256];
    for p in &partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    let counted: u64 = total.iter().sum();
    assert_eq!(counted as usize, data.len());
    println!(
        "\nhistogram complete: {counted} bytes counted; values 0..6 ≈ {:?}",
        &total[..7]
    );
    server.shutdown();
}
