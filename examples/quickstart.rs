//! Quickstart: a remote object, a zero-copy bulk call, and the receipt
//! proving that no byte was copied along the way.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use zcorba::buffers::CopyMeter;
use zcorba::cdr::ZcOctetSeq;
use zcorba::orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zcorba::transport::{SimConfig, SimNetwork};

/// A trivial blob store: `put` takes a `sequence<ZC_Octet>` and returns a
/// checksum, `get` returns the stored blob.
struct BlobStore {
    stored: parking_lot_free::Mutex<Option<ZcOctetSeq>>,
}

// std Mutex under a nicer name (the example avoids extra dependencies)
mod parking_lot_free {
    pub use std::sync::Mutex;
}

impl Servant for BlobStore {
    fn repo_id(&self) -> &'static str {
        "IDL:quickstart/BlobStore:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "put" => {
                let blob: ZcOctetSeq = req.arg()?;
                let sum: u64 = blob.iter().map(|&b| b as u64).sum();
                *self.stored.lock().unwrap() = Some(blob);
                req.result(&sum)
            }
            "get" => {
                let blob = self
                    .stored
                    .lock()
                    .unwrap()
                    .clone()
                    .unwrap_or_else(|| ZcOctetSeq::with_length(0));
                req.result(&blob)
            }
            other => req.bad_operation(other),
        }
    }
}

fn main() {
    // One shared meter so the printout covers client AND server layers.
    let meter = CopyMeter::new_shared();

    // A process-local "cluster" running the zero-copy network stack.
    let net = SimNetwork::new(SimConfig::zero_copy());

    // --- server side ---
    let server_orb = Orb::builder()
        .sim(net.clone())
        .meter(Arc::clone(&meter))
        .build();
    server_orb.adapter().register(
        "store",
        Arc::new(BlobStore {
            stored: Default::default(),
        }),
    );
    let server = server_orb.serve(0).expect("serve");
    let ior = server
        .ior_for("store", "IDL:quickstart/BlobStore:1.0")
        .expect("ior");
    println!(
        "server up; stringified object reference:\n  {}\n",
        ior.to_ior_string()
    );

    // --- client side ---
    let client_orb = Orb::builder().sim(net).meter(Arc::clone(&meter)).build();
    let store = client_orb.resolve(&ior).expect("resolve");
    println!(
        "connection negotiated; zero-copy deposits active: {}\n",
        store.is_zero_copy()
    );

    // Build a 4 MiB payload in a page-aligned zero-copy block and fill it
    // in place — the application's single touch of the data.
    let mut blob = zcorba::buffers::AlignedBuf::zeroed(4 << 20);
    for (i, b) in blob.as_mut_slice().iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    let payload = ZcOctetSeq::from_zc(zcorba::buffers::ZcBytes::from_aligned(blob));
    let expected: u64 = payload.iter().map(|&b| b as u64).sum();

    let before = meter.snapshot();
    let sum: u64 = store
        .request("put")
        .arg(&payload)
        .expect("marshal")
        .invoke()
        .expect("invoke")
        .result()
        .expect("result");
    assert_eq!(sum, expected);

    let back: ZcOctetSeq = store
        .request("get")
        .invoke()
        .expect("invoke")
        .result()
        .expect("result");
    assert!(back.ptr_eq(&payload), "the same pages came back");
    let delta = meter.snapshot().since(&before);

    println!("moved 4 MiB there and back; copies recorded on the data path:");
    print!("{}", delta.report());
    println!(
        "overhead bytes copied: {} (control messages only — independent of payload size)",
        delta.overhead_bytes()
    );
    server.shutdown();
}
