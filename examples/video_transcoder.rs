//! The §5.4 technology demonstrator: a distributed MPEG transcoding farm.
//!
//! Synthetic video frames are distributed by CORBA requests to encoder
//! worker objects; results stream back. Run both data paths and compare.
//!
//! ```text
//! cargo run --release --example video_transcoder [-- --hdtv]
//! ```

use zcorba::mpeg::{EncoderConfig, FarmParams, PayloadMode, TranscodeFarm, VideoFormat};

fn main() {
    let hdtv = std::env::args().any(|a| a == "--hdtv");
    let (format, frames) = if hdtv {
        (VideoFormat::HDTV_1080, 12)
    } else {
        (VideoFormat::new(320, 192), 36)
    };

    println!(
        "transcoding {frames} frames of {}×{} ({:.2} MB raw each) on a 4-worker farm\n",
        format.width,
        format.height,
        format.frame_bytes() as f64 / 1e6
    );

    for payload in [PayloadMode::Standard, PayloadMode::ZeroCopy] {
        let params = FarmParams {
            workers: 4,
            frames,
            format,
            payload,
            encoder: EncoderConfig { quality: 8 },
            verify: true, // decode every bitstream and check PSNR
            passthrough: false,
            seed: 2003,
        };
        let out = TranscodeFarm::run(&params);
        println!(
            "{:?} path: {:.2} fps ({} frames in {:.2} s), raw input {:.0} Mbit/s, compressed to {:.1}% of input — {}",
            payload,
            out.fps,
            out.frames,
            out.wall.as_secs_f64(),
            out.input_mbit_s,
            100.0 * out.bytes_out as f64 / out.bytes_in as f64,
            if out.is_real_time(25.0) {
                "real-time at 25 fps"
            } else {
                "below real-time on this run"
            }
        );
    }

    println!(
        "\n(throughput on this host is dominated by the software DCT; the paper's\n\
         communication-side ×10 is reproduced by `cargo run -p zc-bench --bin transcoder`)"
    );
}
