//! Multi-producer stress test for the flight recorder on real threads.
//!
//! Complements the loom model (`tests/loom.rs`): instead of a perturbed
//! schedule over a handful of operations, this hammers the ring with
//! enough volume that torn reads or lost accounting would show up on any
//! host. Runs in the normal test suite (no special cfg).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use zc_trace::{EventKind, FlightRecorder, TraceEvent, TraceLayer};

fn sealed_event(producer: u64, seq: u64) -> TraceEvent {
    let conn = producer + 1;
    let trace = seq + 1;
    TraceEvent {
        ts_ns: seq,
        conn_id: conn,
        trace_id: trace,
        layer: TraceLayer::Giop,
        kind: EventKind::RequestSent,
        payload: conn.wrapping_mul(1_000_003) ^ trace,
    }
}

fn is_sealed(ev: &TraceEvent) -> bool {
    ev.payload == (ev.conn_id.wrapping_mul(1_000_003) ^ ev.trace_id)
}

#[test]
fn eight_producers_and_a_reader_never_tear_an_event() {
    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 10_000;
    let rec = Arc::new(FlightRecorder::new(256));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let rec = Arc::clone(&rec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed = 0u64;
            // Sample `stop` *before* each pass so the reader always makes
            // one final sweep after the producers finish — on a loaded
            // single-CPU host this thread may not be scheduled at all until
            // then, and it must still observe the ring.
            loop {
                let stopping = stop.load(Ordering::Relaxed);
                for ev in rec.events() {
                    assert!(is_sealed(&ev), "torn event observed: {ev:?}");
                    observed += 1;
                }
                if stopping {
                    break;
                }
            }
            observed
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for s in 0..PER_PRODUCER {
                    rec.record(sealed_event(p, s));
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observed = reader.join().unwrap();

    // `recorded` counts attempts; every attempt either landed or is in
    // `dropped`, and a drop can only happen because a *different* attempt
    // succeeded on that slot — so drops are always a strict minority view.
    assert_eq!(rec.recorded(), PRODUCERS * PER_PRODUCER);
    assert!(
        rec.dropped() < rec.recorded(),
        "a drop implies another attempt's success"
    );
    assert!(observed > 0, "the concurrent reader saw events");

    // Quiescent ring: full, ordered by ticket, all sealed.
    let snap = rec.snapshot();
    assert_eq!(snap.len(), 256);
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "tickets ordered");
    assert!(snap.iter().all(|(_, ev)| is_sealed(ev)));
}

#[test]
fn tickets_of_surviving_events_are_the_newest() {
    // Single producer fills way past capacity: the survivors must be the
    // last `capacity` tickets, contiguously.
    let rec = FlightRecorder::new(64);
    for s in 0..10_000u64 {
        rec.record(sealed_event(0, s));
    }
    let snap = rec.snapshot();
    assert_eq!(snap.len(), 64);
    let first = snap[0].0;
    for (i, (ticket, ev)) in snap.iter().enumerate() {
        assert_eq!(*ticket, first + i as u64);
        assert!(is_sealed(ev));
        assert_eq!(ev.trace_id, *ticket + 1, "ticket order is write order");
    }
    assert_eq!(snap.last().unwrap().0, 9_999);
}
