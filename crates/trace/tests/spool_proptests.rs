//! Adversarial property tests for the spool reader. Segment files are
//! untrusted input — any process can write to the spool directory, a
//! crash can tear a record mid-write, and a bit flip on disk must never
//! take the analyzer down with it. Three guarantees under attack:
//!
//! 1. **Error, not panic** — truncation, bit flips, and pure garbage all
//!    come back as `Ok` (with the torn tail dropped) or `Err`, never a
//!    panic or abort.
//! 2. **Bounded peak allocation** — a record header lying about its
//!    length must not make the reader allocate the lie. Peak live bytes
//!    during a read stay within a fixed multiple of the 1 MiB record
//!    cap, no matter what the length prefixes claim.
//! 3. **Valid prefix survives** — whatever the damage past the first
//!    record, the intact records before it still decode, and
//!    `repair_segment` truncates to exactly that prefix.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use zc_trace::{
    read_spool_segment, repair_segment, spool_segments, EventKind, SpoolConfig, SpoolWriter,
    Telemetry, TraceLayer, SEGMENT_MAGIC, SPOOL_EVENT_LEN,
};

/// Tracks live heap bytes and their high watermark, so tests can assert
/// the reader's peak allocation is bounded regardless of lying lengths.
struct WatermarkAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for WatermarkAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let live = LIVE.fetch_add(layout.size(), Ordering::SeqCst) + layout.size();
        PEAK.fetch_max(live, Ordering::SeqCst);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::SeqCst);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: WatermarkAlloc = WatermarkAlloc;

/// The watermark is process-global; allocation-bounding tests serialize.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Mirrors the reader's internal record cap (`spool::MAX_RECORD_BYTES`).
const RECORD_CAP: usize = 1 << 20;

/// Peak-allocation budget for one read: the bounded record buffer plus
/// the decoded events plus headroom for the scratch the harness itself
/// allocates. A reader that trusts a lying length prefix blows through
/// this by orders of magnitude (a `u32::MAX` length would be 4 GiB).
const READ_ALLOC_BUDGET: usize = 8 * RECORD_CAP;

fn scratch_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "zcorba-spool-prop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One real segment written by the production writer — 300 events drained
/// from a live recorder — built once and mutated per proptest case.
fn base_segment() -> &'static Vec<u8> {
    static BASE: OnceLock<Vec<u8>> = OnceLock::new();
    BASE.get_or_init(|| {
        let dir = scratch_dir("base");
        let tele = Telemetry::with_capacity(1024);
        {
            let writer = SpoolWriter::spawn(std::sync::Arc::clone(&tele), SpoolConfig::new(&dir))
                .expect("spawn spool writer");
            for i in 0..300u64 {
                tele.record(TraceLayer::Orb, EventKind::Invoke, 1, i + 1, i);
            }
            drop(writer); // final drain + sync
        }
        let segments = spool_segments(&dir);
        assert!(!segments.is_empty(), "writer produced no segment");
        let bytes = std::fs::read(&segments[0]).expect("read base segment");
        let read = read_spool_segment(&segments[0]).expect("base segment valid");
        assert!(!read.truncated);
        assert_eq!(read.events.len(), 300);
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

fn write_case(tag: &str, bytes: &[u8]) -> (PathBuf, PathBuf) {
    let dir = scratch_dir(tag);
    let path = dir.join("spool-00000000.zcs");
    std::fs::write(&path, bytes).unwrap();
    (dir, path)
}

/// Read under the watermark allocator; returns (result, peak live delta).
fn read_bounded(path: &Path) -> (Result<usize, String>, usize) {
    let _guard = serial();
    let live_before = LIVE.load(Ordering::SeqCst);
    PEAK.store(live_before, Ordering::SeqCst);
    let result = read_spool_segment(path)
        .map(|r| r.events.len())
        .map_err(|e| e.to_string());
    let peak = PEAK.load(Ordering::SeqCst).saturating_sub(live_before);
    (result, peak)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a valid segment at any byte never panics, and decodes
    /// only whole records from the intact prefix.
    #[test]
    fn prop_truncation_never_panics(cut in 0usize..=1usize << 14) {
        let base = base_segment();
        let cut = cut.min(base.len());
        let (dir, path) = write_case("trunc", &base[..cut]);
        match read_spool_segment(&path) {
            Ok(read) => {
                prop_assert!(read.events.len() <= 300);
                // A cut below the full length must flag the torn tail
                // unless it happens to land exactly on a record boundary.
                if cut < 16 {
                    prop_assert!(read.events.is_empty());
                }
            }
            Err(_) => prop_assert!(cut < 16, "whole-header segment must not hard-error"),
        }
        // Repair then re-read: the repaired file must be cleanly valid.
        if cut >= 16 {
            repair_segment(&path).unwrap();
            let read = read_spool_segment(&path).unwrap();
            prop_assert!(!read.truncated, "repair left a torn tail");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any single bit flip: error or truncated data, never a panic, and
    /// never more decoded events than were written.
    #[test]
    fn prop_bit_flip_never_panics(byte in 0usize..1usize << 14, bit in 0u8..8) {
        let mut bytes = base_segment().clone();
        let byte = byte.min(bytes.len() - 1);
        bytes[byte] ^= 1 << bit;
        let (dir, path) = write_case("flip", &bytes);
        if let Ok(read) = read_spool_segment(&path) {
            prop_assert!(read.events.len() <= 300);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A record whose length prefix lies (up to `u32::MAX`) must be
    /// rejected without allocating the lie: peak live allocation during
    /// the read stays under the fixed budget.
    #[test]
    fn prop_lying_length_is_not_allocated(
        lie in (RECORD_CAP as u32 + 1)..=u32::MAX,
        crc: u32,
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&lie.to_le_bytes());
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let (dir, path) = write_case("lie", &bytes);
        let (result, peak) = read_bounded(&path);
        // The oversized record is a torn/corrupt tail: zero events, no error.
        prop_assert_eq!(result, Ok(0));
        prop_assert!(
            peak <= READ_ALLOC_BUDGET,
            "reader allocated {} bytes chasing a lying length of {}",
            peak,
            lie
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// In-cap length prefixes over garbage payloads: CRC rejects them,
    /// allocation stays bounded, no panic.
    #[test]
    fn prop_garbage_records_bounded(
        len in 0u32..=(RECORD_CAP as u32),
        crc: u32,
        fill: u8,
        supplied in 0usize..4096,
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&vec![fill; supplied]);
        let (dir, path) = write_case("garbage", &bytes);
        let (result, peak) = read_bounded(&path);
        if let Ok(events) = result {
            // Only a payload that really is `len` bytes of valid records
            // with a matching CRC could decode; garbage essentially never
            // does, but if the CRC collides the count is still bounded.
            prop_assert!(events <= RECORD_CAP / SPOOL_EVENT_LEN);
        }
        prop_assert!(peak <= READ_ALLOC_BUDGET, "peak {} over budget", peak);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pure garbage files (no valid magic): hard error or empty result,
    /// never a panic.
    #[test]
    fn prop_pure_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (dir, path) = write_case("pure", &bytes);
        let _ = read_spool_segment(&path);
        let _ = repair_segment(&path);
        let _ = read_spool_segment(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
