//! Concurrency model tests for the flight recorder, in loom style.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p zc-trace --test loom`.
//! The vendored `loom` is a stochastic-interleaving shim (see
//! `vendor/loom`): each `model` closure executes many times on real threads
//! with a seeded, perturbed schedule. Failures print a `LOOM_SEED` for
//! deterministic replay.
//!
//! What is modeled:
//! * **No torn events** — every event a reader observes must be exactly one
//!   of the events some producer wrote, never a mix of two writes racing on
//!   the same slot. Each event's payload is a function of its identifying
//!   fields, so a torn read breaks the relation.
//! * **Wraparound never blocks** — producers racing a full ring either
//!   claim a slot or drop the event; they never spin or deadlock, and the
//!   accounting (recorded + dropped = attempted) always balances.
#![cfg(loom)]

use loom::{explore, thread};
use zc_trace::{EventKind, FlightRecorder, Gauge, RateWindow, TraceEvent, TraceLayer};

/// The payload is derived from the identifying fields; a torn slot (fields
/// from two different writes) violates the relation.
fn sealed_event(producer: u64, seq: u64) -> TraceEvent {
    let conn = producer + 1;
    let trace = seq + 1;
    TraceEvent {
        ts_ns: producer ^ seq,
        conn_id: conn,
        trace_id: trace,
        layer: TraceLayer::Transport,
        kind: EventKind::DepositSent,
        payload: conn.wrapping_mul(1_000_003) ^ trace,
    }
}

fn is_sealed(ev: &TraceEvent) -> bool {
    ev.payload == (ev.conn_id.wrapping_mul(1_000_003) ^ ev.trace_id)
}

/// Two producers hammer a tiny (4-slot) ring while a reader snapshots
/// concurrently: every snapshot event must satisfy the payload relation
/// (no torn reads), and afterwards recorded + dropped must equal the number
/// of attempts.
#[test]
fn no_event_is_torn_under_contention() {
    loom::model(|| {
        let rec = std::sync::Arc::new(FlightRecorder::new(4));
        let mut handles = Vec::new();
        const PER_PRODUCER: u64 = 6;
        for p in 0..2u64 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(thread::spawn(move || {
                for s in 0..PER_PRODUCER {
                    rec.record(sealed_event(p, s));
                    explore();
                }
            }));
        }
        let reader = {
            let rec = std::sync::Arc::clone(&rec);
            thread::spawn(move || {
                for _ in 0..4 {
                    for ev in rec.events() {
                        assert!(is_sealed(&ev), "torn event observed: {ev:?}");
                    }
                    explore();
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();

        // `recorded` counts attempts; dropped ones are the subset whose
        // slot claim was refused.
        assert_eq!(rec.recorded(), 2 * PER_PRODUCER);
        assert!(rec.dropped() <= rec.recorded());
        // The final quiescent ring also satisfies the relation.
        let final_events = rec.events();
        assert!(final_events.iter().all(is_sealed));
        assert!(final_events.len() <= 4, "ring cannot exceed its capacity");
        assert!(!final_events.is_empty(), "some events must have landed");
    });
}

/// Producers greatly outnumber the ring's slots: wraparound must never
/// block (the model completes), drops are counted rather than spun on, and
/// the surviving events are the *newest* tickets, read un-torn.
#[test]
fn wraparound_never_blocks() {
    loom::model(|| {
        let rec = std::sync::Arc::new(FlightRecorder::new(2));
        let mut handles = Vec::new();
        const PER_PRODUCER: u64 = 8;
        for p in 0..3u64 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(thread::spawn(move || {
                for s in 0..PER_PRODUCER {
                    // Must return promptly whether the slot is claimed,
                    // being overwritten, or lapped — never waits.
                    rec.record(sealed_event(p, s));
                    explore();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 3 * PER_PRODUCER);
        // A claim is only ever refused because a competing attempt
        // published that slot, so not every attempt can have dropped.
        assert!(rec.dropped() < rec.recorded(), "some event must land");
        let events = rec.events();
        assert!(events.len() <= 2);
        assert!(events.iter().all(is_sealed), "torn event after wraparound");
    });
}

/// Concurrent tickers racing the once-per-window roll CAS (the `AcqRel`
/// success ordering audited by the `trace-windows` cas-roll protocol):
/// the lifetime total must stay exact no matter who wins each roll, the
/// CAS-retry loop must never spin forever (the model completes), and any
/// window count a reader observes is bounded by the total.
#[test]
fn rate_window_roll_cas_under_concurrent_tickers() {
    loom::model(|| {
        let w = std::sync::Arc::new(RateWindow::new(100));
        // Each ticker crosses three window boundaries, so every thread has
        // a chance to win (and to lose) a roll.
        const TICKS: &[u64] = &[10, 60, 110, 160, 210, 260];
        const TICKERS: u64 = 3;
        let mut handles = Vec::new();
        for _ in 0..TICKERS {
            let w = std::sync::Arc::clone(&w);
            handles.push(thread::spawn(move || {
                for &t in TICKS {
                    w.tick(t, 1);
                    explore();
                }
            }));
        }
        let reader = {
            let w = std::sync::Arc::clone(&w);
            thread::spawn(move || {
                let secs = w.window_ns() as f64 / 1e9;
                for &t in TICKS {
                    // A mid-race snapshot: whatever completed-window count
                    // backs the rate, it can never exceed the events that
                    // actually happened.
                    let in_window = (w.rate_per_s(t) * secs).round() as u64;
                    assert!(
                        in_window <= TICKERS * TICKS.len() as u64,
                        "window count {in_window} exceeds all events"
                    );
                    explore();
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        // Roll races may misattribute an event's *window*, never its
        // existence: the total is exact.
        assert_eq!(w.total(), TICKERS * TICKS.len() as u64);
    });
}

/// Concurrent `add`/`sub` on a [`Gauge`]: the saturating-subtract CAS loop
/// (`fetch_update`, Relaxed — waived in the `trace-windows` protocol) must
/// never underflow the current value past zero, never lose a competing
/// update, and the watermark must dominate every value the gauge held.
#[test]
fn gauge_sub_saturates_under_contention() {
    loom::model(|| {
        let g = std::sync::Arc::new(Gauge::new());
        let mut handles = Vec::new();
        for _ in 0..2 {
            let g = std::sync::Arc::clone(&g);
            handles.push(thread::spawn(move || {
                g.add(1);
                explore();
                // Oversized decrement: saturates at zero instead of
                // wrapping into a huge count.
                g.sub(2);
                explore();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = g.snapshot();
        // Every interleaving of {add(1), add(1), sub(2), sub(2)} drains the
        // gauge: subs saturate, so nothing can linger — and nothing can
        // underflow into the billions.
        assert_eq!(snap.current, 0, "saturating sub must drain to zero");
        assert!(
            (1..=2).contains(&snap.peak),
            "peak {} must dominate some observed value and no more",
            snap.peak
        );
    });
}
