//! Disabled-mode zero-overhead guarantees.
//!
//! With telemetry disabled the data path must pay exactly one boolean
//! check per would-be event: no heap allocation, and no atomic
//! read-modify-write (observable as the recorder cursor and metrics
//! counters never moving). A counting global allocator proves the
//! allocation half; the counters prove the RMW half.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use zc_trace::{EventKind, Stage, Telemetry, TraceLayer};

#[test]
fn disabled_record_allocates_nothing_and_moves_no_counter() {
    let tele = Telemetry::disabled();
    assert!(!tele.is_enabled());

    // Warm up any lazy state (the clock epoch, test-harness buffers).
    tele.record(TraceLayer::Orb, EventKind::Invoke, 1, 1, 0);

    let allocs_before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        tele.record(TraceLayer::Transport, EventKind::DepositSent, 1, i, 4096);
    }
    let allocs_after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "disabled telemetry allocated on the record path"
    );

    // No atomic RMW reached the recorder or the metrics: every cursor and
    // counter is exactly where it started.
    assert_eq!(tele.recorder().recorded(), 0);
    assert_eq!(tele.recorder().dropped(), 0);
    assert_eq!(tele.metrics().snapshot().requests_sent, 0);
    assert_eq!(tele.transport().snapshot().bytes_sent, 0);
}

#[test]
fn disabled_span_allocates_nothing_and_moves_no_counter() {
    let tele = Telemetry::disabled();

    // Warm up lazy state before counting.
    tele.record_stage(Stage::ClientMarshal, 1, 1, 0);
    let mut warm = tele.request_span();
    warm.commit(&tele, 1, 1);

    let allocs_before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        let mut span = tele.request_span();
        // begin() must not even read the clock when disabled
        let t0 = span.begin();
        assert!(t0.is_none());
        span.end(Stage::ClientMarshal, t0);
        span.add(Stage::ServerDispatch, i);
        span.commit(&tele, 1, i);
        tele.record_stage(Stage::Wire, 1, i, 100);
    }
    let allocs_after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "disabled span path allocated"
    );
    assert_eq!(tele.recorder().recorded(), 0);
    assert_eq!(tele.recorder().dropped(), 0);
    assert_eq!(
        tele.metrics().snapshot().stage_ns.total_count(),
        0,
        "disabled span path moved a stage histogram"
    );
}

#[test]
fn enabled_span_recording_does_not_allocate() {
    let tele = Telemetry::with_capacity(1024);
    tele.record_stage(Stage::ClientMarshal, 1, 1, 0);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let mut span = tele.request_span();
        let t0 = span.begin();
        span.end(Stage::ClientMarshal, t0);
        span.add(Stage::Wire, 42);
        span.commit(&tele, 1, i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "enabled span recording allocated");
    assert_eq!(
        tele.metrics().snapshot().stage_ns.get(Stage::Wire).count,
        10_000
    );
}

#[test]
fn disabled_telemetry_offers_no_mirror() {
    let tele = Telemetry::disabled();
    assert!(
        tele.transport_mirror().is_none(),
        "per-connection stats must not mirror into disabled telemetry"
    );
    assert!(tele.post_mortem(1, 8).is_none());
}

#[test]
fn enabled_record_does_not_allocate_either() {
    // The ring is pre-allocated at construction: steady-state recording is
    // allocation-free even when enabled (allocation happens only on
    // snapshot/export).
    let tele = Telemetry::with_capacity(1024);
    tele.record(TraceLayer::Giop, EventKind::RequestSent, 1, 1, 0);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        tele.record(TraceLayer::Giop, EventKind::RequestSent, 1, i, 64);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "steady-state recording allocated");
    assert_eq!(tele.recorder().recorded(), 10_001);
}
