//! Disabled-mode zero-overhead guarantees.
//!
//! With telemetry disabled the data path must pay exactly one boolean
//! check per would-be event: no heap allocation, and no atomic
//! read-modify-write (observable as the recorder cursor and metrics
//! counters never moving). A counting global allocator proves the
//! allocation half; the counters prove the RMW half.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use zc_trace::{EventKind, Stage, Telemetry, TraceLayer};

/// The allocation counter is process-global, so tests that assert on its
/// deltas must not overlap with another test's setup allocations. Each
/// counting test holds this lock for its measured region.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_record_allocates_nothing_and_moves_no_counter() {
    let _guard = serial();
    let tele = Telemetry::disabled();
    assert!(!tele.is_enabled());

    // Warm up any lazy state (the clock epoch, test-harness buffers).
    tele.record(TraceLayer::Orb, EventKind::Invoke, 1, 1, 0);

    let allocs_before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        tele.record(TraceLayer::Transport, EventKind::DepositSent, 1, i, 4096);
    }
    let allocs_after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "disabled telemetry allocated on the record path"
    );

    // No atomic RMW reached the recorder or the metrics: every cursor and
    // counter is exactly where it started.
    assert_eq!(tele.recorder().recorded(), 0);
    assert_eq!(tele.recorder().dropped(), 0);
    assert_eq!(tele.metrics().snapshot().requests_sent, 0);
    assert_eq!(tele.transport().snapshot().bytes_sent, 0);
}

#[test]
fn disabled_span_allocates_nothing_and_moves_no_counter() {
    let _guard = serial();
    let tele = Telemetry::disabled();

    // Warm up lazy state before counting.
    tele.record_stage(Stage::ClientMarshal, 1, 1, 0);
    let mut warm = tele.request_span();
    warm.commit(&tele, 1, 1);

    let allocs_before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        let mut span = tele.request_span();
        // begin() must not even read the clock when disabled
        let t0 = span.begin();
        assert!(t0.is_none());
        span.end(Stage::ClientMarshal, t0);
        span.add(Stage::ServerDispatch, i);
        span.commit(&tele, 1, i);
        tele.record_stage(Stage::Wire, 1, i, 100);
    }
    let allocs_after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "disabled span path allocated"
    );
    assert_eq!(tele.recorder().recorded(), 0);
    assert_eq!(tele.recorder().dropped(), 0);
    assert_eq!(
        tele.metrics().snapshot().stage_ns.total_count(),
        0,
        "disabled span path moved a stage histogram"
    );
}

#[test]
fn enabled_span_recording_does_not_allocate() {
    let _guard = serial();
    let tele = Telemetry::with_capacity(1024);
    tele.record_stage(Stage::ClientMarshal, 1, 1, 0);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let mut span = tele.request_span();
        let t0 = span.begin();
        span.end(Stage::ClientMarshal, t0);
        span.add(Stage::Wire, 42);
        span.commit(&tele, 1, i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "enabled span recording allocated");
    assert_eq!(
        tele.metrics().snapshot().stage_ns.get(Stage::Wire).count,
        10_000
    );
}

#[test]
fn disabled_telemetry_offers_no_mirror() {
    let _guard = serial();
    let tele = Telemetry::disabled();
    assert!(
        tele.transport_mirror().is_none(),
        "per-connection stats must not mirror into disabled telemetry"
    );
    assert!(tele.post_mortem(1, 8).is_none());
}

#[test]
fn disabled_load_notes_allocate_nothing_and_move_no_window() {
    let _guard = serial();
    let tele = Telemetry::disabled();

    // Warm up lazy state (the trace clock epoch) before counting.
    tele.note_request_received();

    // Retry the measured region: sibling test threads the harness is still
    // spawning allocate into the process-global counter (transient, a
    // handful once), whereas a real regression allocates on every one of
    // the 100 000 iterations and fails every attempt.
    let mut delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..100_000u64 {
            // Every load-signal helper the request path touches: all must
            // cost exactly the one enabled-flag load when telemetry is off.
            tele.note_request_received();
            tele.note_retry();
            tele.note_dispatch_begin();
            tele.note_dispatch_end();
            tele.note_conn_open();
            tele.note_conn_closed();
            tele.note_degraded(true);
            tele.note_breaker(true);
            tele.note_reassembly_bytes(4096);
            tele.note_pool_retained(4096);
            tele.note_wire_tx(4096);
            tele.note_wire_rx(4096);
            tele.mirror_transport(zc_trace::TransportField::WireBytesRecv, 4096);
        }
        delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if delta == 0 {
            break;
        }
    }
    assert_eq!(delta, 0, "disabled load notes allocated");

    // No atomics traffic: every window and gauge is exactly at zero.
    let load = tele.windows().snapshot(zc_trace::now_ns());
    assert_eq!(load.req_rx_total, 0);
    assert_eq!(load.req_per_s, 0.0);
    assert_eq!(load.wire_tx_bytes_per_s, 0.0);
    assert_eq!(load.wire_rx_bytes_per_s, 0.0);
    assert_eq!(tele.windows().wire_tx.total(), 0);
    assert_eq!(tele.windows().wire_rx.total(), 0);
    assert_eq!(load.inflight.peak, 0);
    assert_eq!(load.conns.peak, 0);
    assert_eq!(load.degraded_conns.peak, 0);
    assert_eq!(load.breakers_open.peak, 0);
    assert_eq!(load.reassembly_bytes.peak, 0);
    assert_eq!(load.pool_retained.peak, 0);
    assert_eq!(tele.transport().snapshot().wire_bytes_recv, 0);
}

#[test]
fn enabled_load_notes_do_not_allocate() {
    let _guard = serial();
    // Windows and gauges are fixed-size atomics inside Telemetry: ticking
    // them never heap-allocates, only rendering does.
    let tele = Telemetry::with_capacity(64);
    tele.note_request_received();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000u64 {
        tele.note_request_received();
        tele.note_dispatch_begin();
        tele.note_dispatch_end();
        tele.note_reassembly_bytes(1 << 20);
        tele.note_wire_tx(4096);
        tele.note_wire_rx(512);
        tele.mirror_transport(zc_trace::TransportField::WireBytesSent, 4096);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "enabled load notes allocated");
    let load = tele.windows().snapshot(zc_trace::now_ns());
    assert_eq!(load.req_rx_total, 10_001);
    assert_eq!(load.reassembly_bytes.peak, 1 << 20);
    assert_eq!(tele.windows().wire_tx.total(), 10_000 * 4096);
    assert_eq!(tele.windows().wire_rx.total(), 10_000 * 512);
    assert_eq!(tele.transport().snapshot().wire_bytes_sent, 10_000 * 4096);
}

#[test]
fn disabled_attempt_path_allocates_nothing_and_moves_no_counter() {
    let _guard = serial();
    let tele = Telemetry::disabled();

    // Warm up lazy state before counting.
    let _ = zc_trace::next_journey_id();
    tele.record_attempt(1, 1, zc_trace::JourneyCause::Initial, 0, 1);

    // This test sorts first, so it holds SERIAL while libtest is still
    // spawning the sibling test threads — spawns allocate, and those land
    // in the process-global counter. Retry the measured region: harness
    // noise is transient (a handful of allocations once), whereas a real
    // regression allocates on every one of the 100 000 iterations and
    // fails every attempt.
    let mut delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..100_000u64 {
            // The full per-invocation journey cost with telemetry off: one
            // relaxed fetch_add for the id (no clock read, no allocation)
            // and one enabled-flag load in record_attempt.
            let journey = zc_trace::next_journey_id();
            tele.record_attempt(1, i, zc_trace::JourneyCause::Retry, 1, journey);
        }
        delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if delta == 0 {
            break;
        }
    }
    assert_eq!(delta, 0, "disabled journey path allocated");
    assert_eq!(tele.recorder().recorded(), 0);
    assert_eq!(tele.recorder().dropped(), 0);
}

#[test]
fn enabled_attempt_recording_does_not_allocate() {
    let _guard = serial();
    let tele = Telemetry::with_capacity(1024);
    tele.record_attempt(1, 1, zc_trace::JourneyCause::Initial, 0, 1);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let journey = zc_trace::next_journey_id();
        tele.record_attempt(1, i, zc_trace::JourneyCause::Failover, 2, journey);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "enabled attempt recording allocated");
    assert_eq!(tele.recorder().recorded(), 10_001);
}

#[test]
fn enabled_record_does_not_allocate_either() {
    let _guard = serial();
    // The ring is pre-allocated at construction: steady-state recording is
    // allocation-free even when enabled (allocation happens only on
    // snapshot/export).
    let tele = Telemetry::with_capacity(1024);
    tele.record(TraceLayer::Giop, EventKind::RequestSent, 1, 1, 0);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        tele.record(TraceLayer::Giop, EventKind::RequestSent, 1, i, 64);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "steady-state recording allocated");
    assert_eq!(tele.recorder().recorded(), 10_001);
}
