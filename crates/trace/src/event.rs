//! The trace event: a tiny `Copy` record of one thing that happened on the
//! request path.
//!
//! Events are deliberately flat — six machine words, no strings, no heap —
//! so recording one cannot allocate and cannot perturb the zero-copy
//! numbers the recorder exists to explain. Context that would need a string
//! (operation names, peers) stays out of the event; the `trace_id` is the
//! join key back to richer request state.

/// The layer of the stack an event was recorded at. Mirrors the path of a
/// request through the middleware: application → ORB core → GIOP engine →
/// transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceLayer {
    /// Application / benchmark harness.
    App = 0,
    /// ORB core: proxies, dispatch, object adapter.
    Orb = 1,
    /// GIOP engine: request/reply framing, deposit manifests.
    Giop = 2,
    /// Transport: frames, speculation, the wire.
    Transport = 3,
}

impl TraceLayer {
    /// All layers, in data-path order.
    pub const ALL: [TraceLayer; 4] = [
        TraceLayer::App,
        TraceLayer::Orb,
        TraceLayer::Giop,
        TraceLayer::Transport,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TraceLayer::App => "app",
            TraceLayer::Orb => "orb",
            TraceLayer::Giop => "giop",
            TraceLayer::Transport => "transport",
        }
    }

    /// Inverse of `self as u8`.
    pub fn from_u8(v: u8) -> Option<TraceLayer> {
        TraceLayer::ALL.into_iter().find(|l| *l as u8 == v)
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A Request left this endpoint (payload: announced deposit bytes).
    RequestSent = 0,
    /// A Request arrived (payload: announced deposit bytes).
    RequestReceived = 1,
    /// A Reply left this endpoint (payload: result bytes).
    ReplySent = 2,
    /// A Reply arrived (payload: body bytes).
    ReplyReceived = 3,
    /// One deposit block shipped on the data path (payload: block bytes).
    DepositSent = 4,
    /// One deposit block landed (payload: block bytes).
    DepositReceived = 5,
    /// A zero-copy receive speculation held (payload: block bytes).
    SpecHit = 6,
    /// A speculation missed; the fallback copy ran (payload: block bytes).
    SpecMiss = 7,
    /// Client-side invocation completed (payload: latency in ns).
    Invoke = 8,
    /// Server-side servant dispatch completed (payload: duration in ns).
    Dispatch = 9,
    /// An error surfaced (payload: implementation-defined code).
    Error = 10,
    /// A failed invocation is being retried (payload: attempt number).
    Retry = 11,
    /// A dead connection was replaced by a fresh one (payload: new conn id).
    Reconnect = 12,
    /// An endpoint circuit breaker opened (payload: consecutive failures).
    BreakerOpen = 13,
    /// A connection degraded from zero-copy to the copying path
    /// (payload: recent speculation misses).
    Degrade = 14,
    /// A degraded connection re-upgraded to zero-copy (payload: probes run).
    Upgrade = 15,
    /// One request-span stage completed (payload: stage discriminant in the
    /// top byte, duration in ns in the low 56 bits — see
    /// [`crate::pack_stage`]).
    Stage = 16,
    /// Admission control shed a request before dispatch
    /// (payload: announced request bytes, body plus deposits).
    Shed = 17,
    /// A bulk request was shed by brownout-mode admission while
    /// control-plane traffic stayed admitted (payload: announced bytes).
    Brownout = 18,
    /// The client rotated an object reference to another IOR profile
    /// (payload: index of the newly active profile).
    Failover = 19,
    /// One attempt of a logical request journey began (payload: cause tag,
    /// attempt ordinal and journey id packed per [`pack_attempt`]). The
    /// event's `trace_id` is the attempt's per-send trace id — the join key
    /// from journey to that attempt's stage timeline.
    Attempt = 20,
}

impl EventKind {
    /// All kinds.
    pub const ALL: [EventKind; 21] = [
        EventKind::RequestSent,
        EventKind::RequestReceived,
        EventKind::ReplySent,
        EventKind::ReplyReceived,
        EventKind::DepositSent,
        EventKind::DepositReceived,
        EventKind::SpecHit,
        EventKind::SpecMiss,
        EventKind::Invoke,
        EventKind::Dispatch,
        EventKind::Error,
        EventKind::Retry,
        EventKind::Reconnect,
        EventKind::BreakerOpen,
        EventKind::Degrade,
        EventKind::Upgrade,
        EventKind::Stage,
        EventKind::Shed,
        EventKind::Brownout,
        EventKind::Failover,
        EventKind::Attempt,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RequestSent => "request-sent",
            EventKind::RequestReceived => "request-recv",
            EventKind::ReplySent => "reply-sent",
            EventKind::ReplyReceived => "reply-recv",
            EventKind::DepositSent => "deposit-sent",
            EventKind::DepositReceived => "deposit-recv",
            EventKind::SpecHit => "spec-hit",
            EventKind::SpecMiss => "spec-miss",
            EventKind::Invoke => "invoke",
            EventKind::Dispatch => "dispatch",
            EventKind::Error => "error",
            EventKind::Retry => "retry",
            EventKind::Reconnect => "reconnect",
            EventKind::BreakerOpen => "breaker-open",
            EventKind::Degrade => "degrade",
            EventKind::Upgrade => "upgrade",
            EventKind::Stage => "stage",
            EventKind::Shed => "shed",
            EventKind::Brownout => "brownout",
            EventKind::Failover => "failover",
            EventKind::Attempt => "attempt",
        }
    }

    /// Inverse of `self as u8`.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| *k as u8 == v)
    }
}

/// Why an attempt of a logical request journey exists. The first attempt
/// is `Initial` (or `DegradeProbe` when the degraded send path scheduled a
/// zero-copy probe for it); every later attempt carries the recovery path
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum JourneyCause {
    /// The first attempt of the journey.
    Initial = 0,
    /// A fresh connection was dialed to the same profile and the request
    /// was re-sent.
    Retry = 1,
    /// The reference rotated to another profile of its object group.
    Failover = 2,
    /// The active replica shed the request (`TRANSIENT`) and the reference
    /// rotated to the next live replica.
    ShedRotate = 3,
    /// The attempt was a degraded connection's periodic zero-copy probe.
    DegradeProbe = 4,
}

impl JourneyCause {
    /// All causes.
    pub const ALL: [JourneyCause; 5] = [
        JourneyCause::Initial,
        JourneyCause::Retry,
        JourneyCause::Failover,
        JourneyCause::ShedRotate,
        JourneyCause::DegradeProbe,
    ];

    /// Short name used in reports and the flame analyzer.
    pub fn name(self) -> &'static str {
        match self {
            JourneyCause::Initial => "initial",
            JourneyCause::Retry => "retry",
            JourneyCause::Failover => "failover",
            JourneyCause::ShedRotate => "shed-rotate",
            JourneyCause::DegradeProbe => "degrade-probe",
        }
    }

    /// Inverse of `self as u8`.
    pub fn from_u8(v: u8) -> Option<JourneyCause> {
        JourneyCause::ALL.into_iter().find(|c| *c as u8 == v)
    }
}

/// Low 48 bits of an [`EventKind::Attempt`] payload: the journey id.
pub const JOURNEY_ID_MASK: u64 = (1 << 48) - 1;

/// Pack an attempt's cause, ordinal and journey id into one event payload:
/// cause in the top byte, attempt ordinal (saturated to 255) below it, the
/// journey id in the low 48 bits.
pub fn pack_attempt(cause: JourneyCause, attempt: u32, journey_id: u64) -> u64 {
    ((cause as u64) << 56) | ((attempt.min(255) as u64) << 48) | (journey_id & JOURNEY_ID_MASK)
}

/// Inverse of [`pack_attempt`]. `None` for an unknown cause byte.
pub fn unpack_attempt(payload: u64) -> Option<(JourneyCause, u32, u64)> {
    let cause = JourneyCause::from_u8((payload >> 56) as u8)?;
    let attempt = ((payload >> 48) & 0xFF) as u32;
    Some((cause, attempt, payload & JOURNEY_ID_MASK))
}

/// One recorded event. Small and `Copy`: recording moves six words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch ([`crate::now_ns`]).
    pub ts_ns: u64,
    /// The connection the event belongs to ([`crate::next_conn_id`]).
    pub conn_id: u64,
    /// The invocation the event belongs to; `0` when unknown (e.g. a
    /// request from a peer that does not stamp `ZC_TRACE` contexts).
    pub trace_id: u64,
    /// Stack layer.
    pub layer: TraceLayer,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific scalar (bytes, nanoseconds, error code).
    pub payload: u64,
}

impl TraceEvent {
    /// Pack layer + kind into one word for the recorder's atomic slot.
    pub(crate) fn meta(&self) -> u64 {
        ((self.layer as u64) << 8) | self.kind as u64
    }

    /// Inverse of [`TraceEvent::meta`].
    pub(crate) fn unpack_meta(meta: u64) -> Option<(TraceLayer, EventKind)> {
        let layer = TraceLayer::from_u8(((meta >> 8) & 0xFF) as u8)?;
        let kind = EventKind::from_u8((meta & 0xFF) as u8)?;
        Some((layer, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        for layer in TraceLayer::ALL {
            for kind in EventKind::ALL {
                let ev = TraceEvent {
                    ts_ns: 0,
                    conn_id: 0,
                    trace_id: 0,
                    layer,
                    kind,
                    payload: 0,
                };
                assert_eq!(TraceEvent::unpack_meta(ev.meta()), Some((layer, kind)));
            }
        }
    }

    #[test]
    fn bad_meta_rejected() {
        assert_eq!(TraceEvent::unpack_meta(0xFF00), None);
        assert_eq!(TraceEvent::unpack_meta(0x00FF), None);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn attempt_payload_roundtrip() {
        for cause in JourneyCause::ALL {
            let p = pack_attempt(cause, 3, 0x0000_1234_5678_9ABC);
            assert_eq!(
                unpack_attempt(p),
                Some((cause, 3, 0x0000_1234_5678_9ABC)),
                "{cause:?}"
            );
        }
        // Attempt ordinals saturate at one byte; journey ids mask to 48 bits.
        let p = pack_attempt(JourneyCause::Retry, 1_000, u64::MAX);
        assert_eq!(
            unpack_attempt(p),
            Some((JourneyCause::Retry, 255, JOURNEY_ID_MASK))
        );
        // An unknown cause byte is rejected, not misread.
        assert_eq!(unpack_attempt(0xFF << 56), None);
    }

    #[test]
    fn cause_names_are_distinct() {
        let mut names: Vec<&str> = JourneyCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), JourneyCause::ALL.len());
        for cause in JourneyCause::ALL {
            assert_eq!(JourneyCause::from_u8(cause as u8), Some(cause));
        }
    }
}
