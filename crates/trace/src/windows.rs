//! Windowed load signals: tumbling-window rates and high-watermark gauges.
//!
//! The counters and histograms in [`crate::MetricsRegistry`] answer "how
//! much since boot"; admission control and operators need "how much *right
//! now*". This module adds two lock-free instruments:
//!
//! * [`RateWindow`] — a tumbling window: events are counted into the
//!   current window; when the window elapses, the next recorder rolls it
//!   and the completed count becomes the reported rate. Rolling is a
//!   single CAS race; every loser retries into the fresh window, so no
//!   event is lost (a handful may land one window late under the race —
//!   acceptable for a load signal, never for the lifetime total, which is
//!   kept exactly in a separate counter).
//! * [`Gauge`] — a current value plus a high watermark maintained with
//!   `fetch_max`, so the peak is never below any instantaneous value that
//!   was ever recorded.
//!
//! Ordering discipline (the `trace-windows` cas-roll protocol in
//! `zc-audit.toml`): the once-per-window roll CAS publishes with `AcqRel`;
//! every per-event fast-path site stays `Relaxed`. Nothing blocks and
//! nothing allocates. Updates MUST be gated on
//! [`crate::Telemetry::is_enabled`]
//! (the `note_*` helpers on `Telemetry` do this), preserving the
//! disabled-mode zero-overhead guarantee: one plain boolean load, no
//! atomic read-modify-write, no clock read.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default tumbling-window length: one second.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000_000;

/// A tumbling-window event-rate estimator.
///
/// `tick(now, n)` adds `n` events at time `now`; `rate_per_s(now)` reports
/// the last *completed* window's count divided by the window length. When
/// the stream goes idle for more than two windows the rate decays to zero
/// rather than reporting a stale burst forever.
#[derive(Debug)]
pub struct RateWindow {
    window_ns: u64,
    /// Start of the window currently being filled.
    start_ns: AtomicU64,
    /// Count accumulated in the current window.
    cur: AtomicU64,
    /// Count of the last completed window.
    prev: AtomicU64,
    /// Exact lifetime total (monotone; unaffected by roll races).
    total: AtomicU64,
}

impl RateWindow {
    /// A window of `window_ns` nanoseconds (0 is clamped to the default).
    pub const fn new(window_ns: u64) -> RateWindow {
        RateWindow {
            window_ns: if window_ns == 0 {
                DEFAULT_WINDOW_NS
            } else {
                window_ns
            },
            start_ns: AtomicU64::new(0),
            cur: AtomicU64::new(0),
            prev: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Count `n` events observed at `now_ns`.
    #[inline]
    pub fn tick(&self, now_ns: u64, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
        loop {
            let start = self.start_ns.load(Ordering::Relaxed);
            let end = start.saturating_add(self.window_ns);
            if now_ns < end {
                self.cur.fetch_add(n, Ordering::Relaxed);
                return;
            }
            // The current window has elapsed: one thread wins the roll,
            // publishes the finished count and starts the next window.
            // Losers loop and land in the fresh window. A tick racing
            // between the CAS and the swap below may be attributed to the
            // finished window — a bounded, documented approximation.
            // AcqRel: the winner's swap/store below must not be reordered
            // before the claim, and a loser observing the new start_ns also
            // observes the rolled counters (loom:
            // rate_window_roll_cas_under_concurrent_tickers).
            if self
                .start_ns
                .compare_exchange(start, now_ns, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let finished = self.cur.swap(0, Ordering::Relaxed);
                // If more than one full window passed, the finished count
                // describes a stale window: report the gap as silence.
                let fresh = now_ns < end.saturating_add(self.window_ns);
                self.prev
                    .store(if fresh { finished } else { 0 }, Ordering::Relaxed);
                self.cur.fetch_add(n, Ordering::Relaxed);
                return;
            }
        }
    }

    /// The last completed window's rate, in events per second, as seen at
    /// `now_ns`. Decays to zero when no window has completed recently.
    pub fn rate_per_s(&self, now_ns: u64) -> f64 {
        let secs = self.window_ns as f64 / 1e9;
        let start = self.start_ns.load(Ordering::Relaxed);
        let end = start.saturating_add(self.window_ns);
        if now_ns < end {
            // Current window still open: the last completed one is fresh.
            self.prev.load(Ordering::Relaxed) as f64 / secs
        } else if now_ns < end.saturating_add(self.window_ns) {
            // Current window just closed but nobody has rolled it yet: it
            // is itself the most recent completed window.
            self.cur.load(Ordering::Relaxed) as f64 / secs
        } else {
            // Idle for over a full window: the signal has decayed.
            0.0
        }
    }

    /// Exact lifetime event total.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The configured window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

/// A current-value gauge with a high watermark.
///
/// `add`/`sub` move the current value (saturating at zero, so a missed
/// increment can never underflow into a huge count); `record` folds an
/// externally-sampled instantaneous value into the watermark only. The
/// watermark is maintained with `fetch_max`: it is always ≥ every value
/// the gauge has ever held or been shown.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge {
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Raise the current value by `n` and fold it into the watermark.
    #[inline]
    pub fn add(&self, n: u64) {
        let now = self.current.fetch_add(n, Ordering::Relaxed).wrapping_add(n);
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Lower the current value by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update never blocks: it is a CAS loop over relaxed loads.
        // Relaxed (not the cas-roll AcqRel) is deliberate: the gauge value
        // is a pure statistic with no publication riding on it, and the
        // saturating subtraction is linearizable at any ordering.
        let _ = self
            .current
            // zc-audit: allow(atomics-protocol) — statistic-only CAS, nothing published: loom case gauge_sub_saturates_under_contention covers the Relaxed success ordering
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Fold an externally-sampled instantaneous value into the watermark
    /// without touching the current value.
    #[inline]
    pub fn record(&self, sample: u64) {
        self.peak.fetch_max(sample, Ordering::Relaxed);
    }

    /// The current value.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The high watermark.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Snapshot both fields.
    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            current: self.current(),
            peak: self.peak(),
        }
    }
}

/// Point-in-time view of one [`Gauge`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The value at snapshot time.
    pub current: u64,
    /// The high watermark (≥ `current`, and ≥ every value ever recorded).
    pub peak: u64,
}

/// The ORB-wide bundle of windowed load signals.
///
/// Lives inside [`crate::Telemetry`]; all updates flow through the gated
/// `note_*` helpers there so the disabled instance pays nothing.
#[derive(Debug)]
pub struct LoadWindows {
    /// Server-side request arrival rate (requests received per second).
    pub req_rx: RateWindow,
    /// Wire bytes put on the wire per second (all connections).
    pub wire_tx: RateWindow,
    /// Wire bytes taken off the wire per second (all connections).
    pub wire_rx: RateWindow,
    /// Client retry attempts per second.
    pub retries: RateWindow,
    /// Requests shed by admission control per second.
    pub shed: RateWindow,
    /// Bulk requests shed by brownout-mode admission per second.
    pub brownout: RateWindow,
    /// Client-side profile failovers per second.
    pub failover: RateWindow,
    /// Requests currently being dispatched (per-ORB in-flight) + peak.
    pub inflight: Gauge,
    /// Open GIOP connections + peak.
    pub conns: Gauge,
    /// Connections currently degraded to inline marshalling + peak.
    pub degraded_conns: Gauge,
    /// Endpoint circuit breakers currently open + peak.
    pub breakers_open: Gauge,
    /// Watermark of in-progress fragment-reassembly bytes (sampled as each
    /// continuation fragment lands; current is not tracked).
    pub reassembly_bytes: Gauge,
    /// Watermark of pool retained (free-list) bytes, sampled at deposit
    /// acquire and snapshot time.
    pub pool_retained: Gauge,
}

impl Default for LoadWindows {
    fn default() -> LoadWindows {
        LoadWindows::new(DEFAULT_WINDOW_NS)
    }
}

impl LoadWindows {
    /// Fresh signals over `window_ns`-long tumbling windows.
    pub const fn new(window_ns: u64) -> LoadWindows {
        LoadWindows {
            req_rx: RateWindow::new(window_ns),
            wire_tx: RateWindow::new(window_ns),
            wire_rx: RateWindow::new(window_ns),
            retries: RateWindow::new(window_ns),
            shed: RateWindow::new(window_ns),
            brownout: RateWindow::new(window_ns),
            failover: RateWindow::new(window_ns),
            inflight: Gauge::new(),
            conns: Gauge::new(),
            degraded_conns: Gauge::new(),
            breakers_open: Gauge::new(),
            reassembly_bytes: Gauge::new(),
            pool_retained: Gauge::new(),
        }
    }

    /// Snapshot every signal at `now_ns`.
    pub fn snapshot(&self, now_ns: u64) -> LoadSnapshot {
        LoadSnapshot {
            window_ns: self.req_rx.window_ns(),
            req_per_s: self.req_rx.rate_per_s(now_ns),
            wire_tx_bytes_per_s: self.wire_tx.rate_per_s(now_ns),
            wire_rx_bytes_per_s: self.wire_rx.rate_per_s(now_ns),
            retries_per_s: self.retries.rate_per_s(now_ns),
            shed_per_s: self.shed.rate_per_s(now_ns),
            brownout_per_s: self.brownout.rate_per_s(now_ns),
            failover_per_s: self.failover.rate_per_s(now_ns),
            req_rx_total: self.req_rx.total(),
            inflight: self.inflight.snapshot(),
            conns: self.conns.snapshot(),
            degraded_conns: self.degraded_conns.snapshot(),
            breakers_open: self.breakers_open.snapshot(),
            reassembly_bytes: self.reassembly_bytes.snapshot(),
            pool_retained: self.pool_retained.snapshot(),
        }
    }
}

/// Point-in-time view of all windowed load signals.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadSnapshot {
    /// Tumbling-window length the rates are computed over.
    pub window_ns: u64,
    /// Request arrival rate (received requests per second).
    pub req_per_s: f64,
    /// Wire bytes sent per second.
    pub wire_tx_bytes_per_s: f64,
    /// Wire bytes received per second.
    pub wire_rx_bytes_per_s: f64,
    /// Retry attempts per second.
    pub retries_per_s: f64,
    /// Requests shed by admission control per second.
    pub shed_per_s: f64,
    /// Bulk requests shed by brownout mode per second.
    pub brownout_per_s: f64,
    /// Client-side profile failovers per second.
    pub failover_per_s: f64,
    /// Exact lifetime count of received requests seen by the window (for
    /// monotonicity checks against the registry counter).
    pub req_rx_total: u64,
    /// In-flight dispatches.
    pub inflight: GaugeSnapshot,
    /// Open connections.
    pub conns: GaugeSnapshot,
    /// Degraded connections.
    pub degraded_conns: GaugeSnapshot,
    /// Open circuit breakers.
    pub breakers_open: GaugeSnapshot,
    /// Fragment-reassembly bytes (watermark only).
    pub reassembly_bytes: GaugeSnapshot,
    /// Pool retained bytes (watermark + last sample).
    pub pool_retained: GaugeSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000_000_000;

    #[test]
    fn rate_reports_last_completed_window() {
        let r = RateWindow::new(W);
        // Window [0, W): 10 events.
        for _ in 0..10 {
            r.tick(100, 1);
        }
        assert_eq!(r.total(), 10);
        // Still inside the first window: no completed window yet.
        assert_eq!(r.rate_per_s(500) as u64, 0);
        // First tick after W rolls the window.
        r.tick(W + 1, 1);
        assert_eq!(r.rate_per_s(W + 2) as u64, 10);
        assert_eq!(r.total(), 11);
    }

    #[test]
    fn rate_decays_to_zero_when_idle() {
        let r = RateWindow::new(W);
        r.tick(0, 100);
        r.tick(W + 1, 1); // roll: prev = 100
        assert!(r.rate_per_s(W + 2) > 0.0);
        // Two windows of silence later the signal is gone.
        assert_eq!(r.rate_per_s(4 * W), 0.0);
        // A tick after a long gap must not resurrect the stale count.
        r.tick(10 * W, 1);
        assert_eq!(r.rate_per_s(10 * W + 1) as u64, 0);
        assert_eq!(r.total(), 102);
    }

    #[test]
    fn unrolled_but_complete_window_is_visible() {
        let r = RateWindow::new(W);
        r.tick(0, 7);
        // The window [0, W) has elapsed but nobody ticked to roll it: the
        // reader still sees it as the most recent completed window.
        assert_eq!(r.rate_per_s(W + 10) as u64, 7);
    }

    #[test]
    fn rates_scale_with_window_length() {
        let r = RateWindow::new(W / 2); // 500ms window
        r.tick(0, 50);
        r.tick(W / 2 + 1, 1);
        // 50 events in half a second = 100/s.
        let rate = r.rate_per_s(W / 2 + 2);
        assert!((rate - 100.0).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn gauge_tracks_current_and_peak() {
        let g = Gauge::new();
        g.add(3);
        g.add(4);
        g.sub(5);
        assert_eq!(g.current(), 2);
        assert_eq!(g.peak(), 7);
        // Saturating: never underflows.
        g.sub(100);
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 7);
        // record() moves only the watermark.
        g.record(50);
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 50);
        let s = g.snapshot();
        assert!(s.peak >= s.current);
    }

    #[test]
    fn gauge_peak_never_below_instantaneous() {
        let g = Gauge::new();
        for i in 0..100u64 {
            g.add(i % 7);
            assert!(g.peak() >= g.current());
            g.sub(i % 5);
            assert!(g.peak() >= g.current());
        }
    }

    #[test]
    fn load_windows_snapshot_coherent() {
        let w = LoadWindows::new(W);
        w.req_rx.tick(10, 4);
        w.wire_rx.tick(10, 4096);
        w.inflight.add(2);
        w.reassembly_bytes.record(1 << 20);
        w.req_rx.tick(W + 1, 1);
        w.wire_rx.tick(W + 1, 1);
        let s = w.snapshot(W + 2);
        assert_eq!(s.req_per_s as u64, 4);
        assert_eq!(s.wire_rx_bytes_per_s as u64, 4096);
        assert_eq!(s.req_rx_total, 5);
        assert_eq!(s.inflight.current, 2);
        assert_eq!(s.reassembly_bytes.peak, 1 << 20);
        assert!(s.inflight.peak >= s.inflight.current);
    }

    #[test]
    fn concurrent_ticks_lose_nothing_from_total() {
        use std::sync::Arc;
        let r = Arc::new(RateWindow::new(W));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    // Spread ticks across several windows to force rolls.
                    r.tick(i * (t + 1) * 1_000, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.total(), 40_000);
    }
}
