//! The flight recorder: a lock-free, fixed-capacity ring of trace events.
//!
//! Design constraints, in order:
//!
//! 1. **Recording never blocks and never allocates.** The recorder sits on
//!    the request path of an ORB whose entire point is to not touch payload
//!    bytes; instrumentation that takes a lock or calls the allocator would
//!    perturb exactly the numbers it is meant to explain. A producer that
//!    loses a race *drops its event* (counted) instead of waiting.
//! 2. **No event is ever torn.** Readers run concurrently with writers and
//!    must never observe half of one event spliced with half of another.
//! 3. **No `unsafe`.** Each slot is a group of plain atomics guarded by a
//!    seqlock-style sequence word; exclusivity comes from a CAS claim, not
//!    from raw pointers.
//!
//! Protocol: the ring cursor hands every producer a unique ticket
//! (`fetch_add`). The producer targets slot `ticket % capacity` and tries to
//! CAS the slot's sequence word from its current *published* (even) value to
//! this ticket's *writing* (odd) value. Success grants exclusive write
//! access — every other claimant's CAS must fail because the word changed —
//! after which the fields are stored and the sequence word is published
//! (even) with a `Release` store. A claim is refused (event dropped) when
//! the slot is mid-write or already holds a newer ticket, so a lapped
//! producer can neither block nor roll the ring backwards. Readers take the
//! classic seqlock path: read the sequence word, read the fields, re-check
//! the word; any concurrent writer changes it and the read is discarded.
//!
//! The ordering discipline — `Release` publish of the sequence word,
//! `Acquire` (or fenced re-check) loads, `Relaxed` data fields — is the
//! `trace-seqlock` protocol declared in `zc-audit.toml` and enforced by the
//! atomics-protocol pass; the loom cases `no_event_is_torn_under_contention`
//! and `wraparound_never_blocks` (`tests/loom.rs`) are the models behind it.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::event::TraceEvent;

/// One ring slot: a sequence word plus the five event fields, all atomic so
/// the racing reader/writer access is well-defined without `unsafe`.
///
/// Sequence states: `0` = never written; odd = write in progress; even
/// non-zero = published, encoding the ticket as `(ticket + 1) << 1`.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    conn: AtomicU64,
    trace: AtomicU64,
    meta: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            conn: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

#[inline]
fn published_seq(ticket: u64) -> u64 {
    (ticket + 1) << 1
}

/// Fixed-capacity, lock-free ring of [`TraceEvent`]s.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` events (rounded up to a power of
    /// two). `capacity == 0` builds a slotless recorder whose `record` is a
    /// no-op — the disabled configuration.
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = if capacity == 0 {
            0
        } else {
            capacity.next_power_of_two()
        };
        let slots: Box<[Slot]> = (0..cap).map(|_| Slot::new()).collect();
        FlightRecorder {
            slots,
            mask: (cap as u64).wrapping_sub(1),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots (a power of two, or 0 when disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event. Lock-free and allocation-free; drops the event
    /// (counted in [`FlightRecorder::dropped`]) rather than ever waiting.
    pub fn record(&self, ev: TraceEvent) {
        if self.slots.is_empty() {
            return;
        }
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let published = published_seq(ticket);
        let prev = slot.seq.load(Ordering::Relaxed);
        // Refuse the claim if another producer is mid-write (odd) or the
        // slot already holds a newer generation (we were lapped while
        // descheduled). Either way: drop, never block.
        if prev & 1 == 1 || prev >= published {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot
            .seq
            .compare_exchange(prev, published | 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // The CAS succeeded from a published (even) state: this producer
        // owns the slot exclusively until the Release store below.
        slot.ts.store(ev.ts_ns, Ordering::Relaxed);
        slot.conn.store(ev.conn_id, Ordering::Relaxed);
        slot.trace.store(ev.trace_id, Ordering::Relaxed);
        slot.meta.store(ev.meta(), Ordering::Relaxed);
        slot.payload.store(ev.payload, Ordering::Relaxed);
        slot.seq.store(published, Ordering::Release);
    }

    /// Total record attempts so far (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events dropped because a claim was refused (slot mid-write or
    /// lapped). Always `0` in single-producer use.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Seqlock read of one slot: `(ticket, event)` if the slot holds a
    /// stable published event, `None` otherwise.
    fn read_slot(&self, idx: usize) -> Option<(u64, TraceEvent)> {
        let slot = &self.slots[idx];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let ts_ns = slot.ts.load(Ordering::Relaxed);
        let conn_id = slot.conn.load(Ordering::Relaxed);
        let trace_id = slot.trace.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let payload = slot.payload.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != s1 {
            return None; // a writer raced us; discard the read
        }
        let (layer, kind) = TraceEvent::unpack_meta(meta)?;
        Some((
            (s1 >> 1) - 1,
            TraceEvent {
                ts_ns,
                conn_id,
                trace_id,
                layer,
                kind,
                payload,
            },
        ))
    }

    /// The events currently readable, oldest first (by ring ticket).
    /// Concurrent-writer slots are skipped, so a snapshot taken during
    /// recording is a consistent sample, not a barrier.
    pub fn snapshot(&self) -> Vec<(u64, TraceEvent)> {
        let mut out: Vec<(u64, TraceEvent)> = (0..self.slots.len())
            .filter_map(|i| self.read_slot(i))
            .collect();
        out.sort_unstable_by_key(|(ticket, _)| *ticket);
        out
    }

    /// The events currently readable, oldest first, without tickets.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.snapshot().into_iter().map(|(_, e)| e).collect()
    }

    /// The last `n` readable events recorded for `conn_id`, oldest first —
    /// the post-mortem view after a connection error.
    pub fn recent_for_conn(&self, conn_id: u64, n: usize) -> Vec<TraceEvent> {
        let mut all = self.snapshot();
        all.retain(|(_, e)| e.conn_id == conn_id);
        let skip = all.len().saturating_sub(n);
        all.into_iter().skip(skip).map(|(_, e)| e).collect()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceLayer};

    fn ev(trace_id: u64, payload: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 1,
            conn_id: 7,
            trace_id,
            layer: TraceLayer::Giop,
            kind: EventKind::RequestSent,
            payload,
        }
    }

    #[test]
    fn record_and_snapshot_in_order() {
        let r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(ev(i, i * 10));
        }
        let got = r.events();
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.trace_id, i as u64);
            assert_eq!(e.payload, i as u64 * 10);
        }
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(ev(i, 0));
        }
        let got = r.events();
        assert_eq!(got.len(), 4);
        let ids: Vec<u64> = got.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let r = FlightRecorder::new(0);
        r.record(ev(1, 2));
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.recorded(), 0);
        assert!(r.events().is_empty());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FlightRecorder::new(3).capacity(), 4);
        assert_eq!(FlightRecorder::new(4).capacity(), 4);
        assert_eq!(FlightRecorder::new(1000).capacity(), 1024);
    }

    #[test]
    fn recent_for_conn_filters_and_limits() {
        let r = FlightRecorder::new(16);
        for i in 0..6 {
            let mut e = ev(i, 0);
            e.conn_id = i % 2;
            r.record(e);
        }
        let recent = r.recent_for_conn(0, 2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].trace_id, 2);
        assert_eq!(recent[1].trace_id, 4);
    }
}
