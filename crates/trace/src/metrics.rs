//! The metrics registry: atomic counters, log2-bucketed histograms, and the
//! transport-counter mirror that merges every connection's `ConnStats` into
//! one ORB-wide total.
//!
//! Everything here is a fixed-size group of relaxed atomics — recording a
//! sample is a handful of `fetch_add`s, never an allocation and never a
//! lock, so the registry is safe to update from the data path.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::span::Stage;

/// A monotonic atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two a `u64` sample can
/// reach, plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Upper bound of bucket `i` (inclusive): `0`, then `2^i - 1`.
#[inline]
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log2-bucketed histogram of `u64` samples. Bucket `i > 0` holds samples
/// in `[2^(i-1), 2^i)`; bucket 0 holds zeros.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Capture the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count: {})", self.count())
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the inclusive upper bound of the bucket holding
    /// the `q`-quantile sample. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterate `(bucket_upper_bound, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (bucket_bound(i), c))
    }
}

/// One histogram per request-span [`Stage`]. Same recording discipline as
/// a single [`Histogram`]: relaxed atomics, no allocation, no lock.
pub struct StageHistograms {
    cells: [Histogram; Stage::COUNT],
}

impl StageHistograms {
    /// Empty histograms for every stage.
    pub const fn new() -> StageHistograms {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const EMPTY: Histogram = Histogram::new();
        StageHistograms {
            cells: [EMPTY; Stage::COUNT],
        }
    }

    /// The histogram for `stage`.
    #[inline]
    pub fn get(&self, stage: Stage) -> &Histogram {
        &self.cells[stage as usize]
    }

    /// Record one duration sample for `stage`.
    #[inline]
    pub fn record(&self, stage: Stage, dur_ns: u64) {
        self.cells[stage as usize].record(dur_ns);
    }

    /// Capture the current state of every stage histogram.
    pub fn snapshot(&self) -> StageSnapshots {
        let mut s = StageSnapshots::default();
        for stage in Stage::ALL {
            s.cells[stage as usize] = self.cells[stage as usize].snapshot();
        }
        s
    }
}

impl Default for StageHistograms {
    fn default() -> Self {
        StageHistograms::new()
    }
}

impl std::fmt::Debug for StageHistograms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StageHistograms({} stages)", Stage::COUNT)
    }
}

/// Point-in-time copy of [`StageHistograms`].
#[derive(Debug, Clone, Copy)]
pub struct StageSnapshots {
    cells: [HistogramSnapshot; Stage::COUNT],
}

impl Default for StageSnapshots {
    fn default() -> Self {
        StageSnapshots {
            cells: [HistogramSnapshot::default(); Stage::COUNT],
        }
    }
}

impl StageSnapshots {
    /// The snapshot for `stage`.
    pub fn get(&self, stage: Stage) -> &HistogramSnapshot {
        &self.cells[stage as usize]
    }

    /// Iterate `(stage, snapshot)` in causal data-path order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &HistogramSnapshot)> + '_ {
        Stage::ALL.into_iter().map(|s| (s, self.get(s)))
    }

    /// Total samples recorded across all stages.
    pub fn total_count(&self) -> u64 {
        self.cells.iter().map(|c| c.count).sum()
    }
}

/// The per-connection transport counters, as field indices. One enum shared
/// by `ConnStats` cells and the ORB-wide mirror keeps both accountings in
/// lockstep by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum TransportField {
    /// Control messages sent.
    ControlSent = 0,
    /// Control messages received.
    ControlRecv = 1,
    /// Data blocks sent.
    DataBlocksSent = 2,
    /// Data blocks received.
    DataBlocksRecv = 3,
    /// Payload bytes sent (control + data).
    BytesSent = 4,
    /// Payload bytes received (control + data).
    BytesRecv = 5,
    /// Frames put on the wire.
    FramesSent = 6,
    /// Wire bytes (headers + payload) sent.
    WireBytesSent = 7,
    /// Wire bytes (headers + payload) received.
    WireBytesRecv = 8,
    /// Zero-copy receive speculations that held.
    SpecHits = 9,
    /// Speculations that missed (fallback copy).
    SpecMisses = 10,
}

impl TransportField {
    /// Number of fields.
    pub const COUNT: usize = 11;

    /// All fields, in index order.
    pub const ALL: [TransportField; TransportField::COUNT] = [
        TransportField::ControlSent,
        TransportField::ControlRecv,
        TransportField::DataBlocksSent,
        TransportField::DataBlocksRecv,
        TransportField::BytesSent,
        TransportField::BytesRecv,
        TransportField::FramesSent,
        TransportField::WireBytesSent,
        TransportField::WireBytesRecv,
        TransportField::SpecHits,
        TransportField::SpecMisses,
    ];

    /// Snake-case name used in reports and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            TransportField::ControlSent => "control_sent",
            TransportField::ControlRecv => "control_recv",
            TransportField::DataBlocksSent => "data_blocks_sent",
            TransportField::DataBlocksRecv => "data_blocks_recv",
            TransportField::BytesSent => "bytes_sent",
            TransportField::BytesRecv => "bytes_recv",
            TransportField::FramesSent => "frames_sent",
            TransportField::WireBytesSent => "wire_bytes_sent",
            TransportField::WireBytesRecv => "wire_bytes_recv",
            TransportField::SpecHits => "spec_hits",
            TransportField::SpecMisses => "spec_misses",
        }
    }
}

/// ORB-wide transport totals: every connection's stats cell mirrors its
/// increments here, so one snapshot covers connections that have already
/// closed.
#[derive(Debug, Default)]
pub struct TransportCounters {
    cells: [AtomicU64; TransportField::COUNT],
}

impl TransportCounters {
    /// Add `n` to `field`.
    #[inline]
    pub fn add(&self, field: TransportField, n: u64) {
        self.cells[field as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of `field`.
    #[inline]
    pub fn get(&self, field: TransportField) -> u64 {
        self.cells[field as usize].load(Ordering::Relaxed)
    }

    /// Capture the current totals.
    pub fn snapshot(&self) -> TransportTotals {
        let mut t = TransportTotals::default();
        for f in TransportField::ALL {
            t.set(f, self.get(f));
        }
        t
    }
}

/// Point-in-time transport totals (the merged view of all `ConnStats`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportTotals {
    /// Control messages sent.
    pub control_sent: u64,
    /// Control messages received.
    pub control_recv: u64,
    /// Data blocks sent.
    pub data_blocks_sent: u64,
    /// Data blocks received.
    pub data_blocks_recv: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Frames put on the wire.
    pub frames_sent: u64,
    /// Wire bytes sent.
    pub wire_bytes_sent: u64,
    /// Wire bytes received.
    pub wire_bytes_recv: u64,
    /// Speculations that held.
    pub spec_hits: u64,
    /// Speculations that missed.
    pub spec_misses: u64,
}

impl TransportTotals {
    /// Value of `field`.
    pub fn get(&self, field: TransportField) -> u64 {
        match field {
            TransportField::ControlSent => self.control_sent,
            TransportField::ControlRecv => self.control_recv,
            TransportField::DataBlocksSent => self.data_blocks_sent,
            TransportField::DataBlocksRecv => self.data_blocks_recv,
            TransportField::BytesSent => self.bytes_sent,
            TransportField::BytesRecv => self.bytes_recv,
            TransportField::FramesSent => self.frames_sent,
            TransportField::WireBytesSent => self.wire_bytes_sent,
            TransportField::WireBytesRecv => self.wire_bytes_recv,
            TransportField::SpecHits => self.spec_hits,
            TransportField::SpecMisses => self.spec_misses,
        }
    }

    fn set(&mut self, field: TransportField, v: u64) {
        match field {
            TransportField::ControlSent => self.control_sent = v,
            TransportField::ControlRecv => self.control_recv = v,
            TransportField::DataBlocksSent => self.data_blocks_sent = v,
            TransportField::DataBlocksRecv => self.data_blocks_recv = v,
            TransportField::BytesSent => self.bytes_sent = v,
            TransportField::BytesRecv => self.bytes_recv = v,
            TransportField::FramesSent => self.frames_sent = v,
            TransportField::WireBytesSent => self.wire_bytes_sent = v,
            TransportField::WireBytesRecv => self.wire_bytes_recv = v,
            TransportField::SpecHits => self.spec_hits = v,
            TransportField::SpecMisses => self.spec_misses = v,
        }
    }

    /// Fraction of receive speculations that held, in `[0, 1]`; `1.0` when
    /// no speculation ran (nothing missed).
    pub fn spec_hit_rate(&self) -> f64 {
        let total = self.spec_hits + self.spec_misses;
        if total == 0 {
            1.0
        } else {
            self.spec_hits as f64 / total as f64
        }
    }
}

/// The fixed set of ORB metrics. Fields are public: call sites update the
/// counter or histogram they own directly.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Requests sent by this endpoint's client side.
    pub requests_sent: Counter,
    /// Requests received by this endpoint's server side.
    pub requests_received: Counter,
    /// Successful replies received by the client side.
    pub replies_ok: Counter,
    /// Exception replies received by the client side.
    pub replies_exception: Counter,
    /// Received requests that carried a `ZC_TRACE` service context.
    pub trace_contexts_seen: Counter,
    /// Invocation attempts re-sent after a transport failure.
    pub retries: Counter,
    /// Dead connections transparently replaced by fresh ones.
    pub reconnects: Counter,
    /// Per-endpoint circuit breakers opened.
    pub breaker_opens: Counter,
    /// Connections that degraded from zero-copy to the copying path.
    pub degradations: Counter,
    /// Degraded connections that re-upgraded to zero-copy.
    pub upgrades: Counter,
    /// Requests shed by server-side admission control before dispatch.
    pub sheds: Counter,
    /// Bulk requests shed specifically by brownout-mode admission (a
    /// subset of `sheds`).
    pub brownout_sheds: Counter,
    /// Client-side profile rotations to a replica endpoint.
    pub failovers: Counter,
    /// Client-observed request→reply latency, in nanoseconds.
    pub request_latency_ns: Histogram,
    /// Server-side servant dispatch duration, in nanoseconds.
    pub dispatch_ns: Histogram,
    /// Size of each deposit block sent, in bytes.
    pub deposit_block_bytes: Histogram,
    /// Wire fragments per received data block.
    pub frames_per_block: Histogram,
    /// Per-stage request-span durations, in nanoseconds.
    pub stage_ns: StageHistograms,
    /// Data-block wire flight time (frame stamped at send → block
    /// reassembled at receive), in nanoseconds. Kept separate from
    /// `stage_ns[Wire]`, which times the request control path.
    pub data_wire_ns: Histogram,
}

impl MetricsRegistry {
    /// Capture the current state of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_sent: self.requests_sent.get(),
            requests_received: self.requests_received.get(),
            replies_ok: self.replies_ok.get(),
            replies_exception: self.replies_exception.get(),
            trace_contexts_seen: self.trace_contexts_seen.get(),
            retries: self.retries.get(),
            reconnects: self.reconnects.get(),
            breaker_opens: self.breaker_opens.get(),
            degradations: self.degradations.get(),
            upgrades: self.upgrades.get(),
            sheds: self.sheds.get(),
            brownout_sheds: self.brownout_sheds.get(),
            failovers: self.failovers.get(),
            request_latency_ns: self.request_latency_ns.snapshot(),
            dispatch_ns: self.dispatch_ns.snapshot(),
            deposit_block_bytes: self.deposit_block_bytes.snapshot(),
            frames_per_block: self.frames_per_block.snapshot(),
            stage_ns: self.stage_ns.snapshot(),
            data_wire_ns: self.data_wire_ns.snapshot(),
        }
    }
}

/// Point-in-time copy of the [`MetricsRegistry`].
#[derive(Debug, Default, Clone, Copy)]
pub struct MetricsSnapshot {
    /// Requests sent (client side).
    pub requests_sent: u64,
    /// Requests received (server side).
    pub requests_received: u64,
    /// Successful replies received.
    pub replies_ok: u64,
    /// Exception replies received.
    pub replies_exception: u64,
    /// Received requests carrying a `ZC_TRACE` context.
    pub trace_contexts_seen: u64,
    /// Invocation attempts re-sent after a transport failure.
    pub retries: u64,
    /// Dead connections transparently replaced.
    pub reconnects: u64,
    /// Circuit breakers opened.
    pub breaker_opens: u64,
    /// ZC→copy degradations.
    pub degradations: u64,
    /// Copy→ZC re-upgrades.
    pub upgrades: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Bulk requests shed by brownout mode.
    pub brownout_sheds: u64,
    /// Client-side profile rotations.
    pub failovers: u64,
    /// Request→reply latency histogram.
    pub request_latency_ns: HistogramSnapshot,
    /// Dispatch duration histogram.
    pub dispatch_ns: HistogramSnapshot,
    /// Deposit block size histogram.
    pub deposit_block_bytes: HistogramSnapshot,
    /// Fragments-per-block histogram.
    pub frames_per_block: HistogramSnapshot,
    /// Per-stage request-span duration histograms.
    pub stage_ns: StageSnapshots,
    /// Data-block wire flight time histogram.
    pub data_wire_ns: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, 1 << 20] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1 << 20);
        assert_eq!(s.sum, 10 + 1000 + (1 << 20));
        // zero bucket, [1,1], [2,3], [4,7], [512,1023]? no: 1000 is in
        // [512,1023]... bucket bound 1023; 2^20 in [2^19, 2^20).
        let buckets: Vec<(u64, u64)> = s.nonzero_buckets().collect();
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 1));
        assert_eq!(buckets[2], (3, 2));
        assert_eq!(buckets[3], (7, 1));
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1 << 30);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 127, "p50 in the [64,127] bucket");
        assert_eq!(s.quantile(0.99), 127);
        assert_eq!(s.quantile(1.0), 1 << 30, "max clamps the last bucket");
        assert!(s.mean() > 100.0);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn transport_counters_snapshot() {
        let t = TransportCounters::default();
        t.add(TransportField::SpecHits, 3);
        t.add(TransportField::SpecMisses, 1);
        t.add(TransportField::WireBytesRecv, 4096);
        let s = t.snapshot();
        assert_eq!(s.spec_hits, 3);
        assert_eq!(s.spec_misses, 1);
        assert_eq!(s.wire_bytes_recv, 4096);
        assert_eq!(s.spec_hit_rate(), 0.75);
        for f in TransportField::ALL {
            assert_eq!(s.get(f), t.get(f));
        }
    }

    #[test]
    fn spec_rate_without_speculation_is_one() {
        assert_eq!(TransportTotals::default().spec_hit_rate(), 1.0);
    }

    #[test]
    fn stage_histograms_record_per_stage() {
        let sh = StageHistograms::new();
        sh.record(Stage::ClientMarshal, 100);
        sh.record(Stage::ClientMarshal, 300);
        sh.record(Stage::Wire, 5000);
        let s = sh.snapshot();
        assert_eq!(s.get(Stage::ClientMarshal).count, 2);
        assert_eq!(s.get(Stage::ClientMarshal).sum, 400);
        assert_eq!(s.get(Stage::Wire).count, 1);
        assert_eq!(s.get(Stage::ServerDispatch).count, 0);
        assert_eq!(s.total_count(), 3);
        assert_eq!(s.iter().count(), Stage::COUNT);
    }
}
