//! Durable binary trace spool: crash-tolerant segment files that outlive
//! the in-memory flight-recorder ring.
//!
//! The recorder is a fixed ring — perfect for post-mortems, useless for
//! offline analysis of a run that ended (or crashed) minutes ago. The
//! spool fixes that with a background writer ([`SpoolWriter`]) that drains
//! recorder snapshots into bounded, rotating segment files, and an
//! untrusting reader ([`read_spool_segment`]) that tolerates torn tails.
//!
//! **Zero cost when off.** The spool touches the data path nowhere: the
//! writer is a separate thread polling [`crate::FlightRecorder::snapshot`],
//! and when no spool is configured not a single instruction is added to
//! record/send/receive. The counting-allocator overhead tests pin this.
//!
//! ## Segment format
//!
//! ```text
//! [8]  magic  b"ZCSPOOL1"
//! [4]  version (u32 LE, = 1)
//! [4]  reserved (0)
//! then records until EOF:
//!   [4] payload length (u32 LE, multiple of SPOOL_EVENT_LEN, ≤ 1 MiB)
//!   [4] CRC-32 (IEEE) of the payload
//!   [n] payload: consecutive 34-byte events
//!        (ts_ns, conn_id, trace_id: u64 LE; meta: u16 LE = layer<<8|kind;
//!         payload: u64 LE)
//! ```
//!
//! A crash can only tear the *last* record of the *last* segment: records
//! are appended with a single `write_all` and earlier segments are never
//! rewritten. The reader stops at the first short/oversized/corrupt record
//! and reports the tail as truncated; [`repair_segment`] makes the
//! truncation durable by cutting the file back to its valid prefix.
//!
//! Segment files are **untrusted input** to the reader (an operator may
//! point `zc-flame` at any path): every length is clamped before it sizes
//! an allocation, every offset is checked, and malformed events are
//! skipped, never panicked on. The reader is registered as a wire-taint
//! entrypoint in `zc-audit.toml`.

use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{Telemetry, TraceEvent};

/// First 8 bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"ZCSPOOL1";

/// Current segment format version.
const SEGMENT_VERSION: u32 = 1;

/// Bytes before the first record.
const SEGMENT_HEADER_LEN: usize = 16;

/// Serialized size of one event (3×u64 + u16 + u64).
pub const SPOOL_EVENT_LEN: usize = 34;

/// Hard ceiling on one record's payload: a lying length field can make the
/// reader allocate at most this much before the CRC unmasks it.
const MAX_RECORD_BYTES: usize = 1 << 20;

/// Spool writer configuration. Defaults keep a bounded window: 8 segments
/// of ~1 MiB (≈ 240k events) with a 25 ms drain cadence.
#[derive(Debug, Clone)]
pub struct SpoolConfig {
    /// Directory the segment files live in (created if absent).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Oldest segments are deleted to keep at most this many on disk.
    pub max_segments: usize,
    /// How often the writer drains the recorder.
    pub flush_interval: Duration,
}

impl SpoolConfig {
    /// Defaults for `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> SpoolConfig {
        SpoolConfig {
            dir: dir.into(),
            segment_bytes: 1 << 20,
            max_segments: 8,
            flush_interval: Duration::from_millis(25),
        }
    }

    /// Override the rotation size.
    pub fn segment_bytes(mut self, bytes: u64) -> SpoolConfig {
        self.segment_bytes = bytes.max(SEGMENT_HEADER_LEN as u64 + 1);
        self
    }

    /// Override the retained-segment bound.
    pub fn max_segments(mut self, n: usize) -> SpoolConfig {
        self.max_segments = n.max(1);
        self
    }

    /// Override the drain cadence.
    pub fn flush_interval(mut self, d: Duration) -> SpoolConfig {
        self.flush_interval = d;
        self
    }
}

/// Why a segment could not be read at all. Torn tails are *not* errors —
/// they surface as [`SegmentRead::truncated`].
#[derive(Debug)]
pub enum SpoolError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`SEGMENT_MAGIC`].
    BadMagic,
    /// The file's format version is newer than this reader.
    BadVersion(u32),
}

impl std::fmt::Display for SpoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpoolError::Io(e) => write!(f, "spool i/o error: {e}"),
            SpoolError::BadMagic => write!(f, "not a zcorba spool segment (bad magic)"),
            SpoolError::BadVersion(v) => write!(f, "unsupported spool segment version {v}"),
        }
    }
}

impl std::error::Error for SpoolError {}

impl From<std::io::Error> for SpoolError {
    fn from(e: std::io::Error) -> SpoolError {
        SpoolError::Io(e)
    }
}

/// One decoded segment.
#[derive(Debug, Default)]
pub struct SegmentRead {
    /// Every event from the segment's valid record prefix, in write order.
    pub events: Vec<TraceEvent>,
    /// Whether a torn/corrupt tail was dropped (crash mid-append, or a
    /// hostile edit).
    pub truncated: bool,
    /// Events whose layer/kind byte was unknown (skipped, e.g. a segment
    /// written by a newer build).
    pub skipped_events: u64,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
}

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) over `data`.
fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // The table index is one masked byte; `min` re-binds it through a
        // recognized clamp so taint analysis sees the bound too.
        let idx = usize::min(((c ^ b as u32) & 0xFF) as usize, 255);
        c = CRC_TABLE[idx] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn encode_event(ev: &TraceEvent, out: &mut Vec<u8>) {
    out.extend_from_slice(&ev.ts_ns.to_le_bytes());
    out.extend_from_slice(&ev.conn_id.to_le_bytes());
    out.extend_from_slice(&ev.trace_id.to_le_bytes());
    out.extend_from_slice(&(ev.meta() as u16).to_le_bytes());
    out.extend_from_slice(&ev.payload.to_le_bytes());
}

fn decode_event(b: &[u8]) -> Option<TraceEvent> {
    if b.len() < SPOOL_EVENT_LEN {
        return None;
    }
    let u64_at = |off: usize| -> Option<u64> {
        b.get(off..off.checked_add(8)?)?
            .try_into()
            .ok()
            .map(u64::from_le_bytes)
    };
    let ts_ns = u64_at(0)?;
    let conn_id = u64_at(8)?;
    let trace_id = u64_at(16)?;
    let meta = b.get(24..26)?.try_into().ok().map(u16::from_le_bytes)? as u64;
    let payload = u64_at(26)?;
    let (layer, kind) = TraceEvent::unpack_meta(meta)?;
    Some(TraceEvent {
        ts_ns,
        conn_id,
        trace_id,
        layer,
        kind,
        payload,
    })
}

/// Fill `buf` as far as the stream allows; returns the bytes read (short
/// only at EOF). Distinguishes a clean between-records EOF (0) from a torn
/// tail (0 < n < buf.len()).
fn read_fill(rd: &mut impl std::io::Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match rd.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one segment file, tolerating a torn tail. Untrusted input: lengths
/// are clamped before they size allocations, corrupt records end the scan
/// (reported via [`SegmentRead::truncated`]) instead of erroring, and
/// events with unknown layer/kind bytes are counted and skipped.
pub fn read_spool_segment(path: &Path) -> Result<SegmentRead, SpoolError> {
    let file = File::open(path)?;
    let mut rd = BufReader::new(file);
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    if rd.read_exact(&mut header).is_err() {
        return Err(SpoolError::BadMagic);
    }
    if header[..8] != SEGMENT_MAGIC {
        return Err(SpoolError::BadMagic);
    }
    // Panic-free u32 reads from the fixed-size header arrays: the slices
    // are always 4 bytes, so the fallback arm is unreachable, but wire
    // bytes never get to drive a panic path even in principle.
    let le_u32 = |b: &[u8]| b.try_into().map(u32::from_le_bytes).unwrap_or(0);
    let version = le_u32(&header[8..12]);
    if version != SEGMENT_VERSION {
        return Err(SpoolError::BadVersion(version));
    }
    let mut out = SegmentRead {
        valid_len: SEGMENT_HEADER_LEN as u64,
        ..SegmentRead::default()
    };
    // One payload buffer reused across records bounds peak allocation to
    // MAX_RECORD_BYTES regardless of what the length fields claim.
    let mut payload = Vec::new();
    loop {
        let mut rec_header = [0u8; 8];
        match read_fill(&mut rd, &mut rec_header)? {
            0 => break, // clean EOF exactly between records
            n if n < rec_header.len() => {
                out.truncated = true; // partial record header: torn tail
                break;
            }
            _ => {}
        }
        let len = le_u32(&rec_header[0..4]) as usize;
        let crc = le_u32(&rec_header[4..8]);
        if len == 0 || len > MAX_RECORD_BYTES || !len.is_multiple_of(SPOOL_EVENT_LEN) {
            // A lying length field: everything from here on is garbage.
            out.truncated = true;
            break;
        }
        let len = len.min(MAX_RECORD_BYTES);
        payload.clear();
        payload.resize(len, 0);
        if rd.read_exact(&mut payload).is_err() {
            out.truncated = true;
            break;
        }
        if crc32(&payload) != crc {
            out.truncated = true;
            break;
        }
        for chunk in payload.chunks_exact(SPOOL_EVENT_LEN) {
            match decode_event(chunk) {
                Some(ev) => out.events.push(ev),
                None => out.skipped_events += 1,
            }
        }
        out.valid_len += 8 + len as u64;
    }
    Ok(out)
}

/// Cut a segment back to its valid prefix (torn-tail truncation on open).
/// Returns the retained byte length. A file that is not a spool segment at
/// all is left untouched and reported as [`SpoolError::BadMagic`].
pub fn repair_segment(path: &Path) -> Result<u64, SpoolError> {
    let scan = read_spool_segment(path)?;
    if scan.truncated {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_len)?;
        file.sync_all()?;
    }
    Ok(scan.valid_len)
}

/// List a spool directory's segment files, oldest first. Non-segment
/// files are ignored.
pub fn spool_segments(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut segments: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("spool-") && n.ends_with(".zcs"))
        })
        .collect();
    // Zero-padded sequence numbers sort correctly as names.
    segments.sort();
    segments
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("spool-{seq:08}.zcs"))
}

fn segment_seq(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("spool-")?
        .strip_suffix(".zcs")?
        .parse()
        .ok()
}

/// The background spool writer: drains the telemetry's flight recorder
/// into rotating segment files until dropped (drop performs a final drain
/// and joins the thread, so a clean shutdown loses nothing the recorder
/// still held).
pub struct SpoolWriter {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

struct WriterState {
    tele: Arc<Telemetry>,
    config: SpoolConfig,
    file: File,
    written: u64,
    next_seq: u64,
    /// Recorder ticket of the newest event already spooled (tickets are
    /// monotone, so `> last_ticket` is exactly "not yet drained").
    last_ticket: Option<u64>,
    batch: Vec<u8>,
}

impl SpoolWriter {
    /// Create the spool directory (repairing any torn tail a previous run
    /// left behind) and start the writer thread.
    pub fn spawn(tele: Arc<Telemetry>, config: SpoolConfig) -> std::io::Result<SpoolWriter> {
        fs::create_dir_all(&config.dir)?;
        let existing = spool_segments(&config.dir);
        if let Some(last) = existing.last() {
            // Crash tolerance: a prior process may have died mid-append.
            let _ = repair_segment(last);
        }
        let next_seq = existing
            .iter()
            .filter_map(|p| segment_seq(p))
            .max()
            .map_or(0, |m| m + 1);
        let file = open_segment(&config.dir, next_seq)?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut state = WriterState {
            tele,
            config,
            file,
            written: SEGMENT_HEADER_LEN as u64,
            next_seq: next_seq + 1,
            last_ticket: None,
            batch: Vec::new(),
        };
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("zc-spool".into())
            .spawn(move || loop {
                if thread_stop.load(Ordering::Acquire) {
                    let _ = state.drain();
                    let _ = state.file.sync_all();
                    break;
                }
                std::thread::sleep(state.config.flush_interval);
                let _ = state.drain();
            })?;
        Ok(SpoolWriter {
            stop,
            thread: Some(thread),
        })
    }

    /// Stop the writer after a final drain (also what `Drop` does).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SpoolWriter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn open_segment(dir: &Path, seq: u64) -> std::io::Result<File> {
    let mut file = File::create(segment_path(dir, seq))?;
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..8].copy_from_slice(&SEGMENT_MAGIC);
    header[8..12].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    file.write_all(&header)?;
    Ok(file)
}

impl WriterState {
    /// Drain everything the recorder holds that is newer than the last
    /// drained ticket, as one or more CRC'd records.
    fn drain(&mut self) -> std::io::Result<()> {
        let snapshot = self.tele.recorder().snapshot();
        let fresh: Vec<&TraceEvent> = snapshot
            .iter()
            .filter(|(ticket, _)| self.last_ticket.is_none_or(|last| *ticket > last))
            .map(|(_, ev)| ev)
            .collect();
        if fresh.is_empty() {
            return Ok(());
        }
        if let Some((ticket, _)) = snapshot.last() {
            self.last_ticket = Some(*ticket);
        }
        const EVENTS_PER_RECORD: usize = MAX_RECORD_BYTES / SPOOL_EVENT_LEN;
        for chunk in fresh.chunks(EVENTS_PER_RECORD) {
            self.batch.clear();
            for ev in chunk {
                encode_event(ev, &mut self.batch);
            }
            let mut record = Vec::with_capacity(8 + self.batch.len());
            record.extend_from_slice(&(self.batch.len() as u32).to_le_bytes());
            record.extend_from_slice(&crc32(&self.batch).to_le_bytes());
            record.extend_from_slice(&self.batch);
            // One write_all per record: a crash tears at most this record.
            self.file.write_all(&record)?;
            self.written += record.len() as u64;
            if self.written >= self.config.segment_bytes {
                self.rotate()?;
            }
        }
        Ok(())
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        self.file.sync_all()?;
        self.file = open_segment(&self.config.dir, self.next_seq)?;
        self.next_seq += 1;
        self.written = SEGMENT_HEADER_LEN as u64;
        let segments = spool_segments(&self.config.dir);
        if segments.len() > self.config.max_segments {
            for old in &segments[..segments.len() - self.config.max_segments] {
                let _ = fs::remove_file(old);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, TraceLayer};
    use std::sync::atomic::AtomicU64;

    fn temp_spool_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("zcorba-spool-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev(trace_id: u64, payload: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 1000 + trace_id,
            conn_id: 7,
            trace_id,
            layer: TraceLayer::Orb,
            kind: EventKind::Invoke,
            payload,
        }
    }

    /// Write a raw segment by hand (no writer thread) for reader tests.
    fn write_segment(path: &Path, records: &[Vec<TraceEvent>]) {
        let mut file = open_segment(path.parent().unwrap(), 0).unwrap();
        assert_eq!(path, segment_path(path.parent().unwrap(), 0));
        for events in records {
            let mut payload = Vec::new();
            for e in events {
                encode_event(e, &mut payload);
            }
            let mut record = Vec::new();
            record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            record.extend_from_slice(&crc32(&payload).to_le_bytes());
            record.extend_from_slice(&payload);
            file.write_all(&record).unwrap();
        }
    }

    #[test]
    fn roundtrip_preserves_events() {
        let dir = temp_spool_dir("roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = segment_path(&dir, 0);
        let records = vec![vec![ev(1, 10), ev(2, 20)], vec![ev(3, 30)]];
        write_segment(&path, &records);
        let read = read_spool_segment(&path).unwrap();
        assert!(!read.truncated);
        assert_eq!(read.skipped_events, 0);
        let flat: Vec<TraceEvent> = records.into_iter().flatten().collect();
        assert_eq!(read.events, flat);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let dir = temp_spool_dir("torn");
        fs::create_dir_all(&dir).unwrap();
        let path = segment_path(&dir, 0);
        write_segment(&path, &[vec![ev(1, 1)], vec![ev(2, 2)]]);
        // Tear mid-way through the second record.
        let full = fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 10).unwrap();
        drop(file);
        let read = read_spool_segment(&path).unwrap();
        assert!(read.truncated);
        assert_eq!(read.events, vec![ev(1, 1)]);
        // Repair makes the truncation durable; a re-read is then clean.
        let kept = repair_segment(&path).unwrap();
        assert_eq!(kept, read.valid_len);
        assert_eq!(fs::metadata(&path).unwrap().len(), kept);
        let read2 = read_spool_segment(&path).unwrap();
        assert!(!read2.truncated);
        assert_eq!(read2.events, vec![ev(1, 1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_ends_the_scan() {
        let dir = temp_spool_dir("crc");
        fs::create_dir_all(&dir).unwrap();
        let path = segment_path(&dir, 0);
        write_segment(&path, &[vec![ev(1, 1)], vec![ev(2, 2)], vec![ev(3, 3)]]);
        // Flip one payload byte of the middle record.
        let mut bytes = fs::read(&path).unwrap();
        let rec_len = 8 + SPOOL_EVENT_LEN;
        let mid_payload = SEGMENT_HEADER_LEN + rec_len + 8 + 4;
        bytes[mid_payload] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let read = read_spool_segment(&path).unwrap();
        assert!(read.truncated);
        assert_eq!(read.events, vec![ev(1, 1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lying_length_cannot_oom_the_reader() {
        let dir = temp_spool_dir("lying");
        fs::create_dir_all(&dir).unwrap();
        let path = segment_path(&dir, 0);
        let mut file = open_segment(&dir, 0).unwrap();
        // Claims 3.4 GB of payload; the reader must refuse the record
        // without attempting the allocation.
        file.write_all(&0xCAFE_BABEu32.to_le_bytes()).unwrap();
        file.write_all(&0u32.to_le_bytes()).unwrap();
        drop(file);
        let read = read_spool_segment(&path).unwrap();
        assert!(read.truncated);
        assert!(read.events.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let dir = temp_spool_dir("magic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spool-00000000.zcs");
        fs::write(&path, b"not a segment at all").unwrap();
        assert!(matches!(
            read_spool_segment(&path),
            Err(SpoolError::BadMagic)
        ));
        // repair refuses to touch a non-segment file
        assert!(repair_segment(&path).is_err());
        assert_eq!(fs::read(&path).unwrap(), b"not a segment at all");
        let mut header = Vec::new();
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&99u32.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        fs::write(&path, &header).unwrap();
        assert!(matches!(
            read_spool_segment(&path),
            Err(SpoolError::BadVersion(99))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_drains_rotates_and_bounds_segments() {
        let dir = temp_spool_dir("writer");
        let tele = Telemetry::with_capacity(1024);
        let config = SpoolConfig::new(&dir)
            .segment_bytes(2048)
            .max_segments(3)
            .flush_interval(Duration::from_millis(5));
        let writer = SpoolWriter::spawn(Arc::clone(&tele), config).unwrap();
        for i in 0..600u64 {
            tele.record(TraceLayer::Orb, EventKind::Invoke, 1, i + 1, i);
            if i % 200 == 0 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        drop(writer); // final drain + join
        let segments = spool_segments(&dir);
        assert!(
            segments.len() >= 2 && segments.len() <= 3,
            "expected rotation within bounds, got {segments:?}"
        );
        let mut seen: Vec<u64> = Vec::new();
        for seg in &segments {
            let read = read_spool_segment(seg).unwrap();
            assert!(!read.truncated, "{seg:?}");
            seen.extend(read.events.iter().map(|e| e.trace_id));
        }
        // The retained window is a contiguous, ordered suffix of what was
        // recorded (old segments may have been pruned; ring may drop).
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "events out of order");
        assert_eq!(*seen.last().unwrap(), 600);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_resumes_after_previous_run() {
        let dir = temp_spool_dir("resume");
        let tele = Telemetry::with_capacity(64);
        let config = SpoolConfig::new(&dir).flush_interval(Duration::from_millis(5));
        let w1 = SpoolWriter::spawn(Arc::clone(&tele), config.clone()).unwrap();
        tele.record(TraceLayer::Orb, EventKind::Invoke, 1, 1, 0);
        drop(w1);
        let first = spool_segments(&dir);
        assert_eq!(first.len(), 1);
        // A second run must not clobber the first run's segment.
        let w2 = SpoolWriter::spawn(Arc::clone(&tele), config).unwrap();
        drop(w2);
        let second = spool_segments(&dir);
        assert_eq!(second.len(), 2);
        assert_eq!(second[0], first[0]);
        let read = read_spool_segment(&second[0]).unwrap();
        assert_eq!(read.events.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
