//! The unified telemetry report and its exporters.
//!
//! [`OrbTelemetry`] merges the three accounting systems — the copy meter
//! (`zc-buffers`), the transport totals (mirrored from every connection's
//! `ConnStats`) and the metrics registry — into one snapshot, exportable as
//! a human text table or machine-readable JSON lines. This module is the
//! *rendering* side of the crate: it allocates and formats freely, because
//! it runs only when a report is asked for, never on the request path.

use std::fmt::Write as _;

use zc_buffers::{CopyLayer, CopySnapshot, PoolStats};

use crate::event::TraceEvent;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot, TransportField, TransportTotals};
use crate::windows::LoadSnapshot;

/// A point-in-time, ORB-wide telemetry report.
#[derive(Debug, Clone, Copy)]
pub struct OrbTelemetry {
    /// Whether the producing [`crate::Telemetry`] was enabled (a disabled
    /// instance still snapshots meter/pool state, which is tracked
    /// unconditionally).
    pub enabled: bool,
    /// Per-layer copy accounting.
    pub copies: CopySnapshot,
    /// Deposit-buffer pool statistics (recycle hits).
    pub pool: PoolStats,
    /// Merged transport totals across all connections.
    pub transport: TransportTotals,
    /// ORB metrics (counters + histograms).
    pub metrics: MetricsSnapshot,
    /// Windowed load signals (rates + watermark gauges).
    pub load: LoadSnapshot,
    /// Flight-recorder record attempts.
    pub events_recorded: u64,
    /// Flight-recorder events dropped under contention.
    pub events_dropped: u64,
}

impl OrbTelemetry {
    /// Fraction of receive speculations that held.
    pub fn spec_hit_rate(&self) -> f64 {
        self.transport.spec_hit_rate()
    }

    /// Fraction of pool acquires served from the free list.
    pub fn pool_recycle_rate(&self) -> f64 {
        let total = self.pool.fresh_allocations + self.pool.reuses;
        if total == 0 {
            0.0
        } else {
            self.pool.reuses as f64 / total as f64
        }
    }

    /// Render as an aligned text table.
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== zcorba telemetry ==");
        let _ = writeln!(
            out,
            "recorder            {:>14} events {:>10} dropped",
            self.events_recorded, self.events_dropped
        );
        let _ = writeln!(out, "-- copies (per layer) --");
        out.push_str(&self.copies.report());
        let _ = writeln!(
            out,
            "overhead-bytes      {:>14}",
            self.copies.overhead_bytes()
        );
        let _ = writeln!(out, "-- transport totals --");
        for f in TransportField::ALL {
            let v = self.transport.get(f);
            if v != 0 {
                let _ = writeln!(out, "{:<20}{v:>14}", f.name());
            }
        }
        let _ = writeln!(
            out,
            "spec_hit_rate       {:>14.3}",
            self.transport.spec_hit_rate()
        );
        let _ = writeln!(out, "-- pool --");
        let _ = writeln!(
            out,
            "fresh/reused        {:>14} {:>10}  (recycle rate {:.3})",
            self.pool.fresh_allocations,
            self.pool.reuses,
            self.pool_recycle_rate()
        );
        let _ = writeln!(out, "-- metrics --");
        for (name, v) in [
            ("requests_sent", self.metrics.requests_sent),
            ("requests_received", self.metrics.requests_received),
            ("replies_ok", self.metrics.replies_ok),
            ("replies_exception", self.metrics.replies_exception),
            ("trace_contexts_seen", self.metrics.trace_contexts_seen),
            ("retries", self.metrics.retries),
            ("reconnects", self.metrics.reconnects),
            ("breaker_opens", self.metrics.breaker_opens),
            ("degradations", self.metrics.degradations),
            ("upgrades", self.metrics.upgrades),
            ("sheds", self.metrics.sheds),
            ("brownout_sheds", self.metrics.brownout_sheds),
            ("failovers", self.metrics.failovers),
        ] {
            if v != 0 {
                let _ = writeln!(out, "{name:<20}{v:>14}");
            }
        }
        for (name, h) in [
            ("request_latency_ns", &self.metrics.request_latency_ns),
            ("dispatch_ns", &self.metrics.dispatch_ns),
            ("deposit_block_bytes", &self.metrics.deposit_block_bytes),
            ("frames_per_block", &self.metrics.frames_per_block),
            ("data_wire_ns", &self.metrics.data_wire_ns),
        ] {
            if h.count != 0 {
                let _ = writeln!(
                    out,
                    "{name:<20}{:>10} samples  mean {:>12.0}  p50 {:>12}  p99 {:>12}  max {:>12}",
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.max
                );
            }
        }
        if self.metrics.stage_ns.total_count() != 0 {
            let _ = writeln!(out, "-- request-span stages (ns) --");
            for (stage, h) in self.metrics.stage_ns.iter() {
                if h.count != 0 {
                    let _ = writeln!(
                        out,
                        "{:<20}{:>10} samples  mean {:>12.0}  p50 {:>12}  p99 {:>12}  max {:>12}",
                        stage.name(),
                        h.count,
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                        h.max
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "-- load ({}ms window) --",
            self.load.window_ns / 1_000_000
        );
        for (name, v) in [
            ("req/s", self.load.req_per_s),
            ("wire tx B/s", self.load.wire_tx_bytes_per_s),
            ("wire rx B/s", self.load.wire_rx_bytes_per_s),
            ("retries/s", self.load.retries_per_s),
            ("shed/s", self.load.shed_per_s),
            ("brownout/s", self.load.brownout_per_s),
            ("failover/s", self.load.failover_per_s),
        ] {
            let _ = writeln!(out, "{name:<20}{v:>14.1}");
        }
        for (name, g) in [
            ("inflight", self.load.inflight),
            ("conns", self.load.conns),
            ("degraded_conns", self.load.degraded_conns),
            ("breakers_open", self.load.breakers_open),
            ("reassembly_bytes", self.load.reassembly_bytes),
            ("pool_retained", self.load.pool_retained),
        ] {
            let _ = writeln!(
                out,
                "{name:<20}{:>14} current {:>10} peak",
                g.current, g.peak
            );
        }
        out
    }

    /// Render as JSON lines: one self-describing object per line, keyed by
    /// a `"section"` field. Hand-rolled (no serde in the workspace); every
    /// value is numeric or a fixed identifier, so no escaping is needed.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"section\":\"recorder\",\"enabled\":{},\"recorded\":{},\"dropped\":{}}}",
            self.enabled, self.events_recorded, self.events_dropped
        );
        for layer in CopyLayer::ALL {
            let b = self.copies.bytes(layer);
            let e = self.copies.events(layer);
            if b != 0 || e != 0 {
                let _ = writeln!(
                    out,
                    "{{\"section\":\"copies\",\"layer\":\"{}\",\"bytes\":{b},\"events\":{e}}}",
                    layer.name()
                );
            }
        }
        let mut t = String::new();
        for f in TransportField::ALL {
            let _ = write!(t, ",\"{}\":{}", f.name(), self.transport.get(f));
        }
        let _ = writeln!(
            out,
            "{{\"section\":\"transport\",\"spec_hit_rate\":{:.6}{t}}}",
            self.transport.spec_hit_rate()
        );
        let _ = writeln!(
            out,
            "{{\"section\":\"pool\",\"fresh_allocations\":{},\"reuses\":{},\"returns\":{},\"discards\":{},\"retained_bytes\":{},\"recycle_rate\":{:.6}}}",
            self.pool.fresh_allocations,
            self.pool.reuses,
            self.pool.returns,
            self.pool.discards,
            self.pool.retained_bytes,
            self.pool_recycle_rate()
        );
        for (name, v) in [
            ("requests_sent", self.metrics.requests_sent),
            ("requests_received", self.metrics.requests_received),
            ("replies_ok", self.metrics.replies_ok),
            ("replies_exception", self.metrics.replies_exception),
            ("trace_contexts_seen", self.metrics.trace_contexts_seen),
            ("retries", self.metrics.retries),
            ("reconnects", self.metrics.reconnects),
            ("breaker_opens", self.metrics.breaker_opens),
            ("degradations", self.metrics.degradations),
            ("upgrades", self.metrics.upgrades),
            ("sheds", self.metrics.sheds),
            ("brownout_sheds", self.metrics.brownout_sheds),
            ("failovers", self.metrics.failovers),
        ] {
            let _ = writeln!(
                out,
                "{{\"section\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}"
            );
        }
        for (name, h) in [
            ("request_latency_ns", &self.metrics.request_latency_ns),
            ("dispatch_ns", &self.metrics.dispatch_ns),
            ("deposit_block_bytes", &self.metrics.deposit_block_bytes),
            ("frames_per_block", &self.metrics.frames_per_block),
            ("data_wire_ns", &self.metrics.data_wire_ns),
        ] {
            out.push_str(&histogram_json_line(name, h));
        }
        for (stage, h) in self.metrics.stage_ns.iter() {
            if h.count != 0 {
                out.push_str(&stage_json_line(stage, h));
            }
        }
        let l = &self.load;
        let mut g = String::new();
        for (name, gs) in [
            ("inflight", l.inflight),
            ("conns", l.conns),
            ("degraded_conns", l.degraded_conns),
            ("breakers_open", l.breakers_open),
            ("reassembly_bytes", l.reassembly_bytes),
            ("pool_retained", l.pool_retained),
        ] {
            let _ = write!(g, ",\"{name}\":{},\"{name}_peak\":{}", gs.current, gs.peak);
        }
        let _ = writeln!(
            out,
            "{{\"section\":\"load\",\"window_ns\":{},\"req_per_s\":{:.3},\"wire_tx_bytes_per_s\":{:.3},\"wire_rx_bytes_per_s\":{:.3},\"retries_per_s\":{:.3},\"shed_per_s\":{:.3},\"brownout_per_s\":{:.3},\"failover_per_s\":{:.3},\"req_rx_total\":{}{g}}}",
            l.window_ns,
            l.req_per_s,
            l.wire_tx_bytes_per_s,
            l.wire_rx_bytes_per_s,
            l.retries_per_s,
            l.shed_per_s,
            l.brownout_per_s,
            l.failover_per_s,
            l.req_rx_total
        );
        out
    }
}

fn stage_json_line(stage: crate::Stage, h: &HistogramSnapshot) -> String {
    format!(
        "{{\"section\":\"stage\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
        stage.name(),
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99)
    )
}

fn histogram_json_line(name: &str, h: &HistogramSnapshot) -> String {
    format!(
        "{{\"section\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99)
    )
}

/// Render a connection post-mortem: the last events of one connection, one
/// line each, oldest first.
pub(crate) fn render_post_mortem(conn_id: u64, events: &[TraceEvent]) -> String {
    if events.is_empty() {
        return format!("conn {conn_id}: no recorded events\n");
    }
    let mut out = String::new();
    for e in events {
        // stage payloads pack (stage, duration); decode them for the reader
        if e.kind == crate::EventKind::Stage {
            if let Some((stage, dur_ns)) = crate::unpack_stage(e.payload) {
                let _ = writeln!(
                    out,
                    "{:>14}ns conn={} trace={} {:<10} {:<14} stage={} dur_ns={dur_ns}",
                    e.ts_ns,
                    e.conn_id,
                    e.trace_id,
                    e.layer.name(),
                    e.kind.name(),
                    stage.name()
                );
                continue;
            }
        }
        let _ = writeln!(
            out,
            "{:>14}ns conn={} trace={} {:<10} {:<14} payload={}",
            e.ts_ns,
            e.conn_id,
            e.trace_id,
            e.layer.name(),
            e.kind.name(),
            e.payload
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OrbTelemetry {
        let tele = crate::Telemetry::with_capacity(8);
        tele.record(
            crate::TraceLayer::Giop,
            crate::EventKind::RequestSent,
            1,
            2,
            4096,
        );
        tele.metrics().requests_sent.incr();
        tele.metrics().request_latency_ns.record(150_000);
        tele.metrics().deposit_block_bytes.record(1 << 16);
        tele.transport().add(crate::TransportField::SpecHits, 3);
        tele.transport()
            .add(crate::TransportField::WireBytesRecv, 9999);
        tele.record_stage(crate::Stage::ClientMarshal, 1, 2, 777);
        tele.record_stage(crate::Stage::Wire, 1, 2, 12_000);
        tele.orb_snapshot(CopySnapshot::default(), PoolStats::default())
    }

    #[test]
    fn text_table_has_sections() {
        let t = sample().text_table();
        assert!(t.contains("zcorba telemetry"), "{t}");
        assert!(t.contains("spec_hit_rate"), "{t}");
        assert!(t.contains("request_latency_ns"), "{t}");
        assert!(t.contains("wire_bytes_recv"), "{t}");
        assert!(t.contains("request-span stages"), "{t}");
        assert!(t.contains("marshal"), "{t}");
    }

    #[test]
    fn json_lines_are_balanced_objects() {
        let j = sample().json_lines();
        for line in j.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
            assert!(line.contains("\"section\":"), "{line}");
        }
        assert!(j.contains("\"name\":\"request_latency_ns\""), "{j}");
        assert!(j.contains("\"spec_hit_rate\""), "{j}");
        assert!(j.contains("\"wire_bytes_recv\":9999"), "{j}");
        assert!(j.contains("\"section\":\"stage\""), "{j}");
        assert!(j.contains("\"name\":\"wire\""), "{j}");
    }

    #[test]
    fn post_mortem_decodes_stage_events() {
        let tele = crate::Telemetry::with_capacity(8);
        tele.record_stage(crate::Stage::ServerDispatch, 5, 9, 4321);
        let pm = tele.post_mortem(5, 8).unwrap();
        assert!(pm.contains("stage=dispatch"), "{pm}");
        assert!(pm.contains("dur_ns=4321"), "{pm}");
    }
}
