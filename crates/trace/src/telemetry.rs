//! The telemetry handle: one shared object bundling the flight recorder,
//! the metrics registry and the transport mirror.
//!
//! An `Arc<Telemetry>` rides inside `TransportCtx` next to the copy meter,
//! so every layer that can account a copy can also record an event. The
//! disabled handle is a real object whose `record` returns after one plain
//! (non-RMW) boolean load — instrumentation compiles in, costs nothing
//! measurable, and flips on without rebuilding.

use std::sync::Arc;

use zc_buffers::{CopySnapshot, PoolStats};

use crate::event::{EventKind, TraceEvent, TraceLayer};
use crate::metrics::{MetricsRegistry, TransportCounters, TransportField};
use crate::recorder::FlightRecorder;
use crate::report::OrbTelemetry;
use crate::span::{pack_stage, RequestSpan, Stage};
use crate::windows::LoadWindows;

/// Shared telemetry state for one ORB (or one experiment, when the client
/// and server ORBs are handed the same instance).
pub struct Telemetry {
    enabled: bool,
    recorder: FlightRecorder,
    metrics: MetricsRegistry,
    transport: TransportCounters,
    windows: LoadWindows,
}

impl Telemetry {
    /// Flight-recorder capacity used by [`Telemetry::new_shared`].
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An enabled telemetry instance with the default recorder capacity.
    pub fn new_shared() -> Arc<Telemetry> {
        Telemetry::with_capacity(Telemetry::DEFAULT_CAPACITY)
    }

    /// An enabled telemetry instance whose recorder holds `capacity`
    /// events. `capacity == 0` is equivalent to [`Telemetry::disabled`].
    pub fn with_capacity(capacity: usize) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: capacity > 0,
            recorder: FlightRecorder::new(capacity),
            metrics: MetricsRegistry::default(),
            transport: TransportCounters::default(),
            windows: LoadWindows::default(),
        })
    }

    /// The disabled instance: recording is a no-op after one plain boolean
    /// load — no heap allocation, no atomic read-modify-write.
    pub fn disabled() -> Arc<Telemetry> {
        Telemetry::with_capacity(0)
    }

    /// Whether this instance records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (no-op when disabled). Timestamps the event with
    /// [`crate::now_ns`].
    #[inline]
    pub fn record(
        &self,
        layer: TraceLayer,
        kind: EventKind,
        conn_id: u64,
        trace_id: u64,
        payload: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.recorder.record(TraceEvent {
            ts_ns: crate::now_ns(),
            conn_id,
            trace_id,
            layer,
            kind,
            payload,
        });
    }

    /// Record one request-span stage (no-op when disabled): a sample in the
    /// stage's duration histogram plus a [`EventKind::Stage`] flight-recorder
    /// event whose payload packs stage + duration ([`pack_stage`]).
    #[inline]
    pub fn record_stage(&self, stage: Stage, conn_id: u64, trace_id: u64, dur_ns: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.stage_ns.record(stage, dur_ns);
        self.recorder.record(TraceEvent {
            ts_ns: crate::now_ns(),
            conn_id,
            trace_id,
            layer: stage.layer(),
            kind: EventKind::Stage,
            payload: pack_stage(stage, dur_ns),
        });
    }

    /// Record one journey attempt (no-op when disabled): an
    /// [`EventKind::Attempt`] flight-recorder event whose payload packs
    /// cause + attempt ordinal + journey id ([`crate::pack_attempt`]) and
    /// whose `trace_id` is the attempt's per-send trace id — the join key
    /// from the journey to that attempt's stage timeline.
    #[inline]
    pub fn record_attempt(
        &self,
        conn_id: u64,
        trace_id: u64,
        cause: crate::JourneyCause,
        attempt: u32,
        journey_id: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.recorder.record(TraceEvent {
            ts_ns: crate::now_ns(),
            conn_id,
            trace_id,
            layer: TraceLayer::Orb,
            kind: EventKind::Attempt,
            payload: crate::pack_attempt(cause, attempt, journey_id),
        });
    }

    /// A [`RequestSpan`] that accumulates exactly when this instance is
    /// enabled. The one-boolean construction keeps the disabled path free
    /// of clock reads and atomics.
    #[inline]
    pub fn request_span(&self) -> RequestSpan {
        RequestSpan::new(self.enabled)
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The metrics registry. Callers must gate updates on
    /// [`Telemetry::is_enabled`] to preserve the disabled-mode
    /// zero-overhead guarantee.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The ORB-wide transport totals.
    pub fn transport(&self) -> &TransportCounters {
        &self.transport
    }

    /// The windowed load signals. Callers must gate updates on
    /// [`Telemetry::is_enabled`] (or use the `note_*` helpers, which do).
    pub fn windows(&self) -> &LoadWindows {
        &self.windows
    }

    /// Mirror one per-connection transport increment into the ORB-wide
    /// totals. This is the entry the transport's `StatsCell` calls when it
    /// holds a mirror handle — the handle only exists when telemetry is
    /// enabled, but the gate is kept so a stray call on a disabled instance
    /// still costs one boolean load. It runs per *frame* (every MTU-sized
    /// write/read), so it must stay a single relaxed add: the wire-byte
    /// rate windows are ticked per *message* by the GIOP connection layer
    /// via [`Telemetry::note_wire_tx`]/[`Telemetry::note_wire_rx`] instead
    /// of here, keeping the clock read off the per-frame path.
    #[inline]
    pub fn mirror_transport(&self, field: TransportField, n: u64) {
        if !self.enabled {
            return;
        }
        self.transport.add(field, n);
    }

    /// Tick the transmit byte-rate window with one message's worth of wire
    /// bytes (control body plus any separated deposit blocks). Called once
    /// per GIOP message send, not per frame.
    #[inline]
    pub fn note_wire_tx(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.windows.wire_tx.tick(crate::now_ns(), bytes);
    }

    /// Tick the receive byte-rate window with one reassembled message body
    /// or one received deposit block. Called per message/block, not per
    /// frame.
    #[inline]
    pub fn note_wire_rx(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.windows.wire_rx.tick(crate::now_ns(), bytes);
    }

    /// Count one received request into the arrival-rate window.
    #[inline]
    pub fn note_request_received(&self) {
        if !self.enabled {
            return;
        }
        self.windows.req_rx.tick(crate::now_ns(), 1);
    }

    /// Count one retry attempt into the retry-rate window.
    #[inline]
    pub fn note_retry(&self) {
        if !self.enabled {
            return;
        }
        self.windows.retries.tick(crate::now_ns(), 1);
    }

    /// Count one admission-control shed into the shed-rate window.
    #[inline]
    pub fn note_shed(&self) {
        if !self.enabled {
            return;
        }
        self.windows.shed.tick(crate::now_ns(), 1);
    }

    /// Count one brownout-mode bulk shed into the brownout-rate window.
    #[inline]
    pub fn note_brownout_shed(&self) {
        if !self.enabled {
            return;
        }
        self.windows.brownout.tick(crate::now_ns(), 1);
    }

    /// Count one client-side profile failover into the failover-rate window.
    #[inline]
    pub fn note_failover(&self) {
        if !self.enabled {
            return;
        }
        self.windows.failover.tick(crate::now_ns(), 1);
    }

    /// A dispatch began: raise the in-flight gauge.
    #[inline]
    pub fn note_dispatch_begin(&self) {
        if !self.enabled {
            return;
        }
        self.windows.inflight.add(1);
    }

    /// A dispatch finished: lower the in-flight gauge.
    #[inline]
    pub fn note_dispatch_end(&self) {
        if !self.enabled {
            return;
        }
        self.windows.inflight.sub(1);
    }

    /// A GIOP connection opened.
    #[inline]
    pub fn note_conn_open(&self) {
        if !self.enabled {
            return;
        }
        self.windows.conns.add(1);
    }

    /// A GIOP connection closed.
    #[inline]
    pub fn note_conn_closed(&self) {
        if !self.enabled {
            return;
        }
        self.windows.conns.sub(1);
    }

    /// A connection entered (`true`) or left (`false`) degraded mode.
    #[inline]
    pub fn note_degraded(&self, degraded: bool) {
        if !self.enabled {
            return;
        }
        if degraded {
            self.windows.degraded_conns.add(1);
        } else {
            self.windows.degraded_conns.sub(1);
        }
    }

    /// An endpoint circuit breaker opened (`true`) or closed (`false`).
    #[inline]
    pub fn note_breaker(&self, open: bool) {
        if !self.enabled {
            return;
        }
        if open {
            self.windows.breakers_open.add(1);
        } else {
            self.windows.breakers_open.sub(1);
        }
    }

    /// Fold an in-progress fragment-reassembly size into its watermark.
    #[inline]
    pub fn note_reassembly_bytes(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.windows.reassembly_bytes.record(bytes);
    }

    /// Fold a sampled pool retained-bytes value into its watermark.
    #[inline]
    pub fn note_pool_retained(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.windows.pool_retained.record(bytes);
    }

    /// `Some(self)` when enabled — the handle a per-connection stats cell
    /// should mirror into, `None` (mirror nothing, pay nothing) otherwise.
    pub fn transport_mirror(self: &Arc<Self>) -> Option<Arc<Telemetry>> {
        if self.enabled {
            Some(Arc::clone(self))
        } else {
            None
        }
    }

    /// Render the last `n` events of `conn_id` as a post-mortem, one event
    /// per line. `None` when disabled.
    pub fn post_mortem(&self, conn_id: u64, n: usize) -> Option<String> {
        if !self.enabled {
            return None;
        }
        Some(crate::report::render_post_mortem(
            conn_id,
            &self.recorder.recent_for_conn(conn_id, n),
        ))
    }

    /// Assemble the unified [`OrbTelemetry`] report from this instance plus
    /// the copy-meter and pool snapshots the caller owns.
    pub fn orb_snapshot(&self, copies: CopySnapshot, pool: PoolStats) -> OrbTelemetry {
        // Fold the instantaneous pool occupancy into its watermark first,
        // so the reported peak is never below the value in this snapshot.
        self.note_pool_retained(pool.retained_bytes);
        OrbTelemetry {
            enabled: self.enabled,
            copies,
            pool,
            transport: self.transport.snapshot(),
            metrics: self.metrics.snapshot(),
            load: self.windows.snapshot(crate::now_ns()),
            events_recorded: self.recorder.recorded(),
            events_dropped: self.recorder.dropped(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("recorder", &self.recorder)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        t.record(TraceLayer::Giop, EventKind::RequestSent, 1, 2, 3);
        assert!(!t.is_enabled());
        assert_eq!(t.recorder().recorded(), 0);
        assert!(t.transport_mirror().is_none());
        assert!(t.post_mortem(1, 8).is_none());
    }

    #[test]
    fn enabled_records_and_snapshots() {
        let t = Telemetry::with_capacity(16);
        t.record(TraceLayer::Giop, EventKind::RequestSent, 1, 42, 100);
        t.record(TraceLayer::Giop, EventKind::ReplyReceived, 1, 42, 5);
        t.metrics().requests_sent.incr();
        t.metrics().request_latency_ns.record(1234);
        let snap = t.orb_snapshot(CopySnapshot::default(), PoolStats::default());
        assert!(snap.enabled);
        assert_eq!(snap.events_recorded, 2);
        assert_eq!(snap.metrics.requests_sent, 1);
        assert_eq!(snap.metrics.request_latency_ns.count, 1);
        let events = t.recorder().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trace_id, 42);
        assert!(events[1].ts_ns >= events[0].ts_ns);
    }

    #[test]
    fn post_mortem_mentions_events() {
        let t = Telemetry::with_capacity(16);
        t.record(TraceLayer::Transport, EventKind::SpecMiss, 9, 7, 4096);
        let pm = t.post_mortem(9, 8).unwrap();
        assert!(pm.contains("spec-miss"), "{pm}");
        assert!(pm.contains("4096"), "{pm}");
        let empty = t.post_mortem(12345, 8).unwrap();
        assert!(empty.contains("no recorded events"), "{empty}");
    }
}
