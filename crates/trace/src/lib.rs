//! `zc-trace` — observability for the zero-copy ORB.
//!
//! Three cooperating layers, cheapest first:
//!
//! 1. **Flight recorder** ([`FlightRecorder`]) — a lock-free, fixed-size
//!    ring of [`TraceEvent`]s. Recording is allocation-free and never
//!    blocks; when tracing is disabled it is a no-op after a single plain
//!    boolean load. This is the per-event view: one Request produces a
//!    `request-sent` span on the client and a `request-recv` span on the
//!    server, correlated by the trace id carried in the `ZC_TRACE` GIOP
//!    service context.
//! 2. **Metrics registry** ([`MetricsRegistry`]) — atomic counters and
//!    log2-bucketed [`Histogram`]s (request latency, deposit-block sizes,
//!    fragment counts), plus [`TransportCounters`]: the ORB-wide mirror
//!    that merges every connection's `ConnStats` so totals survive
//!    connection teardown.
//! 3. **Unified report** ([`OrbTelemetry`]) — one snapshot joining the
//!    above with the `CopyMeter` and `PagePool` accounting from
//!    `zc-buffers`, exportable as a text table or JSON lines.
//!
//! The paper's claim is an accounting claim (§5: copy cost dominates);
//! this crate is the ledger.

mod event;
mod export;
mod metrics;
mod recorder;
mod report;
mod span;
mod spool;
mod telemetry;
mod windows;

pub use event::{
    pack_attempt, unpack_attempt, EventKind, JourneyCause, TraceEvent, TraceLayer, JOURNEY_ID_MASK,
};
pub use export::prometheus_text;
pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, StageHistograms,
    StageSnapshots, TransportCounters, TransportField, TransportTotals, HISTOGRAM_BUCKETS,
};
pub use recorder::FlightRecorder;
pub use report::OrbTelemetry;
pub use span::{
    pack_stage, span_timelines, unpack_stage, RequestSpan, SpanTimeline, Stage, StageSample,
    STAGE_DUR_MASK,
};
pub use spool::{
    read_spool_segment, repair_segment, spool_segments, SegmentRead, SpoolConfig, SpoolError,
    SpoolWriter, SEGMENT_MAGIC, SPOOL_EVENT_LEN,
};
pub use telemetry::Telemetry;
pub use windows::{Gauge, GaugeSnapshot, LoadSnapshot, LoadWindows, RateWindow, DEFAULT_WINDOW_NS};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (first use). Monotonic,
/// allocation-free; all [`TraceEvent::ts_ns`] values share this clock so
/// client and server spans of an in-process experiment are comparable.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_JOURNEY_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique trace id (never 0; 0 means "untraced").
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Allocate a process-unique connection id for trace correlation (never 0).
pub fn next_conn_id() -> u64 {
    NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Allocate a process-unique journey id for one *logical* request (never 0;
/// 0 means "no journey"). Every attempt of the journey — the initial send
/// plus any retry/failover/shed-rotate re-sends — gets its own trace id but
/// shares this id, carried in the `ZC_TRACE` context and the packed
/// [`EventKind::Attempt`] payload. Only the low 48 bits travel in the
/// payload ([`JOURNEY_ID_MASK`]), plenty for a process lifetime.
pub fn next_journey_id() -> u64 {
    NEXT_JOURNEY_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        let c = next_conn_id();
        let d = next_conn_id();
        assert_ne!(c, 0);
        assert_ne!(c, d);
    }

    #[test]
    fn clock_is_monotonic() {
        let t1 = now_ns();
        let t2 = now_ns();
        assert!(t2 >= t1);
    }
}
