//! Per-request causal spans: monotonic stage clocks along the data path.
//!
//! The paper's §5.2 table attributes every microsecond of a request to a
//! stage of the stack (CDR marshaling, socket copies, the wire, dispatch).
//! This module is the recording side of that decomposition: a [`Stage`]
//! names one leg of the request's journey, and a [`RequestSpan`] accumulates
//! stage durations for one invocation until the trace id is known, then
//! commits them as ordinary flight-recorder events (kind
//! [`crate::EventKind::Stage`], stage + duration packed into the payload
//! word) and per-stage histogram samples.
//!
//! Client and server record their own legs; the two half-timelines join on
//! the `ZC_TRACE` trace id (see [`span_timelines`]). The `wire` legs are
//! computed by the *receiver* from the `sent_at` timestamp the sender
//! stamps into its trace context — valid whenever both endpoints share the
//! [`crate::now_ns`] clock (always true for the in-process Sim and
//! loopback-TCP experiments this repo runs).
//!
//! Everything on the recording side obeys the recorder's discipline: no
//! allocation, no locks, and a disabled span is inert after one boolean
//! test. Rendering (tables, the §5.2 breakdown) lives in `zc-bench`.

use crate::event::{TraceEvent, TraceLayer};

/// One leg of a request's journey through the stack, in causal data-path
/// order. The client records the `Client*` legs, the server the `Server*`
/// legs plus [`Stage::Wire`]; [`Stage::ClientReplyWire`] is computed by the
/// client from the server's reply timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client: marshaling the arguments into the request body (the CDR
    /// copy that zero-copy descriptors eliminate).
    ClientMarshal = 0,
    /// Client: assembling the request header, deposit manifest and service
    /// contexts — the control-path "deposit registration" of §4.4.
    ClientDepositRegister = 1,
    /// Client: handing the control message and deposit blocks to the
    /// transport (includes the socket send copies on the copying path).
    /// A sub-interval of [`Stage::Wire`], reported separately so the
    /// send-side socket cost is visible on its own.
    ClientSend = 2,
    /// Sender-stamp → receiver-arrival for the request: encode + send +
    /// flight + kernel receive, as observed by the server against the
    /// `sent_at` timestamp in the trace context.
    Wire = 3,
    /// Server: pulling the announced deposit blocks off the data path
    /// (zero copies on a speculative hit; the fallback copy otherwise).
    ServerRecv = 4,
    /// Server: CDR-demarshaling the arguments the servant actually reads.
    ServerDemarshal = 5,
    /// Server: servant execution, excluding measured demarshal/marshal.
    ServerDispatch = 6,
    /// Server: marshaling the reply results (descriptor writes under ZC).
    ServerReplyMarshal = 7,
    /// Server-stamp → client-arrival for the reply, symmetric to
    /// [`Stage::Wire`].
    ClientReplyWire = 8,
    /// Client: parsing the reply header and collecting reply deposits.
    ClientReplyDemarshal = 9,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 10;

    /// All stages, in causal data-path order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::ClientMarshal,
        Stage::ClientDepositRegister,
        Stage::ClientSend,
        Stage::Wire,
        Stage::ServerRecv,
        Stage::ServerDemarshal,
        Stage::ServerDispatch,
        Stage::ServerReplyMarshal,
        Stage::ClientReplyWire,
        Stage::ClientReplyDemarshal,
    ];

    /// Short name used in reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientMarshal => "marshal",
            Stage::ClientDepositRegister => "deposit-register",
            Stage::ClientSend => "send",
            Stage::Wire => "wire",
            Stage::ServerRecv => "recv",
            Stage::ServerDemarshal => "demarshal",
            Stage::ServerDispatch => "dispatch",
            Stage::ServerReplyMarshal => "reply-marshal",
            Stage::ClientReplyWire => "reply-wire",
            Stage::ClientReplyDemarshal => "reply-demarshal",
        }
    }

    /// Inverse of `self as u8`.
    pub fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| *s as u8 == v)
    }

    /// The stack layer a stage's event is recorded at.
    pub fn layer(self) -> TraceLayer {
        match self {
            Stage::ClientMarshal | Stage::ServerDemarshal | Stage::ServerDispatch => {
                TraceLayer::Orb
            }
            Stage::ClientDepositRegister
            | Stage::ClientSend
            | Stage::ServerRecv
            | Stage::ServerReplyMarshal
            | Stage::ClientReplyDemarshal => TraceLayer::Giop,
            Stage::Wire | Stage::ClientReplyWire => TraceLayer::Transport,
        }
    }

    /// Whether this leg is recorded by the request's client side.
    pub fn is_client(self) -> bool {
        matches!(
            self,
            Stage::ClientMarshal
                | Stage::ClientDepositRegister
                | Stage::ClientSend
                | Stage::ClientReplyWire
                | Stage::ClientReplyDemarshal
        )
    }
}

/// Low 56 bits of a `Stage` event's payload hold the duration; the top
/// byte holds the stage discriminant. 2^56 ns ≈ 2.3 years, far beyond any
/// request.
pub const STAGE_DUR_MASK: u64 = (1u64 << 56) - 1;

/// Pack a stage + duration into one event payload word.
#[inline]
pub fn pack_stage(stage: Stage, dur_ns: u64) -> u64 {
    ((stage as u64) << 56) | (dur_ns & STAGE_DUR_MASK)
}

/// Inverse of [`pack_stage`]. `None` for an unknown stage discriminant.
#[inline]
pub fn unpack_stage(payload: u64) -> Option<(Stage, u64)> {
    Stage::from_u8((payload >> 56) as u8).map(|s| (s, payload & STAGE_DUR_MASK))
}

/// An accumulator for stages whose work is scattered across calls (per-arg
/// marshaling in a proxy, per-arg demarshaling in a servant) or measured
/// before the request's trace id exists. Fixed-size, allocation-free; a
/// disabled span is inert after one boolean test.
#[derive(Debug)]
pub struct RequestSpan {
    enabled: bool,
    marked: u16,
    acc: [u64; Stage::COUNT],
}

impl RequestSpan {
    /// A span that accumulates when `enabled`, and is inert otherwise.
    pub fn new(enabled: bool) -> RequestSpan {
        RequestSpan {
            enabled,
            marked: 0,
            acc: [0; Stage::COUNT],
        }
    }

    /// The inert span.
    pub fn disabled() -> RequestSpan {
        RequestSpan::new(false)
    }

    /// Whether this span accumulates.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start timing a leg: `Some(now)` when enabled, `None` (no clock read)
    /// otherwise. Pair with [`RequestSpan::end`].
    #[inline]
    pub fn begin(&self) -> Option<std::time::Instant> {
        if self.enabled {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Close a leg opened by [`RequestSpan::begin`], accumulating its
    /// elapsed time under `stage`. A `None` start is a no-op.
    #[inline]
    pub fn end(&mut self, stage: Stage, started: Option<std::time::Instant>) {
        if let Some(t0) = started {
            self.add(stage, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Accumulate `dur_ns` under `stage` (and mark the stage as observed).
    #[inline]
    pub fn add(&mut self, stage: Stage, dur_ns: u64) {
        if !self.enabled {
            return;
        }
        self.marked |= 1 << stage as u16;
        self.acc[stage as usize] += dur_ns;
    }

    /// Accumulated nanoseconds for `stage`.
    #[inline]
    pub fn get(&self, stage: Stage) -> u64 {
        self.acc[stage as usize]
    }

    /// Whether `stage` was observed at least once.
    #[inline]
    pub fn is_marked(&self, stage: Stage) -> bool {
        self.marked & (1 << stage as u16) != 0
    }

    /// Record every observed stage into `tele` (event + histogram) under
    /// the request's ids, then clear the marks so a retry loop cannot
    /// commit the same legs twice.
    pub fn commit(&mut self, tele: &crate::Telemetry, conn_id: u64, trace_id: u64) {
        if !self.enabled || self.marked == 0 {
            return;
        }
        for stage in Stage::ALL {
            if self.is_marked(stage) {
                tele.record_stage(stage, conn_id, trace_id, self.acc[stage as usize]);
            }
        }
        self.marked = 0;
    }
}

/// One stage observation within a reconstructed timeline. `ts_ns` is the
/// *commit* timestamp (when the leg's event was recorded, i.e. at or after
/// the leg's end), `dur_ns` the measured duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSample {
    /// Commit timestamp ([`crate::now_ns`] clock).
    pub ts_ns: u64,
    /// Measured duration of the leg, in nanoseconds.
    pub dur_ns: u64,
    /// Connection the leg was recorded on.
    pub conn_id: u64,
}

/// One request's stage timeline, joined across endpoints on its trace id.
#[derive(Debug, Clone)]
pub struct SpanTimeline {
    /// The request's trace id.
    pub trace_id: u64,
    stages: [Option<StageSample>; Stage::COUNT],
}

impl SpanTimeline {
    fn empty(trace_id: u64) -> SpanTimeline {
        SpanTimeline {
            trace_id,
            stages: [None; Stage::COUNT],
        }
    }

    /// The observation for `stage`, if any. When a stage was recorded more
    /// than once for the same trace id (retries), the last one wins.
    pub fn get(&self, stage: Stage) -> Option<StageSample> {
        self.stages[stage as usize]
    }

    /// Number of stages observed.
    pub fn stage_count(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
    }

    /// Sum of the *disjoint* critical-path legs (every stage except
    /// [`Stage::ClientSend`], which is a sub-interval of [`Stage::Wire`]).
    /// For a complete timeline this is comparable to the client-observed
    /// round-trip latency, minus scheduling gaps.
    pub fn critical_path_ns(&self) -> u64 {
        Stage::ALL
            .into_iter()
            .filter(|s| *s != Stage::ClientSend)
            .filter_map(|s| self.get(s))
            .map(|s| s.dur_ns)
            .sum()
    }
}

/// Join `Stage` events into per-request timelines, one per distinct
/// non-zero trace id, ordered by trace id. Feed it a flight-recorder
/// snapshot that covers both endpoints (one shared telemetry, or the
/// concatenation of both ends' events).
pub fn span_timelines(events: &[TraceEvent]) -> Vec<SpanTimeline> {
    let mut out: Vec<SpanTimeline> = Vec::new();
    for ev in events {
        if ev.kind != crate::event::EventKind::Stage || ev.trace_id == 0 {
            continue;
        }
        let Some((stage, dur_ns)) = unpack_stage(ev.payload) else {
            continue;
        };
        let idx = match out.iter().position(|t| t.trace_id == ev.trace_id) {
            Some(i) => i,
            None => {
                out.push(SpanTimeline::empty(ev.trace_id));
                out.len() - 1
            }
        };
        out[idx].stages[stage as usize] = Some(StageSample {
            ts_ns: ev.ts_ns,
            dur_ns,
            conn_id: ev.conn_id,
        });
    }
    out.sort_unstable_by_key(|t| t.trace_id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn stage_discriminants_roundtrip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_u8(s as u8), Some(s));
        }
        assert_eq!(Stage::from_u8(10), None);
        assert_eq!(Stage::from_u8(255), None);
    }

    #[test]
    fn stage_names_are_distinct() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for s in Stage::ALL {
            for dur in [0u64, 1, 12_345, STAGE_DUR_MASK] {
                assert_eq!(unpack_stage(pack_stage(s, dur)), Some((s, dur)));
            }
        }
        // an over-range duration is truncated, not spilled into the stage byte
        let p = pack_stage(Stage::Wire, u64::MAX);
        assert_eq!(unpack_stage(p), Some((Stage::Wire, STAGE_DUR_MASK)));
        // unknown stage byte rejected
        assert_eq!(unpack_stage(0xFFu64 << 56), None);
    }

    #[test]
    fn span_accumulates_and_commits_once() {
        let tele = crate::Telemetry::with_capacity(64);
        let mut span = RequestSpan::new(true);
        span.add(Stage::ClientMarshal, 100);
        span.add(Stage::ClientMarshal, 50);
        assert_eq!(span.get(Stage::ClientMarshal), 150);
        assert!(span.is_marked(Stage::ClientMarshal));
        assert!(!span.is_marked(Stage::Wire));
        span.commit(&tele, 7, 42);
        span.commit(&tele, 7, 42); // second commit is a no-op
        let events = tele.recorder().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Stage);
        assert_eq!(events[0].trace_id, 42);
        assert_eq!(
            unpack_stage(events[0].payload),
            Some((Stage::ClientMarshal, 150))
        );
        let snap = tele.metrics().snapshot();
        assert_eq!(snap.stage_ns.get(Stage::ClientMarshal).count, 1);
        assert_eq!(snap.stage_ns.get(Stage::ClientMarshal).sum, 150);
    }

    #[test]
    fn disabled_span_is_inert() {
        let tele = crate::Telemetry::with_capacity(64);
        let mut span = RequestSpan::disabled();
        assert!(span.begin().is_none());
        span.add(Stage::ClientMarshal, 100);
        span.commit(&tele, 1, 2);
        assert_eq!(tele.recorder().recorded(), 0);
    }

    #[test]
    fn begin_end_measures_something() {
        let mut span = RequestSpan::new(true);
        let t0 = span.begin();
        assert!(t0.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.end(Stage::ServerDispatch, t0);
        assert!(span.get(Stage::ServerDispatch) >= 1_000_000);
    }

    #[test]
    fn timelines_join_on_trace_id() {
        let tele = crate::Telemetry::with_capacity(64);
        // request 42: client legs on conn 1, server legs on conn 2
        tele.record_stage(Stage::ClientMarshal, 1, 42, 10);
        tele.record_stage(Stage::ClientSend, 1, 42, 5);
        tele.record_stage(Stage::Wire, 2, 42, 30);
        tele.record_stage(Stage::ServerDispatch, 2, 42, 20);
        // request 43: one leg; untraced stage events are ignored
        tele.record_stage(Stage::ClientMarshal, 1, 43, 7);
        tele.record_stage(Stage::ClientMarshal, 1, 0, 99);
        let tl = span_timelines(&tele.recorder().events());
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].trace_id, 42);
        assert_eq!(tl[0].stage_count(), 4);
        assert_eq!(tl[0].get(Stage::Wire).unwrap().dur_ns, 30);
        assert_eq!(tl[0].get(Stage::Wire).unwrap().conn_id, 2);
        // critical path excludes ClientSend (sub-interval of Wire)
        assert_eq!(tl[0].critical_path_ns(), 10 + 30 + 20);
        assert_eq!(tl[1].trace_id, 43);
        assert_eq!(tl[1].stage_count(), 1);
    }
}
