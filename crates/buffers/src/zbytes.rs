//! `ZcBytes` — reference-counted, sliceable, immutable views of aligned
//! payload buffers. The in-memory representation of `sequence<ZC_Octet>`.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

use crate::aligned::{AlignedBuf, PAGE_SIZE};
use crate::meter::{CopyLayer, CopyMeter};
use crate::pool::PoolInner;

/// Shared storage behind one or more `ZcBytes` views.
///
/// When the storage originated in a [`crate::PagePool`], the final drop
/// returns the underlying pages to the pool instead of freeing them — the
/// "buffers under user/ORB control" principle of §3.2.
pub(crate) struct Storage {
    pub(crate) buf: Option<AlignedBuf>,
    pub(crate) pool: Option<Arc<PoolInner>>,
}

impl Storage {
    fn buf(&self) -> &AlignedBuf {
        self.buf
            .as_ref()
            .expect("storage buffer present until drop")
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let (Some(pool), Some(buf)) = (self.pool.take(), self.buf.take()) {
            pool.release(buf);
        }
    }
}

/// An immutable, cheaply clonable view over page-aligned payload bytes.
///
/// Cloning and slicing are O(1) and never touch the payload: this is what
/// the ORB layers pass around instead of copying. Equality compares
/// *contents* (for tests); use [`ZcBytes::ptr_eq`] to check whether two views
/// share storage (the zero-copy property itself).
#[derive(Clone)]
pub struct ZcBytes {
    storage: Arc<Storage>,
    off: usize,
    len: usize,
}

impl ZcBytes {
    /// Wrap an owned aligned buffer (no copy).
    pub fn from_aligned(buf: AlignedBuf) -> ZcBytes {
        let len = buf.len();
        ZcBytes {
            storage: Arc::new(Storage {
                buf: Some(buf),
                pool: None,
            }),
            off: 0,
            len,
        }
    }

    pub(crate) fn from_storage(storage: Storage, len: usize) -> ZcBytes {
        ZcBytes {
            storage: Arc::new(storage),
            off: 0,
            len,
        }
    }

    /// A zero-length view (still backed by one page so the address is valid).
    pub fn empty() -> ZcBytes {
        ZcBytes::from_aligned(AlignedBuf::with_capacity(0))
    }

    /// Zero-filled payload of `len` bytes.
    pub fn zeroed(len: usize) -> ZcBytes {
        ZcBytes::from_aligned(AlignedBuf::zeroed(len))
    }

    /// Build by copying `src` into a fresh aligned buffer, metering the copy
    /// at `layer`. This is the *entry point* of payload into the zero-copy
    /// world — after this single touch the bytes are never copied again on a
    /// deposit path.
    pub fn copy_from_slice(src: &[u8], meter: &CopyMeter, layer: CopyLayer) -> ZcBytes {
        let mut buf = AlignedBuf::with_capacity(src.len());
        buf.set_len(src.len());
        meter.copy(layer, buf.as_mut_slice(), src);
        ZcBytes::from_aligned(buf)
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes of this view.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        let buf = self.storage.buf();
        // `off + len` was validated at construction against the then-current
        // buffer length, and storage is immutable afterwards.
        &buf.as_slice()[self.off..self.off + self.len]
    }

    /// O(1) sub-view. Accepts any range form (`a..b`, `..b`, `a..`, `..`).
    ///
    /// # Panics
    /// If the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> ZcBytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {}..{} out of bounds for ZcBytes of length {}",
            start,
            end,
            self.len
        );
        ZcBytes {
            storage: Arc::clone(&self.storage),
            off: self.off + start,
            len: end - start,
        }
    }

    /// O(1) split into `[0, mid)` and `[mid, len)`.
    pub fn split_at(&self, mid: usize) -> (ZcBytes, ZcBytes) {
        (self.slice(..mid), self.slice(mid..))
    }

    /// Iterate over consecutive sub-views of at most `chunk` bytes each,
    /// without copying. This is how the simulated NIC fragments a payload
    /// into MTU-sized frames on the zero-copy path.
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = ZcBytes> + '_ {
        assert!(chunk > 0, "chunk size must be positive");
        (0..self.len)
            .step_by(chunk)
            .map(move |start| self.slice(start..(start + chunk).min(self.len)))
    }

    /// Whether the view *starts* on a page boundary. Deposit receivers
    /// require this; the ablation A2 deliberately violates it.
    pub fn is_page_aligned(&self) -> bool {
        (self.storage.buf().as_ptr() as usize + self.off).is_multiple_of(PAGE_SIZE)
    }

    /// Whether two views share the same underlying storage — i.e. whether a
    /// transfer really was zero-copy.
    pub fn ptr_eq(&self, other: &ZcBytes) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// Address of the first byte (for diagnostics / alignment assertions).
    pub fn start_addr(&self) -> usize {
        self.storage.buf().as_ptr() as usize + self.off
    }

    /// Number of outstanding views sharing this storage.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.storage)
    }

    /// Rejoin consecutive sub-views into one spanning view **without
    /// copying**, if and only if they share one storage and are exactly
    /// adjacent in order. Returns `None` otherwise.
    ///
    /// This is the receive-side primitive behind speculative
    /// defragmentation: when every fragment of a block landed in place
    /// (same pages, right offsets), the reassembled block *is* the original
    /// memory and no byte needs to move.
    pub fn join_contiguous(parts: &[ZcBytes]) -> Option<ZcBytes> {
        let first = parts.first()?;
        let mut expected_off = first.off;
        let mut total = 0usize;
        for p in parts {
            if !Arc::ptr_eq(&p.storage, &first.storage) || p.off != expected_off {
                return None;
            }
            expected_off += p.len;
            total += p.len;
        }
        Some(ZcBytes {
            storage: Arc::clone(&first.storage),
            off: first.off,
            len: total,
        })
    }
}

impl Deref for ZcBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for ZcBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for ZcBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for ZcBytes {}

impl PartialEq<[u8]> for ZcBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for ZcBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for ZcBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ZcBytes{{len: {}, off: {}, aligned: {}, refs: {}}}",
            self.len,
            self.off,
            self.is_page_aligned(),
            self.ref_count()
        )
    }
}

impl From<AlignedBuf> for ZcBytes {
    fn from(buf: AlignedBuf) -> Self {
        ZcBytes::from_aligned(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> ZcBytes {
        let mut b = AlignedBuf::with_capacity(n);
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        b.extend_from_slice(&data);
        ZcBytes::from_aligned(b)
    }

    #[test]
    fn clone_shares_storage() {
        let z = sample(1000);
        let c = z.clone();
        assert!(z.ptr_eq(&c));
        assert_eq!(z, c);
        assert_eq!(z.ref_count(), 2);
    }

    #[test]
    fn slice_is_zero_copy_and_correct() {
        let z = sample(10_000);
        let s = z.slice(100..200);
        assert!(s.ptr_eq(&z));
        assert_eq!(s.as_slice(), &z.as_slice()[100..200]);
        let s2 = s.slice(..10);
        assert_eq!(s2.as_slice(), &z.as_slice()[100..110]);
    }

    #[test]
    fn slice_forms() {
        let z = sample(100);
        assert_eq!(z.slice(..).len(), 100);
        assert_eq!(z.slice(10..).len(), 90);
        assert_eq!(z.slice(..10).len(), 10);
        assert_eq!(z.slice(10..=19).len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        sample(10).slice(5..20);
    }

    #[test]
    fn split_at_partitions() {
        let z = sample(4096 * 2 + 7);
        let (a, b) = z.split_at(4096);
        assert_eq!(a.len(), 4096);
        assert_eq!(b.len(), 4096 + 7);
        let mut joined = a.as_slice().to_vec();
        joined.extend_from_slice(b.as_slice());
        assert_eq!(&joined[..], z.as_slice());
    }

    #[test]
    fn chunks_cover_exactly() {
        let z = sample(4096 * 3 + 100);
        let chunks: Vec<ZcBytes> = z.chunks(1460).collect();
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, z.len());
        assert!(chunks.iter().all(|c| c.len() <= 1460));
        assert!(chunks.iter().all(|c| c.ptr_eq(&z)));
        let mut joined = Vec::new();
        for c in &chunks {
            joined.extend_from_slice(c);
        }
        assert_eq!(&joined[..], z.as_slice());
    }

    #[test]
    fn chunks_of_empty_is_empty() {
        let z = ZcBytes::empty();
        assert_eq!(z.chunks(100).count(), 0);
    }

    #[test]
    fn alignment_of_page_slices() {
        let z = sample(PAGE_SIZE * 4);
        assert!(z.is_page_aligned());
        assert!(z.slice(PAGE_SIZE..).is_page_aligned());
        assert!(!z.slice(1..).is_page_aligned());
    }

    #[test]
    fn copy_from_slice_meters() {
        let m = CopyMeter::default();
        let data = vec![42u8; 5000];
        let z = ZcBytes::copy_from_slice(&data, &m, CopyLayer::AppFill);
        assert_eq!(z.as_slice(), &data[..]);
        assert_eq!(m.bytes(CopyLayer::AppFill), 5000);
        assert!(z.is_page_aligned());
    }

    #[test]
    fn zeroed_and_empty() {
        let z = ZcBytes::zeroed(1234);
        assert_eq!(z.len(), 1234);
        assert!(z.iter().all(|&b| b == 0));
        assert!(ZcBytes::empty().is_empty());
    }

    #[test]
    fn join_contiguous_recovers_whole() {
        let z = sample(PAGE_SIZE * 3 + 17);
        let parts: Vec<ZcBytes> = z.chunks(PAGE_SIZE).collect();
        let joined = ZcBytes::join_contiguous(&parts).expect("contiguous");
        assert!(joined.ptr_eq(&z));
        assert_eq!(joined, z);
    }

    #[test]
    fn join_rejects_gap_and_reorder_and_foreign() {
        let z = sample(PAGE_SIZE * 2);
        let a = z.slice(..100);
        let b = z.slice(100..200);
        let c = z.slice(300..400); // gap
        assert!(ZcBytes::join_contiguous(&[a.clone(), b.clone()]).is_some());
        assert!(ZcBytes::join_contiguous(&[a.clone(), c]).is_none());
        assert!(ZcBytes::join_contiguous(&[b.clone(), a.clone()]).is_none());
        let other = sample(PAGE_SIZE);
        assert!(ZcBytes::join_contiguous(&[a, other.slice(100..200)]).is_none());
        assert!(ZcBytes::join_contiguous(&[]).is_none());
    }

    #[test]
    fn content_equality_across_storages() {
        let a = sample(64);
        let b = sample(64);
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
    }
}
