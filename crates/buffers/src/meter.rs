//! The copy meter — accounting for every byte copied on the data path.
//!
//! The paper instruments the MICO ORB to show that "the highest cost incurs
//! due to data copying and data inspection" (§5.2). We make that
//! instrumentation a first-class citizen: each layer of our stack performs
//! payload copies through [`CopyMeter::copy`], so a test or a benchmark can
//! take a [`CopySnapshot`] before and after a transfer and obtain the exact
//! number of copy events and bytes per layer.
//!
//! This is how the repository *proves* the zero-copy regime instead of
//! merely claiming it: the integration tests assert that a direct-deposit
//! transfer records **zero** payload bytes in the marshal, socket and kernel
//! layers, while the conventional path records one full payload copy at each.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The layers of the data path at which a byte can be touched.
///
/// They mirror Figure 1 of the paper (application / middleware / OS
/// communication service / driver) plus the marshaling step that is specific
/// to the ORB presentation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CopyLayer {
    /// The application producing or consuming payload (e.g. TTCP filling its
    /// source buffer). Not part of the middleware overhead but metered so
    /// experiments can separate "necessary first touch" from overhead.
    AppFill = 0,
    /// ORB marshaling: stub-side copy of parameters into the GIOP request
    /// buffer (the `memcpy` loop in MICO's `TCSeqOctet::marshal`).
    Marshal = 1,
    /// ORB demarshaling: server-side copy out of the received GIOP buffer.
    Demarshal = 2,
    /// `write()` across the user/kernel boundary into the socket page pool.
    SocketSend = 3,
    /// `read()` out of the kernel into user space.
    SocketRecv = 4,
    /// Driver-side fragmentation of large blocks into MTU frames
    /// (header insertion forces a copy on commodity GbE, per §1.1).
    KernelFrag = 5,
    /// Receive-side defragmentation / reassembly copy.
    KernelDefrag = 6,
    /// Copies performed when the speculative zero-copy receive path *misses*
    /// and falls back to the conventional path (probabilistic, per [10]).
    DepositFallback = 7,
}

impl CopyLayer {
    /// All layers, in data-path order.
    pub const ALL: [CopyLayer; 8] = [
        CopyLayer::AppFill,
        CopyLayer::Marshal,
        CopyLayer::Demarshal,
        CopyLayer::SocketSend,
        CopyLayer::SocketRecv,
        CopyLayer::KernelFrag,
        CopyLayer::KernelDefrag,
        CopyLayer::DepositFallback,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CopyLayer::AppFill => "app-fill",
            CopyLayer::Marshal => "marshal",
            CopyLayer::Demarshal => "demarshal",
            CopyLayer::SocketSend => "socket-send",
            CopyLayer::SocketRecv => "socket-recv",
            CopyLayer::KernelFrag => "kernel-frag",
            CopyLayer::KernelDefrag => "kernel-defrag",
            CopyLayer::DepositFallback => "deposit-fallback",
        }
    }

    /// Layers that constitute *middleware + OS overhead* (everything except
    /// the application's own first touch of its data).
    pub fn overhead_layers() -> impl Iterator<Item = CopyLayer> {
        CopyLayer::ALL
            .into_iter()
            .filter(|l| !matches!(l, CopyLayer::AppFill))
    }
}

const NUM_LAYERS: usize = 8;

#[derive(Default)]
struct LayerCell {
    bytes: AtomicU64,
    events: AtomicU64,
}

/// Shared, thread-safe copy accounting.
///
/// One meter is typically owned per ORB (client and server side share it in
/// in-process tests so a single snapshot covers the whole path). All methods
/// use relaxed atomics: counters are monotonic statistics, not
/// synchronization.
#[derive(Default)]
pub struct CopyMeter {
    layers: [LayerCell; NUM_LAYERS],
}

impl CopyMeter {
    /// Create a fresh meter wrapped for sharing.
    pub fn new_shared() -> Arc<CopyMeter> {
        Arc::new(CopyMeter::default())
    }

    /// Record that `bytes` were copied at `layer` without performing the
    /// copy here (used where the copy is done by e.g. `TcpStream::write`).
    #[inline]
    pub fn record(&self, layer: CopyLayer, bytes: usize) {
        let cell = &self.layers[layer as usize];
        cell.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        cell.events.fetch_add(1, Ordering::Relaxed);
    }

    /// Perform a metered copy `dst[..] = src[..]`.
    ///
    /// # Panics
    /// If the slices differ in length — a metered copy is always exact.
    #[inline]
    pub fn copy(&self, layer: CopyLayer, dst: &mut [u8], src: &[u8]) {
        assert_eq!(
            dst.len(),
            src.len(),
            "metered copy length mismatch at {}",
            layer.name()
        );
        dst.copy_from_slice(src);
        self.record(layer, src.len());
    }

    /// Bytes recorded so far at `layer`.
    #[inline]
    pub fn bytes(&self, layer: CopyLayer) -> u64 {
        self.layers[layer as usize].bytes.load(Ordering::Relaxed)
    }

    /// Copy events recorded so far at `layer`.
    #[inline]
    pub fn events(&self, layer: CopyLayer) -> u64 {
        self.layers[layer as usize].events.load(Ordering::Relaxed)
    }

    /// Capture the current counters.
    pub fn snapshot(&self) -> CopySnapshot {
        let mut s = CopySnapshot::default();
        for layer in CopyLayer::ALL {
            s.bytes[layer as usize] = self.bytes(layer);
            s.events[layer as usize] = self.events(layer);
        }
        s
    }
}

impl fmt::Debug for CopyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CopyMeter{:?}", self.snapshot())
    }
}

/// A point-in-time capture of all counters; subtract two snapshots to get
/// the copies attributable to a region of interest.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CopySnapshot {
    bytes: [u64; NUM_LAYERS],
    events: [u64; NUM_LAYERS],
}

impl CopySnapshot {
    /// Bytes at `layer` in this snapshot.
    pub fn bytes(&self, layer: CopyLayer) -> u64 {
        self.bytes[layer as usize]
    }

    /// Events at `layer` in this snapshot.
    pub fn events(&self, layer: CopyLayer) -> u64 {
        self.events[layer as usize]
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &CopySnapshot) -> CopySnapshot {
        let mut d = CopySnapshot::default();
        for i in 0..NUM_LAYERS {
            d.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
            d.events[i] = self.events[i].saturating_sub(earlier.events[i]);
        }
        d
    }

    /// Total bytes copied across all *overhead* layers (everything but the
    /// application's own fill). This is the quantity a strict zero-copy
    /// regime drives to zero.
    pub fn overhead_bytes(&self) -> u64 {
        CopyLayer::overhead_layers().map(|l| self.bytes(l)).sum()
    }

    /// Total bytes including the application fill.
    pub fn total_bytes(&self) -> u64 {
        CopyLayer::ALL.iter().map(|&l| self.bytes(l)).sum()
    }

    /// Render a small table, one line per non-zero layer.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for layer in CopyLayer::ALL {
            let b = self.bytes(layer);
            let e = self.events(layer);
            if b != 0 || e != 0 {
                out.push_str(&format!(
                    "{:<18} {:>14} bytes {:>10} events\n",
                    layer.name(),
                    b,
                    e
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no copies recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read() {
        let m = CopyMeter::default();
        m.record(CopyLayer::Marshal, 100);
        m.record(CopyLayer::Marshal, 50);
        m.record(CopyLayer::SocketSend, 7);
        assert_eq!(m.bytes(CopyLayer::Marshal), 150);
        assert_eq!(m.events(CopyLayer::Marshal), 2);
        assert_eq!(m.bytes(CopyLayer::SocketSend), 7);
        assert_eq!(m.bytes(CopyLayer::Demarshal), 0);
    }

    #[test]
    fn metered_copy_copies_and_counts() {
        let m = CopyMeter::default();
        let src = [1u8, 2, 3, 4];
        let mut dst = [0u8; 4];
        m.copy(CopyLayer::KernelFrag, &mut dst, &src);
        assert_eq!(dst, src);
        assert_eq!(m.bytes(CopyLayer::KernelFrag), 4);
        assert_eq!(m.events(CopyLayer::KernelFrag), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn metered_copy_length_mismatch_panics() {
        let m = CopyMeter::default();
        let mut dst = [0u8; 3];
        m.copy(CopyLayer::Marshal, &mut dst, &[1, 2]);
    }

    #[test]
    fn snapshot_diff() {
        let m = CopyMeter::default();
        m.record(CopyLayer::Marshal, 10);
        let before = m.snapshot();
        m.record(CopyLayer::Marshal, 5);
        m.record(CopyLayer::AppFill, 1000);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.bytes(CopyLayer::Marshal), 5);
        assert_eq!(delta.events(CopyLayer::Marshal), 1);
        assert_eq!(delta.bytes(CopyLayer::AppFill), 1000);
        assert_eq!(delta.overhead_bytes(), 5);
        assert_eq!(delta.total_bytes(), 1005);
    }

    #[test]
    fn overhead_excludes_app_fill() {
        let m = CopyMeter::default();
        m.record(CopyLayer::AppFill, 999);
        let s = m.snapshot();
        assert_eq!(s.overhead_bytes(), 0);
        assert_eq!(s.total_bytes(), 999);
    }

    #[test]
    fn concurrent_recording_is_sound() {
        let m = CopyMeter::new_shared();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(CopyLayer::SocketRecv, 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.bytes(CopyLayer::SocketRecv), 8 * 1000 * 3);
        assert_eq!(m.events(CopyLayer::SocketRecv), 8 * 1000);
    }

    #[test]
    fn report_lists_only_nonzero() {
        let m = CopyMeter::default();
        m.record(CopyLayer::Demarshal, 42);
        let rep = m.snapshot().report();
        assert!(rep.starts_with("demarshal"));
        assert_eq!(rep.lines().count(), 1, "only the non-zero layer is listed");
    }
}
