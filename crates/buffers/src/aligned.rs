//! Owned page-aligned heap allocations.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::fmt;
use std::ptr::NonNull;

/// The page size assumed throughout the system.
///
/// The paper's zero-copy socket layer provides its optimization "for transfer
/// sizes starting at 4 KByte pages only"; all deposit buffers are 4 KiB
/// aligned and sized in 4 KiB increments.
pub const PAGE_SIZE: usize = 4096;

/// An owned, heap-allocated byte buffer whose start address is page aligned
/// and whose capacity is a whole number of pages.
///
/// `AlignedBuf` is the only place in the workspace that performs raw
/// allocation; every zero-copy payload ultimately lives in one. The buffer is
/// allocated zeroed so that freshly acquired deposit targets never leak prior
/// contents across (simulated) protection domains.
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    /// Capacity in bytes; always a non-zero multiple of [`PAGE_SIZE`].
    cap: usize,
    /// Number of initialized/meaningful bytes, `<= cap`.
    len: usize,
}

// SAFETY: the buffer uniquely owns its allocation; access is gated through
// `&self`/`&mut self` like a `Vec<u8>`.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate a zeroed buffer with capacity for at least `min_capacity`
    /// bytes (rounded up to whole pages). The logical length starts at 0.
    pub fn with_capacity(min_capacity: usize) -> Self {
        let cap = crate::round_up_to_page(min_capacity);
        let layout = Layout::from_size_align(cap, PAGE_SIZE)
            .expect("page-aligned layout for a page-rounded capacity is always valid");
        // SAFETY: layout has non-zero size (round_up_to_page(0) == PAGE_SIZE).
        let raw = unsafe { alloc_zeroed(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        AlignedBuf { ptr, cap, len: 0 }
    }

    /// Allocate a buffer of logical length `len`, zero-filled.
    pub fn zeroed(len: usize) -> Self {
        let mut b = Self::with_capacity(len);
        b.len = len;
        b
    }

    /// Allocate and fill from `src` (this *is* a copy and the caller is
    /// expected to meter it; see [`crate::CopyMeter`]).
    pub fn from_slice(src: &[u8]) -> Self {
        let mut b = Self::with_capacity(src.len());
        // zc-audit: allow(copy) — single fill into fresh aligned storage; callers meter it (AppFill or Demarshal)
        b.extend_from_slice(src);
        b
    }

    /// Capacity in bytes (a multiple of the page size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Logical length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the logical length. Bytes up to `capacity()` are always
    /// initialized (allocation is zeroed and writes only grow `len`), so any
    /// `new_len <= capacity()` is safe.
    ///
    /// # Panics
    /// If `new_len > capacity()`.
    #[inline]
    pub fn set_len(&mut self, new_len: usize) {
        assert!(
            new_len <= self.cap,
            "set_len {} exceeds capacity {}",
            new_len,
            self.cap
        );
        self.len = new_len;
    }

    /// The start address of the buffer; guaranteed page aligned.
    #[inline]
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr.as_ptr()
    }

    /// View the initialized prefix.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `len <= cap`, allocation is zero-initialized.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the initialized prefix.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above, plus `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the *whole* capacity (zero-initialized tail included).
    /// Used by receive paths that fill a buffer before setting its length.
    #[inline]
    pub fn spare_capacity_mut(&mut self) -> &mut [u8] {
        // SAFETY: whole capacity is initialized (zeroed at allocation).
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.cap) }
    }

    /// Append bytes, growing the logical length.
    ///
    /// # Panics
    /// If the result would exceed `capacity()`. Aligned buffers never
    /// reallocate — that would invalidate deposited page addresses.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        let new_len = self.len + src.len();
        assert!(
            new_len <= self.cap,
            "extend_from_slice overflows capacity ({} + {} > {})",
            self.len,
            src.len(),
            self.cap
        );
        // SAFETY: range `[len, new_len)` is within the allocation.
        unsafe {
            // zc-audit: allow(copy) — the raw fill primitive; every caller meters at its own layer (AppFill, Marshal or Demarshal)
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.as_ptr().add(self.len), src.len());
        }
        self.len = new_len;
    }

    /// Reset logical length to zero (contents retained; a recycled buffer is
    /// *not* re-zeroed, matching real page-pool behaviour — callers that need
    /// secrecy must clear explicitly).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// True if the start address is page aligned (always true by
    /// construction; exposed for assertions and tests).
    #[inline]
    pub fn is_page_aligned(&self) -> bool {
        (self.ptr.as_ptr() as usize).is_multiple_of(PAGE_SIZE)
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.cap, PAGE_SIZE).expect("valid layout");
        // SAFETY: allocated with the identical layout in `with_capacity`.
        unsafe { dealloc(self.ptr.as_ptr(), layout) }
    }
}

impl fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("ptr", &self.ptr.as_ptr())
            .field("cap", &self.cap)
            .field("len", &self.len)
            .finish()
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl Clone for AlignedBuf {
    /// Deep copy. Deliberately explicit: cloning payload buffers is exactly
    /// what the zero-copy regime avoids, so hot paths never call this.
    fn clone(&self) -> Self {
        let mut b = Self::with_capacity(self.cap);
        // zc-audit: allow(copy) — deliberate cold-path deep copy, never on the deposit path; metered uses record AppFill
        b.extend_from_slice(self.as_slice());
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_rounding() {
        for req in [0usize, 1, 100, 4096, 4097, 65536] {
            let b = AlignedBuf::with_capacity(req);
            assert!(b.is_page_aligned());
            assert_eq!(b.capacity() % PAGE_SIZE, 0);
            assert!(b.capacity() >= req.max(1));
            assert_eq!(b.len(), 0);
        }
    }

    #[test]
    fn zeroed_contents() {
        let b = AlignedBuf::zeroed(10_000);
        assert_eq!(b.len(), 10_000);
        assert!(b.as_slice().iter().all(|&x| x == 0));
    }

    #[test]
    fn extend_and_read_back() {
        let mut b = AlignedBuf::with_capacity(8192);
        b.extend_from_slice(&[1, 2, 3]);
        b.extend_from_slice(&[4, 5]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "overflows capacity")]
    fn extend_overflow_panics() {
        let mut b = AlignedBuf::with_capacity(PAGE_SIZE);
        b.extend_from_slice(&vec![0u8; PAGE_SIZE + 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn set_len_overflow_panics() {
        let mut b = AlignedBuf::with_capacity(PAGE_SIZE);
        b.set_len(PAGE_SIZE + 1);
    }

    #[test]
    fn from_slice_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        let b = AlignedBuf::from_slice(&data);
        assert_eq!(b.as_slice(), &data[..]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = AlignedBuf::from_slice(&[9; 100]);
        let cap = b.capacity();
        b.clear();
        assert_eq!(b.len(), 0);
        assert_eq!(b.capacity(), cap);
    }

    #[test]
    fn deep_clone_is_independent() {
        let mut a = AlignedBuf::from_slice(&[1, 2, 3]);
        let c = a.clone();
        a.as_mut_slice()[0] = 99;
        assert_eq!(c.as_slice(), &[1, 2, 3]);
        assert_ne!(a.as_ptr(), c.as_ptr());
    }

    #[test]
    fn spare_capacity_write_then_set_len() {
        let mut b = AlignedBuf::with_capacity(PAGE_SIZE);
        b.spare_capacity_mut()[..4].copy_from_slice(&[7, 8, 9, 10]);
        b.set_len(4);
        assert_eq!(b.as_slice(), &[7, 8, 9, 10]);
    }
}
