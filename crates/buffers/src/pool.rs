//! A recycling pool of page-aligned buffers.
//!
//! §3.2 of the paper: *"the best option to allocate and manage the buffers is
//! by the application or the stub and skeleton code"* — i.e. buffer
//! management is delegated away from the kernel/middleware hot path. The
//! deposit receiver allocates an appropriately sized, page-aligned buffer per
//! request; recycling those buffers through a pool removes allocation cost
//! from the steady state (the paper notes memory allocation is a minor but
//! real overhead source).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::aligned::{AlignedBuf, PAGE_SIZE};
use crate::zbytes::{Storage, ZcBytes};

/// Pool statistics (monotonic counters plus a point-in-time gauge).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out that had to be freshly allocated.
    pub fresh_allocations: u64,
    /// Buffers handed out from the free list (recycled).
    pub reuses: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
    /// Buffers dropped instead of retained (free list full).
    pub discards: u64,
    /// Bytes currently retained on free lists.
    pub retained_bytes: u64,
}

pub(crate) struct PoolInner {
    /// Free lists keyed by capacity (each a multiple of the page size).
    free: Mutex<BTreeMap<usize, Vec<AlignedBuf>>>,
    /// Maximum bytes kept on free lists before returns are discarded.
    max_retained_bytes: usize,
    fresh: AtomicU64,
    reuses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
    retained: AtomicU64,
}

impl PoolInner {
    pub(crate) fn release(&self, mut buf: AlignedBuf) {
        buf.clear();
        let cap = buf.capacity();
        let retained = self.retained.load(Ordering::Relaxed) as usize;
        if retained + cap > self.max_retained_bytes {
            self.discards.fetch_add(1, Ordering::Relaxed);
            return; // drop the buffer, freeing its pages
        }
        self.retained.fetch_add(cap as u64, Ordering::Relaxed);
        self.returns.fetch_add(1, Ordering::Relaxed);
        self.free.lock().entry(cap).or_default().push(buf);
    }

    fn acquire(&self, min_capacity: usize) -> AlignedBuf {
        let want = size_class(min_capacity);
        {
            let mut free = self.free.lock();
            // Exact class first, then any class that fits (BTreeMap range).
            let key = free
                .range(want..)
                .find(|(_, v)| !v.is_empty())
                .map(|(&k, _)| k);
            if let Some(k) = key {
                let list = free.get_mut(&k).expect("key just observed");
                let buf = list.pop().expect("non-empty just observed");
                if list.is_empty() {
                    free.remove(&k);
                }
                self.retained
                    .fetch_sub(buf.capacity() as u64, Ordering::Relaxed);
                self.reuses.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        AlignedBuf::with_capacity(want)
    }
}

/// Compute the capacity class for a request: whole pages, rounded up to a
/// power-of-two number of pages so that few classes serve many sizes.
fn size_class(min_capacity: usize) -> usize {
    let pages = crate::round_up_to_page(min_capacity) / PAGE_SIZE;
    pages.next_power_of_two() * PAGE_SIZE
}

/// A thread-safe recycling pool of [`AlignedBuf`]s.
#[derive(Clone)]
pub struct PagePool {
    inner: Arc<PoolInner>,
}

impl PagePool {
    /// Create a pool that retains at most `max_retained_bytes` on its free
    /// lists (beyond that, returned buffers are freed immediately).
    pub fn new(max_retained_bytes: usize) -> PagePool {
        PagePool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(BTreeMap::new()),
                max_retained_bytes,
                fresh: AtomicU64::new(0),
                reuses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                discards: AtomicU64::new(0),
                retained: AtomicU64::new(0),
            }),
        }
    }

    /// A pool sized for typical ORB use (64 MiB retained).
    pub fn default_for_orb() -> PagePool {
        PagePool::new(64 << 20)
    }

    /// Acquire a buffer with at least `min_capacity` bytes of capacity.
    /// Returns to the pool automatically on drop (or on the last drop of a
    /// [`ZcBytes`] frozen from it).
    pub fn acquire(&self, min_capacity: usize) -> PooledBuf {
        let buf = self.inner.acquire(min_capacity);
        PooledBuf {
            buf: Some(buf),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh_allocations: self.inner.fresh.load(Ordering::Relaxed),
            reuses: self.inner.reuses.load(Ordering::Relaxed),
            returns: self.inner.returns.load(Ordering::Relaxed),
            discards: self.inner.discards.load(Ordering::Relaxed),
            retained_bytes: self.inner.retained.load(Ordering::Relaxed),
        }
    }
}

impl Default for PagePool {
    fn default() -> Self {
        PagePool::default_for_orb()
    }
}

impl std::fmt::Debug for PagePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PagePool({:?})", self.stats())
    }
}

/// A pooled buffer lease: behaves like an `AlignedBuf` and returns its pages
/// to the pool on drop. Freeze into [`ZcBytes`] with [`PooledBuf::freeze`]
/// to share it immutably while preserving pool return on the final drop.
pub struct PooledBuf {
    buf: Option<AlignedBuf>,
    pool: Arc<PoolInner>,
}

impl PooledBuf {
    /// Convert into an immutable shared view. O(1); the pages return to the
    /// pool when the last `ZcBytes` clone is dropped.
    pub fn freeze(mut self) -> ZcBytes {
        let buf = self.buf.take().expect("buffer present until freeze/drop");
        let len = buf.len();
        ZcBytes::from_storage(
            Storage {
                buf: Some(buf),
                pool: Some(Arc::clone(&self.pool)),
            },
            len,
        )
    }

    fn buf(&self) -> &AlignedBuf {
        self.buf.as_ref().expect("buffer present")
    }

    fn buf_mut(&mut self) -> &mut AlignedBuf {
        self.buf.as_mut().expect("buffer present")
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = AlignedBuf;
    fn deref(&self) -> &AlignedBuf {
        self.buf()
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut AlignedBuf {
        self.buf_mut()
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.release(buf);
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({:?})", self.buf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_are_pow2_pages() {
        assert_eq!(size_class(1), PAGE_SIZE);
        assert_eq!(size_class(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(size_class(PAGE_SIZE + 1), 2 * PAGE_SIZE);
        assert_eq!(size_class(3 * PAGE_SIZE), 4 * PAGE_SIZE);
        assert_eq!(size_class(5 * PAGE_SIZE), 8 * PAGE_SIZE);
    }

    #[test]
    fn acquire_release_recycles() {
        let pool = PagePool::new(1 << 20);
        let addr;
        {
            let b = pool.acquire(10_000);
            addr = b.as_ptr() as usize;
        } // returned
        let b2 = pool.acquire(10_000);
        assert_eq!(b2.as_ptr() as usize, addr, "buffer should be recycled");
        let s = pool.stats();
        assert_eq!(s.fresh_allocations, 1);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.returns, 1);
    }

    #[test]
    fn recycled_buffer_is_cleared() {
        let pool = PagePool::new(1 << 20);
        {
            let mut b = pool.acquire(100);
            b.extend_from_slice(&[1, 2, 3]);
        }
        let b = pool.acquire(100);
        assert_eq!(b.len(), 0, "recycled buffer length must be reset");
    }

    #[test]
    fn larger_class_can_serve_smaller_request() {
        let pool = PagePool::new(1 << 20);
        {
            let _big = pool.acquire(8 * PAGE_SIZE);
        }
        let small = pool.acquire(PAGE_SIZE);
        assert!(small.capacity() >= PAGE_SIZE);
        assert_eq!(
            pool.stats().reuses,
            1,
            "8-page buffer should serve a 1-page ask"
        );
    }

    #[test]
    fn retention_limit_discards() {
        let pool = PagePool::new(2 * PAGE_SIZE);
        {
            let _a = pool.acquire(PAGE_SIZE);
            let _b = pool.acquire(PAGE_SIZE);
            let _c = pool.acquire(PAGE_SIZE);
        } // three returns, only two fit under the limit
        let s = pool.stats();
        assert_eq!(s.returns + s.discards, 3);
        assert!(s.discards >= 1);
        assert!(s.retained_bytes <= 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn freeze_returns_to_pool_on_last_drop() {
        let pool = PagePool::new(1 << 20);
        let addr;
        {
            let mut b = pool.acquire(PAGE_SIZE);
            b.extend_from_slice(&[7; 100]);
            addr = b.as_ptr() as usize;
            let z = b.freeze();
            let z2 = z.clone();
            assert_eq!(z2.as_slice(), &[7; 100]);
            assert_eq!(pool.stats().returns, 0, "still referenced");
        }
        assert_eq!(pool.stats().returns, 1, "returned after last view dropped");
        let again = pool.acquire(PAGE_SIZE);
        assert_eq!(again.as_ptr() as usize, addr);
    }

    #[test]
    fn frozen_view_survives_pool_drop() {
        // The pool handle may be dropped while views are alive; pages must
        // stay valid because PoolInner is kept alive by the Storage Arc.
        let z;
        {
            let pool = PagePool::new(1 << 20);
            let mut b = pool.acquire(PAGE_SIZE);
            b.extend_from_slice(&[5; 10]);
            z = b.freeze();
        }
        assert_eq!(z.as_slice(), &[5; 10]);
    }

    #[test]
    fn concurrent_acquire_release() {
        let pool = PagePool::new(8 << 20);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let mut b = pool.acquire((i % 5 + 1) * PAGE_SIZE);
                        b.extend_from_slice(&[i as u8; 16]);
                        assert_eq!(&b.as_slice()[..16], &[i as u8; 16]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.returns + s.discards, 8 * 200);
    }

    #[test]
    fn no_aliasing_between_outstanding_buffers() {
        let pool = PagePool::new(1 << 20);
        let a = pool.acquire(PAGE_SIZE);
        let b = pool.acquire(PAGE_SIZE);
        assert_ne!(a.as_ptr(), b.as_ptr());
    }
}
