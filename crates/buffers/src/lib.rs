//! Page-aligned buffer management for the zcorba zero-copy data path.
//!
//! The paper's central claim is that *per-byte* overheads — memory-to-memory
//! copies between layers — dominate the cost of bulk transfers through
//! distributed object middleware. Everything in this crate exists to make
//! copies either unnecessary or visible:
//!
//! * [`AlignedBuf`] — an owned, page-aligned, heap allocation. Page alignment
//!   is the contract that lets the (simulated) zero-copy network stack deposit
//!   payload pages directly into their final destination, exactly as the
//!   speculative-defragmentation driver of the paper requires 4 KiB aligned
//!   application buffers.
//! * [`ZcBytes`] — a cheaply-clonable, sliceable, immutable view over an
//!   `AlignedBuf` (reference counted). This is the representation behind the
//!   `sequence<ZC_Octet>` CORBA type: ORB layers hand it around *by
//!   reference*; cloning or slicing never touches payload bytes.
//! * [`PagePool`] — a recycling pool of aligned buffers, standing in for the
//!   ORB/application controlled buffer management the paper advocates
//!   ("put buffers under user control").
//! * [`CopyMeter`] — the instrument. Every data-path layer that copies bytes
//!   does it through [`CopyMeter::copy`] (or records it explicitly), so tests
//!   can *prove* the zero-copy regime: a deposit-path transfer records zero
//!   payload bytes copied between the application and the wire.
//!
//! The crate is intentionally free of any networking or CORBA knowledge; it
//! is the lowest substrate of the workspace.

// This crate owns every raw allocation on the data path; an `unsafe` block
// inside an `unsafe fn` must still spell out its own proof obligation.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aligned;
pub mod meter;
pub mod pool;
pub mod zbytes;

pub use aligned::{AlignedBuf, PAGE_SIZE};
pub use meter::{CopyLayer, CopyMeter, CopySnapshot};
pub use pool::{PagePool, PoolStats, PooledBuf};
pub use zbytes::ZcBytes;

/// Round `n` up to the next multiple of the page size.
///
/// Used everywhere a payload must be given whole pages (deposit buffers,
/// pool size classes, simulated NIC receive rings).
#[inline]
pub const fn round_up_to_page(n: usize) -> usize {
    let r = n % PAGE_SIZE;
    if r == 0 {
        // An empty buffer still occupies one page so that a deposit target
        // always has a valid aligned address.
        if n == 0 {
            PAGE_SIZE
        } else {
            n
        }
    } else {
        n + (PAGE_SIZE - r)
    }
}

/// Largest upfront reservation honoured for a peer-announced length.
///
/// Wire decoders must not let a 4-byte length field commit the receiver to
/// a large allocation before the bytes actually exist: a truncated or
/// hostile stream would turn every announcement into an OOM lever. 64 KiB
/// covers virtually every control message in one reservation while keeping
/// the worst case per announcement trivial.
pub const MAX_UPFRONT_RESERVATION: usize = 64 * 1024;

/// Capacity to pre-reserve for a length `announced` by an untrusted peer
/// under the protocol cap `cap` (both in the collection's units — bytes
/// for byte buffers, element counts for typed sequences).
///
/// The announcement is clamped to the cap, and the upfront reservation
/// additionally to [`MAX_UPFRONT_RESERVATION`]; growable collections then
/// extend incrementally toward the full (capped) size as bytes actually
/// arrive. A stream that lies about its length can therefore waste at
/// most 64 KiB of allocation, never `cap` bytes.
#[inline]
pub const fn bounded_capacity(announced: u64, cap: u64) -> usize {
    let capped = if announced < cap { announced } else { cap };
    let upfront = MAX_UPFRONT_RESERVATION as u64;
    (if capped < upfront { capped } else { upfront }) as usize
}

/// Number of MTU-or-page sized chunks needed to carry `n` bytes.
#[inline]
pub const fn div_ceil(n: usize, chunk: usize) -> usize {
    if n == 0 {
        0
    } else {
        n.div_ceil(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up_to_page(0), PAGE_SIZE);
        assert_eq!(round_up_to_page(1), PAGE_SIZE);
        assert_eq!(round_up_to_page(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(round_up_to_page(PAGE_SIZE + 1), 2 * PAGE_SIZE);
        assert_eq!(round_up_to_page(3 * PAGE_SIZE), 3 * PAGE_SIZE);
    }

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 1460), 0);
        assert_eq!(div_ceil(1, 1460), 1);
        assert_eq!(div_ceil(1460, 1460), 1);
        assert_eq!(div_ceil(1461, 1460), 2);
        assert_eq!(div_ceil(4096, 4096), 1);
    }
}
