//! Concurrency model tests for the buffer substrate, in loom style.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p zc-buffers --test loom`.
//! The vendored `loom` is a stochastic-interleaving shim (see
//! `vendor/loom`): each `model` closure executes many times on real threads
//! with a seeded, perturbed schedule rather than exhaustive state-space
//! exploration. Failures print a `LOOM_SEED` for deterministic replay. The
//! tests are written against the real loom API so they transfer unchanged
//! if the registry crate becomes available.
//!
//! What is modeled:
//! * **PagePool recycling** — concurrent acquire/release must neither lose
//!   buffers nor double-hand-out pages; counters must balance afterwards.
//! * **ZcBytes refcount/Drop** — clones and slices on racing threads keep
//!   the payload readable, and exactly the last drop returns the pages to
//!   the pool, exactly once.
#![cfg(loom)]

use loom::{explore, thread};
use zc_buffers::{PagePool, ZcBytes};

/// Two threads hammer acquire → fill → drop against one pool. Afterwards
/// every lease must have been returned or discarded (nothing leaks, nothing
/// is handed out twice — a double hand-out would corrupt the fill pattern).
#[test]
fn pool_recycling_under_contention() {
    loom::model(|| {
        let pool = PagePool::new(1 << 20);
        let mut handles = Vec::new();
        for t in 0..2u8 {
            let pool = pool.clone();
            handles.push(thread::spawn(move || {
                for round in 0..2u8 {
                    let mut lease = pool.acquire(4096);
                    explore();
                    let pattern = t.wrapping_mul(31).wrapping_add(round);
                    lease.extend_from_slice(&[pattern; 64]);
                    explore();
                    assert_eq!(lease.as_slice(), &[pattern; 64]);
                    drop(lease);
                    explore();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        // 4 leases were dropped: each return or discard is counted once.
        assert_eq!(s.returns + s.discards, 4, "stats: {s:?}");
        // Everything fit under the retention cap, so nothing was discarded
        // and the free lists hold exactly what came back.
        assert_eq!(s.discards, 0, "stats: {s:?}");
        assert!(s.retained_bytes > 0, "stats: {s:?}");
        // A fresh acquire now must come off the free list.
        let before = pool.stats().reuses;
        let lease = pool.acquire(4096);
        assert_eq!(pool.stats().reuses, before + 1);
        drop(lease);
    });
}

/// One frozen buffer, shared as ZcBytes clones/slices across threads. The
/// payload must stay readable from every view, and the pages must return to
/// the pool exactly once — at the final drop, wherever it happens.
#[test]
fn zbytes_refcount_returns_pages_once() {
    loom::model(|| {
        let pool = PagePool::new(1 << 20);
        let z: ZcBytes = {
            let mut lease = pool.acquire(4096);
            lease.extend_from_slice(&[0xAB; 256]);
            lease.freeze()
        };
        assert_eq!(pool.stats().returns, 0, "alive view must hold the pages");

        let mut handles = Vec::new();
        for t in 0..2usize {
            let view = z.slice(t * 64..(t + 1) * 64);
            handles.push(thread::spawn(move || {
                explore();
                assert_eq!(view.len(), 64);
                assert!(view.as_slice().iter().all(|&b| b == 0xAB));
                let sub = view.slice(8..16);
                explore();
                assert_eq!(sub.as_slice(), &[0xAB; 8]);
                // Views drop here, racing with the other thread and main.
            }));
        }
        explore();
        drop(z);
        for h in handles {
            h.join().unwrap();
        }

        let s = pool.stats();
        assert_eq!(s.returns, 1, "pages must return exactly once: {s:?}");
        assert_eq!(s.discards, 0, "stats: {s:?}");
        // Recycling observable: next acquire reuses the returned buffer.
        let before = s.reuses;
        let lease = pool.acquire(4096);
        assert_eq!(pool.stats().reuses, before + 1);
        drop(lease);
    });
}

/// Clone storms on one ZcBytes: refcounts race up and down while readers
/// validate the bytes; the storage must survive until the last clone dies.
#[test]
fn zbytes_clone_storm() {
    loom::model(|| {
        let pool = PagePool::new(1 << 20);
        let z = {
            let mut lease = pool.acquire(4096);
            lease.extend_from_slice(b"deposit");
            lease.freeze()
        };
        let mut handles = Vec::new();
        for _ in 0..2 {
            let z = z.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..3 {
                    let c = z.clone();
                    explore();
                    assert_eq!(c.as_slice(), b"deposit");
                    drop(c);
                    explore();
                }
            }));
        }
        drop(z);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.stats().returns, 1);
    });
}
