//! Property tests for the buffer substrate: slicing laws, pool soundness,
//! meter arithmetic.

use proptest::prelude::*;

use zc_buffers::{AlignedBuf, CopyLayer, CopyMeter, PagePool, ZcBytes, PAGE_SIZE};

proptest! {
    /// Slicing commutes with slice-of-slice composition.
    #[test]
    fn prop_slice_composition(
        len in 1usize..50_000,
        a in 0usize..50_000,
        b in 0usize..50_000,
        c in 0usize..50_000,
        d in 0usize..50_000,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut buf = AlignedBuf::with_capacity(len);
        buf.extend_from_slice(&data);
        let z = ZcBytes::from_aligned(buf);

        let (a, b) = (a % (len + 1), b % (len + 1));
        let (lo, hi) = (a.min(b), a.max(b));
        let s1 = z.slice(lo..hi);
        prop_assert_eq!(s1.as_slice(), &data[lo..hi]);

        let inner_len = hi - lo;
        let (c, d) = (c % (inner_len + 1), d % (inner_len + 1));
        let (lo2, hi2) = (c.min(d), c.max(d));
        let s2 = s1.slice(lo2..hi2);
        prop_assert_eq!(s2.as_slice(), &data[lo + lo2..lo + hi2]);
        if !s2.is_empty() {
            prop_assert!(s2.ptr_eq(&z));
        }
    }

    /// chunks() of any size covers the view exactly, in order.
    #[test]
    fn prop_chunks_cover(len in 0usize..100_000, chunk in 1usize..10_000) {
        let z = ZcBytes::zeroed(len);
        let parts: Vec<ZcBytes> = z.chunks(chunk).collect();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, len);
        prop_assert!(parts.iter().all(|p| p.len() <= chunk));
        // join recovers the original exactly when non-empty
        if !parts.is_empty() {
            let joined = ZcBytes::join_contiguous(&parts).expect("chunks are contiguous");
            prop_assert!(joined.ptr_eq(&z));
            prop_assert_eq!(joined.len(), len);
        }
    }

    /// Pool leases never alias while outstanding, whatever the size mix.
    #[test]
    fn prop_pool_never_aliases(sizes in proptest::collection::vec(1usize..256 * 1024, 1..20)) {
        let pool = PagePool::new(16 << 20);
        let leases: Vec<_> = sizes.iter().map(|&s| pool.acquire(s)).collect();
        let mut addrs: Vec<usize> = leases.iter().map(|l| l.as_ptr() as usize).collect();
        addrs.sort_unstable();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), leases.len(), "no two live leases share pages");
        for (lease, &want) in leases.iter().zip(&sizes) {
            prop_assert!(lease.capacity() >= want);
            prop_assert!(lease.is_page_aligned());
            prop_assert_eq!(lease.capacity() % PAGE_SIZE, 0);
        }
    }

    /// Pool accounting balances: every acquisition is fresh or reused, and
    /// after dropping everything, returns + discards equal acquisitions.
    #[test]
    fn prop_pool_accounting(rounds in proptest::collection::vec(1usize..64 * 1024, 1..40)) {
        let pool = PagePool::new(4 << 20);
        for &s in &rounds {
            let mut lease = pool.acquire(s);
            let n = s.min(lease.capacity());
            lease.set_len(n);
            drop(lease);
        }
        let st = pool.stats();
        prop_assert_eq!(st.fresh_allocations + st.reuses, rounds.len() as u64);
        prop_assert_eq!(st.returns + st.discards, rounds.len() as u64);
        prop_assert!(st.retained_bytes <= 4 << 20);
    }

    /// Metered copies account exactly the bytes moved.
    #[test]
    fn prop_meter_exact(sizes in proptest::collection::vec(0usize..10_000, 0..20)) {
        let m = CopyMeter::default();
        let mut total = 0u64;
        for &s in &sizes {
            let src = vec![3u8; s];
            let mut dst = vec![0u8; s];
            m.copy(CopyLayer::KernelFrag, &mut dst, &src);
            total += s as u64;
            prop_assert_eq!(dst, src);
        }
        prop_assert_eq!(m.bytes(CopyLayer::KernelFrag), total);
        prop_assert_eq!(m.events(CopyLayer::KernelFrag), sizes.len() as u64);
        prop_assert_eq!(m.snapshot().overhead_bytes(), total);
    }
}
