//! Property tests for the IDL compiler: the parser never panics on
//! arbitrary input, and pretty-printing is a parse fixpoint over randomly
//! generated ASTs.

use proptest::prelude::*;

use zc_idl::ast::{
    pretty, Definition, EnumDef, Interface, Member, Operation, Param, ParamDir, Spec, StructDef,
    Type, Typedef,
};
use zc_idl::{parse, Pos};

fn ident() -> impl Strategy<Value = String> {
    // The `t_` prefix guarantees we never collide with an IDL keyword.
    "[a-z]{1,6}".prop_map(|s| format!("t_{s}"))
}

fn pos() -> impl Strategy<Value = Pos> {
    Just(Pos { line: 1, col: 1 })
}

fn base_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Octet),
        Just(Type::Boolean),
        Just(Type::Char),
        Just(Type::Short),
        Just(Type::UShort),
        Just(Type::Long),
        Just(Type::ULong),
        Just(Type::LongLong),
        Just(Type::ULongLong),
        Just(Type::Float),
        Just(Type::Double),
        Just(Type::String_),
        Just(Type::OctetSeq),
        Just(Type::ZcOctetSeq),
        ident().prop_map(Type::Named),
    ]
}

fn any_type() -> impl Strategy<Value = Type> {
    base_type().prop_recursive(2, 8, 3, |inner| {
        inner.prop_map(|t| match t {
            // the parser canonicalizes these two; avoid generating the
            // non-canonical spellings
            Type::Octet => Type::OctetSeq,
            other => Type::Sequence(Box::new(other)),
        })
    })
}

fn member() -> impl Strategy<Value = Member> {
    (any_type(), ident()).prop_map(|(ty, name)| Member { ty, name })
}

fn unique_names(n: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::hash_set(ident(), 1..=n).prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

fn struct_def() -> impl Strategy<Value = StructDef> {
    (ident(), proptest::collection::vec(member(), 1..5), pos()).prop_map(
        |(name, mut members, pos)| {
            // de-duplicate member names so the printed IDL stays parseable
            // into the identical AST
            for (i, m) in members.iter_mut().enumerate() {
                m.name = format!("{}_{i}", m.name);
            }
            StructDef { name, members, pos }
        },
    )
}

fn enum_def() -> impl Strategy<Value = EnumDef> {
    (ident(), unique_names(5), pos()).prop_map(|(name, variants, pos)| EnumDef {
        name,
        variants,
        pos,
    })
}

fn typedef() -> impl Strategy<Value = Typedef> {
    (ident(), any_type(), pos()).prop_map(|(name, ty, pos)| Typedef { name, ty, pos })
}

fn param() -> impl Strategy<Value = Param> {
    (
        prop_oneof![
            Just(ParamDir::In),
            Just(ParamDir::Out),
            Just(ParamDir::InOut)
        ],
        any_type(),
        ident(),
    )
        .prop_map(|(dir, ty, name)| Param { dir, ty, name })
}

fn operation() -> impl Strategy<Value = Operation> {
    (
        ident(),
        prop_oneof![Just(Type::Void), any_type()],
        proptest::collection::vec(param(), 0..4),
        any::<bool>(),
        pos(),
    )
        .prop_map(|(name, ret, mut params, oneway_wanted, pos)| {
            for (i, p) in params.iter_mut().enumerate() {
                p.name = format!("{}_{i}", p.name);
            }
            // oneway is only legal for void + in-only
            let oneway =
                oneway_wanted && ret == Type::Void && params.iter().all(|p| p.dir == ParamDir::In);
            Operation {
                name,
                ret,
                params,
                oneway,
                raises: vec![],
                pos,
            }
        })
}

fn interface() -> impl Strategy<Value = Interface> {
    (ident(), proptest::collection::vec(operation(), 0..4), pos()).prop_map(
        |(name, mut operations, pos)| {
            for (i, op) in operations.iter_mut().enumerate() {
                op.name = format!("{}_{i}", op.name);
            }
            Interface {
                name,
                operations,
                pos,
            }
        },
    )
}

fn definition() -> impl Strategy<Value = Definition> {
    prop_oneof![
        struct_def().prop_map(Definition::Struct),
        enum_def().prop_map(Definition::Enum),
        typedef().prop_map(Definition::Typedef),
        interface().prop_map(Definition::Interface),
    ]
}

fn spec() -> impl Strategy<Value = Spec> {
    proptest::collection::vec(definition(), 0..5).prop_map(|definitions| Spec { definitions })
}

/// Positions aren't printed, so normalize them before AST comparison.
fn strip_pos(spec: &mut Spec) {
    fn fix(d: &mut Definition) {
        let p = Pos { line: 1, col: 1 };
        match d {
            Definition::Module(m) => {
                m.pos = p;
                m.definitions.iter_mut().for_each(fix);
            }
            Definition::Interface(i) => {
                i.pos = p;
                i.operations.iter_mut().for_each(|o| o.pos = p);
            }
            Definition::Struct(s) => s.pos = p,
            Definition::Enum(e) => e.pos = p,
            Definition::Typedef(t) => t.pos = p,
            Definition::Exception(x) => x.pos = p,
            Definition::Const(c) => c.pos = p,
        }
    }
    spec.definitions.iter_mut().for_each(fix);
}

proptest! {
    /// The parser must never panic, whatever the input.
    #[test]
    fn prop_parser_never_panics(src in "\\PC{0,300}") {
        let _ = parse(&src);
    }

    /// Nor on inputs biased toward IDL-looking fragments.
    #[test]
    fn prop_parser_never_panics_idl_like(
        src in "(module|interface|struct|enum|typedef|sequence|<|>|\\{|\\}|;|,|long|in|out|[a-z]{1,4}| ){0,60}"
    ) {
        let _ = parse(&src);
    }

    /// pretty → parse is the identity on generated ASTs.
    #[test]
    fn prop_pretty_parse_roundtrip(generated in spec()) {
        let printed = pretty(&generated);
        let mut reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed IDL failed to parse: {e}\n{printed}"));
        strip_pos(&mut reparsed);
        let mut expect = generated.clone();
        strip_pos(&mut expect);
        prop_assert_eq!(reparsed, expect);
    }

    /// Valid generated specs also pretty-print to *stable* output
    /// (printing twice yields identical text).
    #[test]
    fn prop_pretty_is_stable(generated in spec()) {
        let once = pretty(&generated);
        if let Ok(reparsed) = parse(&once) {
            prop_assert_eq!(pretty(&reparsed), once);
        }
    }
}
