//! Semantic analysis: name uniqueness, type resolution, cycle detection.
//!
//! The code generator flattens all modules into one Rust namespace (module
//! paths survive only in repository ids), so sema enforces global name
//! uniqueness — the property that makes flattening sound.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::{IdlError, IdlResult, Pos};

/// What a name is defined as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Module,
    Interface,
    Struct,
    Enum,
    Typedef,
    Exception,
    Const,
}

/// Validate a parsed spec. Returns `Ok(())` or the first error found.
pub fn check(spec: &Spec) -> IdlResult<()> {
    let mut table: HashMap<String, (Kind, Pos)> = HashMap::new();
    collect(&spec.definitions, &mut table)?;
    validate(&spec.definitions, &table)?;
    detect_typedef_cycles(&spec.definitions, &table)?;
    Ok(())
}

fn collect(defs: &[Definition], table: &mut HashMap<String, (Kind, Pos)>) -> IdlResult<()> {
    for d in defs {
        let kind = match d {
            Definition::Module(_) => Kind::Module,
            Definition::Interface(_) => Kind::Interface,
            Definition::Struct(_) => Kind::Struct,
            Definition::Enum(_) => Kind::Enum,
            Definition::Typedef(_) => Kind::Typedef,
            Definition::Exception(_) => Kind::Exception,
            Definition::Const(_) => Kind::Const,
        };
        // Modules may repeat (reopening); everything else must be unique.
        if kind != Kind::Module {
            if let Some((_, prev)) = table.insert(d.name().to_string(), (kind, d.pos())) {
                return Err(IdlError::new(
                    d.pos(),
                    format!("`{}` is already defined at {prev}", d.name()),
                ));
            }
        }
        if let Definition::Module(m) = d {
            collect(&m.definitions, table)?;
        }
    }
    Ok(())
}

fn type_ok(ty: &Type, pos: Pos, table: &HashMap<String, (Kind, Pos)>) -> IdlResult<()> {
    match ty {
        Type::Named(n) => match table.get(n) {
            Some((Kind::Struct | Kind::Enum | Kind::Typedef, _)) => Ok(()),
            Some((Kind::Interface, _)) => Err(IdlError::new(
                pos,
                format!("object references (`{n}`) are not supported as data types"),
            )),
            Some((Kind::Exception, _)) => Err(IdlError::new(
                pos,
                format!("exception `{n}` cannot be used as a data type"),
            )),
            Some((Kind::Const, _)) => Err(IdlError::new(
                pos,
                format!("constant `{n}` cannot be used as a type"),
            )),
            Some((Kind::Module, _)) | None => {
                Err(IdlError::new(pos, format!("unknown type `{n}`")))
            }
        },
        Type::Sequence(el) => {
            if matches!(**el, Type::Void) {
                return Err(IdlError::new(pos, "sequence of void is not a type"));
            }
            type_ok(el, pos, table)
        }
        Type::Array(el, _) => type_ok(el, pos, table),
        _ => Ok(()),
    }
}

fn validate(defs: &[Definition], table: &HashMap<String, (Kind, Pos)>) -> IdlResult<()> {
    for d in defs {
        match d {
            Definition::Module(m) => validate(&m.definitions, table)?,
            Definition::Struct(s) => {
                let mut seen = HashSet::new();
                if s.members.is_empty() {
                    return Err(IdlError::new(
                        s.pos,
                        format!("struct `{}` has no members", s.name),
                    ));
                }
                for m in &s.members {
                    if !seen.insert(m.name.as_str()) {
                        return Err(IdlError::new(
                            s.pos,
                            format!("duplicate member `{}` in struct `{}`", m.name, s.name),
                        ));
                    }
                    type_ok(&m.ty, s.pos, table)?;
                }
            }
            Definition::Enum(e) => {
                if e.variants.is_empty() {
                    return Err(IdlError::new(
                        e.pos,
                        format!("enum `{}` has no enumerators", e.name),
                    ));
                }
                let mut seen = HashSet::new();
                for v in &e.variants {
                    if !seen.insert(v.as_str()) {
                        return Err(IdlError::new(
                            e.pos,
                            format!("duplicate enumerator `{v}` in enum `{}`", e.name),
                        ));
                    }
                }
            }
            Definition::Typedef(t) => type_ok(&t.ty, t.pos, table)?,
            Definition::Const(c) => {
                let ok = matches!(
                    (&c.ty, &c.value),
                    (
                        Type::Short
                            | Type::UShort
                            | Type::Long
                            | Type::ULong
                            | Type::LongLong
                            | Type::ULongLong
                            | Type::Octet,
                        ConstValue::Int(_)
                    ) | (Type::String_, ConstValue::Str(_))
                        | (Type::Boolean, ConstValue::Bool(_))
                );
                if !ok {
                    return Err(IdlError::new(
                        c.pos,
                        format!(
                            "constant `{}`: value {} does not fit type {}",
                            c.name,
                            c.value.idl(),
                            c.ty.idl()
                        ),
                    ));
                }
                if let (ty, ConstValue::Int(v)) = (&c.ty, &c.value) {
                    let (lo, hi): (i128, i128) = match ty {
                        Type::Octet => (0, u8::MAX as i128),
                        Type::Short => (i16::MIN as i128, i16::MAX as i128),
                        Type::UShort => (0, u16::MAX as i128),
                        Type::Long => (i32::MIN as i128, i32::MAX as i128),
                        Type::ULong => (0, u32::MAX as i128),
                        Type::LongLong => (i64::MIN as i128, i64::MAX as i128),
                        Type::ULongLong => (0, u64::MAX as i128),
                        _ => (i128::MIN, i128::MAX),
                    };
                    if *v < lo || *v > hi {
                        return Err(IdlError::new(
                            c.pos,
                            format!("constant `{}`: {v} out of range for {}", c.name, c.ty.idl()),
                        ));
                    }
                }
            }
            Definition::Exception(x) => {
                let mut seen = HashSet::new();
                for m in &x.members {
                    if !seen.insert(m.name.as_str()) {
                        return Err(IdlError::new(
                            x.pos,
                            format!("duplicate member `{}` in exception `{}`", m.name, x.name),
                        ));
                    }
                    type_ok(&m.ty, x.pos, table)?;
                }
            }
            Definition::Interface(i) => {
                let mut ops = HashSet::new();
                for op in &i.operations {
                    if !ops.insert(op.name.as_str()) {
                        return Err(IdlError::new(
                            op.pos,
                            format!(
                                "duplicate operation `{}` in interface `{}`",
                                op.name, i.name
                            ),
                        ));
                    }
                    if op.ret != Type::Void {
                        type_ok(&op.ret, op.pos, table)?;
                    }
                    if op.oneway {
                        if let Some(p) = op.params.iter().find(|p| !matches!(p.dir, ParamDir::In)) {
                            return Err(IdlError::new(
                                op.pos,
                                format!(
                                    "oneway operation `{}` cannot have out/inout parameter `{}`",
                                    op.name, p.name
                                ),
                            ));
                        }
                    }
                    for r in &op.raises {
                        match table.get(r) {
                            Some((Kind::Exception, _)) => {}
                            _ => {
                                return Err(IdlError::new(
                                    op.pos,
                                    format!("`raises({r})` does not name an exception"),
                                ))
                            }
                        }
                    }
                    let mut names = HashSet::new();
                    for p in &op.params {
                        if !names.insert(p.name.as_str()) {
                            return Err(IdlError::new(
                                op.pos,
                                format!(
                                    "duplicate parameter `{}` in operation `{}`",
                                    p.name, op.name
                                ),
                            ));
                        }
                        type_ok(&p.ty, op.pos, table)?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn collect_typedefs<'a>(defs: &'a [Definition], out: &mut HashMap<&'a str, &'a Typedef>) {
    for d in defs {
        match d {
            Definition::Typedef(t) => {
                out.insert(t.name.as_str(), t);
            }
            Definition::Module(m) => collect_typedefs(&m.definitions, out),
            _ => {}
        }
    }
}

fn detect_typedef_cycles(
    defs: &[Definition],
    _table: &HashMap<String, (Kind, Pos)>,
) -> IdlResult<()> {
    let mut typedefs = HashMap::new();
    collect_typedefs(defs, &mut typedefs);
    for (start, td) in &typedefs {
        let mut seen = HashSet::new();
        seen.insert(*start);
        let mut cur = &td.ty;
        loop {
            // Follow direct aliases and sequence elements.
            let next_name = match cur {
                Type::Named(n) => n.as_str(),
                Type::Sequence(el) => match &**el {
                    Type::Named(n) => n.as_str(),
                    _ => break,
                },
                _ => break,
            };
            match typedefs.get(next_name) {
                Some(next_td) => {
                    if !seen.insert(next_name) {
                        return Err(IdlError::new(
                            td.pos,
                            format!("typedef cycle involving `{start}`"),
                        ));
                    }
                    cur = &next_td.ty;
                }
                None => break, // struct/enum: cycles through structs would
                               // be caught by Rust's compiler (no Box), and
                               // sema rejects unknown names already.
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ok(src: &str) {
        check(&parse(src).unwrap()).unwrap();
    }

    fn fails(src: &str, needle: &str) {
        let err = check(&parse(src).unwrap()).unwrap_err();
        assert!(
            err.message.contains(needle),
            "expected error containing {needle:?}, got {:?}",
            err.message
        );
    }

    #[test]
    fn valid_spec_passes() {
        ok(r#"
            module m {
              struct S { long a; string b; };
              enum E { X, Y };
              typedef sequence<S> Ss;
              interface I {
                Ss f(in S s, in E e, out long n);
                oneway void ping(in long x);
              };
            };
        "#);
    }

    #[test]
    fn duplicate_definitions_rejected() {
        fails(
            "struct S { long a; }; struct S { long b; };",
            "already defined",
        );
        fails(
            "module a { struct S { long x; }; }; module b { enum S { A }; };",
            "already defined",
        );
    }

    #[test]
    fn unknown_type_rejected() {
        fails("struct S { Mystery m; };", "unknown type");
        fails("interface I { void f(in Nope x); };", "unknown type");
        fails("typedef sequence<Nothing> T;", "unknown type");
    }

    #[test]
    fn interface_as_data_type_rejected() {
        fails(
            "interface I { void f(); }; struct S { I ref; };",
            "not supported as data types",
        );
    }

    #[test]
    fn duplicate_members_and_params() {
        fails("struct S { long a; long a; };", "duplicate member");
        fails("enum E { A, A };", "duplicate enumerator");
        fails(
            "interface I { void f(); void f(); };",
            "duplicate operation",
        );
        fails(
            "interface I { void f(in long x, in long x); };",
            "duplicate parameter",
        );
    }

    #[test]
    fn empty_aggregates_rejected() {
        fails("struct S { };", "no members");
        // empty enums don't parse (grammar needs ≥1), covered in parser
    }

    #[test]
    fn oneway_with_out_rejected() {
        fails(
            "interface I { oneway void f(out long x); };",
            "cannot have out/inout",
        );
    }

    #[test]
    fn typedef_cycles_rejected() {
        fails("typedef B A; typedef A B;", "typedef cycle");
        fails("typedef sequence<A> A;", "typedef cycle");
        // self-alias
        fails("typedef A A;", "typedef cycle");
    }

    #[test]
    fn typedef_chains_allowed() {
        ok("typedef sequence<octet> A; typedef A B; typedef sequence<B> C;");
    }
}
