//! zc-idlc — the zcorba IDL compiler command line.
//!
//! ```text
//! zc-idlc INPUT.idl [-o OUTPUT.rs]     compile to Rust (stdout by default)
//! zc-idlc --check INPUT.idl            parse + validate only
//! zc-idlc --pretty INPUT.idl           reformat to canonical IDL
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut mode_check = false;
    let mut mode_pretty = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => match it.next() {
                Some(o) => output = Some(o),
                None => return usage("missing argument to -o"),
            },
            "--check" => mode_check = true,
            "--pretty" => mode_pretty = true,
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(&format!("unknown option {other}")),
            other => {
                if input.replace(other.to_string()).is_some() {
                    return usage("multiple input files given");
                }
            }
        }
    }
    let Some(input) = input else {
        return usage("no input file");
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("zc-idlc: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = (|| -> zc_idl::IdlResult<String> {
        let spec = zc_idl::parse(&source)?;
        zc_idl::check(&spec)?;
        if mode_check {
            Ok(String::new())
        } else if mode_pretty {
            Ok(zc_idl::ast::pretty(&spec))
        } else {
            Ok(zc_idl::generate(&spec))
        }
    })();

    match result {
        Ok(text) => {
            if mode_check {
                eprintln!("{input}: OK");
                return ExitCode::SUCCESS;
            }
            match output {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, text) {
                        eprintln!("zc-idlc: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{input}:{e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: zc-idlc INPUT.idl [-o OUTPUT.rs] [--check] [--pretty]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("zc-idlc: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
