//! zc-idl — an IDL compiler for zcorba.
//!
//! The paper's §4.3 modifies MICO's IDL compiler so that it "generates
//! ZC_Octet stubs and ZC_Octet skeletons … used the same way as the
//! standard sequence stubs and skeletons". This crate is that compiler for
//! the Rust ORB: it parses a practical subset of OMG IDL —
//!
//! ```idl
//! module zcorba {
//!   struct FrameInfo { unsigned long id; long long pts; boolean key; };
//!   enum Codec { MPEG2, MPEG4 };
//!   typedef sequence<octet> Payload;
//!   typedef sequence<zc_octet> ZcPayload;   // the zero-copy extension
//!
//!   interface Encoder {
//!     ZcPayload encode(in FrameInfo info, in ZcPayload raw);
//!     oneway void flush();
//!     unsigned long stats(out unsigned long frames);
//!   };
//! };
//! ```
//!
//! — and generates Rust: data types with `CdrMarshal` implementations,
//! a `*Client` stub per interface, and a `*Skeleton` servant adapter that
//! dispatches onto a user-implemented trait. `sequence<octet>` maps to the
//! copying [`zc_cdr::OctetSeq`]; `sequence<zc_octet>` maps to the zero-copy
//! [`zc_cdr::ZcOctetSeq`]; *the generated call sites are otherwise
//! identical*, which is exactly the isomorphism the paper requires for a
//! fair comparison.
//!
//! The pipeline is classical: [`lexer`] → [`parser`] → [`sema`] →
//! [`codegen`]. Each stage is independently tested; `compile_str` is the
//! one-call entry used by build scripts, and the `zc-idlc` binary wraps it
//! for the command line.

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use ast::{
    Definition, EnumDef, Interface, Member, Module, Operation, Param, ParamDir, Spec, StructDef,
    Type, Typedef,
};
pub use codegen::generate;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;
pub use sema::check;

/// A source position (1-based line/column) attached to errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line, starting at 1.
    pub line: u32,
    /// Column, starting at 1.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Compiler errors, each carrying the position that triggered them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlError {
    /// Where the error occurred.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl IdlError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> IdlError {
        IdlError {
            pos,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for IdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for IdlError {}

/// Result alias for compiler stages.
pub type IdlResult<T> = Result<T, IdlError>;

/// Compile IDL source text to Rust source text (the full pipeline).
pub fn compile_str(source: &str) -> IdlResult<String> {
    let spec = parse(source)?;
    check(&spec)?;
    Ok(generate(&spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compiles_fixture() {
        let src = r#"
            module demo {
              typedef sequence<zc_octet> Blob;
              interface Echo {
                Blob echo(in Blob data);
              };
            };
        "#;
        let rust = compile_str(src).unwrap();
        assert!(rust.contains("pub struct EchoClient"));
        assert!(rust.contains("pub trait Echo"));
        assert!(rust.contains("ZcOctetSeq"));
    }

    #[test]
    fn error_carries_position() {
        let err = compile_str("interface X { void 42bad(); };").unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(!err.message.is_empty());
    }
}
