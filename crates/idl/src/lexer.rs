//! The IDL lexer.

use crate::{IdlError, IdlResult, Pos};

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are resolved by the parser so that
    /// context-sensitive words like `in` stay usable as identifiers where
    /// IDL allows).
    Ident(String),
    /// Integer literal (enum values, array extents, const values).
    Int(u64),
    /// String literal (const values).
    Str(String),
    /// `-` (signs on const values)
    Minus,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `::`
    Scope,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::Str(s) => write!(f, "string literal {s:?}"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Scope => write!(f, "`::`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it started.
    pub pos: Pos,
}

/// A one-pass lexer over IDL source text.
pub struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            src: source.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> IdlResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // line comment
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                // block comment
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(IdlError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                // preprocessor / pragma lines are skipped wholesale
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lex the next token.
    pub fn next_token(&mut self) -> IdlResult<Token> {
        self.skip_trivia()?;
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                pos,
            });
        };
        let kind = match c {
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'<' => {
                self.bump();
                TokenKind::Lt
            }
            b'>' => {
                self.bump();
                TokenKind::Gt
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'"' => {
                self.bump();
                let mut out = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'"') => out.push('"'),
                            _ => return Err(IdlError::new(pos, "bad escape in string literal")),
                        },
                        Some(c) => out.push(c as char),
                        None => return Err(IdlError::new(pos, "unterminated string literal")),
                    }
                }
                TokenKind::Str(out)
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b':') {
                    self.bump();
                    TokenKind::Scope
                } else {
                    return Err(IdlError::new(pos, "expected `::` (single `:` is not IDL)"));
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = self.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((d - b'0') as u64))
                        .ok_or_else(|| IdlError::new(pos, "integer literal overflow"))?;
                    self.bump();
                }
                if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
                    return Err(IdlError::new(pos, "identifiers may not start with a digit"));
                }
                TokenKind::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if !(c.is_ascii_alphanumeric() || c == b'_') {
                        break;
                    }
                    s.push(c as char);
                    self.bump();
                }
                TokenKind::Ident(s)
            }
            other => {
                return Err(IdlError::new(
                    pos,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Token { kind, pos })
    }

    /// Lex the whole input (trailing Eof token included).
    pub fn tokenize(mut self) -> IdlResult<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            kinds("interface X { void f(); };"),
            vec![
                TokenKind::Ident("interface".into()),
                TokenKind::Ident("X".into()),
                TokenKind::LBrace,
                TokenKind::Ident("void".into()),
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_pragmas_skipped() {
        let src = "// line\n/* block\nspanning */ #pragma zc on\nfoo";
        assert_eq!(
            kinds(src),
            vec![TokenKind::Ident("foo".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn scope_token() {
        assert_eq!(
            kinds("a::b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Scope,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn sequence_brackets() {
        assert_eq!(
            kinds("sequence<octet>"),
            vec![
                TokenKind::Ident("sequence".into()),
                TokenKind::Lt,
                TokenKind::Ident("octet".into()),
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals_and_minus() {
        assert_eq!(
            kinds(r#"= -"a\nb""#),
            vec![
                TokenKind::Eq,
                TokenKind::Minus,
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
        assert!(Lexer::new("\"never closed").tokenize().is_err());
        assert!(Lexer::new(r#""bad \q escape""#).tokenize().is_err());
    }

    #[test]
    fn integers() {
        assert_eq!(
            kinds("= 42"),
            vec![TokenKind::Eq, TokenKind::Int(42), TokenKind::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("@").tokenize().is_err());
        assert!(Lexer::new("a : b").tokenize().is_err());
        assert!(Lexer::new("/* never closed").tokenize().is_err());
        assert!(Lexer::new("1abc").tokenize().is_err());
        assert!(Lexer::new("99999999999999999999999").tokenize().is_err());
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("  \n\t "), vec![TokenKind::Eof]);
    }
}
