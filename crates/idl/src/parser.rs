//! Recursive-descent parser for the IDL subset.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::{IdlError, IdlResult, Pos};

/// Parse IDL source text into a [`Spec`].
pub fn parse(source: &str) -> IdlResult<Spec> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut p = Parser { tokens, i: 0 };
    p.spec()
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.i.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn expect(&mut self, kind: &TokenKind) -> IdlResult<Token> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(IdlError::new(
                self.pos(),
                format!("expected {kind}, found {}", self.peek().kind),
            ))
        }
    }

    fn ident(&mut self) -> IdlResult<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(IdlError::new(
                self.pos(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    /// Is the next token the given keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> IdlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(IdlError::new(
                self.pos(),
                format!("expected keyword `{kw}`, found {}", self.peek().kind),
            ))
        }
    }

    /// Optional trailing semicolon after a closing brace.
    fn eat_semi(&mut self) {
        while self.peek().kind == TokenKind::Semi {
            self.bump();
        }
    }

    fn spec(&mut self) -> IdlResult<Spec> {
        let mut definitions = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            definitions.push(self.definition()?);
        }
        Ok(Spec { definitions })
    }

    fn definition(&mut self) -> IdlResult<Definition> {
        let pos = self.pos();
        if self.at_kw("module") {
            self.bump();
            let name = self.ident()?;
            self.expect(&TokenKind::LBrace)?;
            let mut definitions = Vec::new();
            while self.peek().kind != TokenKind::RBrace {
                definitions.push(self.definition()?);
            }
            self.expect(&TokenKind::RBrace)?;
            self.eat_semi();
            Ok(Definition::Module(Module {
                name,
                definitions,
                pos,
            }))
        } else if self.at_kw("interface") {
            Ok(Definition::Interface(self.interface()?))
        } else if self.at_kw("struct") {
            Ok(Definition::Struct(self.struct_def()?))
        } else if self.at_kw("enum") {
            Ok(Definition::Enum(self.enum_def()?))
        } else if self.at_kw("typedef") {
            Ok(Definition::Typedef(self.typedef()?))
        } else if self.at_kw("exception") {
            Ok(Definition::Exception(self.exception_def()?))
        } else if self.at_kw("const") {
            Ok(Definition::Const(self.const_def()?))
        } else {
            Err(IdlError::new(
                pos,
                format!(
                    "expected `module`, `interface`, `struct`, `enum`, `typedef`, `exception` or `const`, found {}",
                    self.peek().kind
                ),
            ))
        }
    }

    fn interface(&mut self) -> IdlResult<Interface> {
        let pos = self.pos();
        self.expect_kw("interface")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut operations = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.at_kw("readonly") || self.at_kw("attribute") {
                operations.extend(self.attribute()?);
            } else {
                operations.push(self.operation()?);
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.eat_semi();
        Ok(Interface {
            name,
            operations,
            pos,
        })
    }

    /// `["readonly"] attribute type name;` — desugared, per the CORBA
    /// language mapping, into `_get_name()` (and `_set_name(v)` when
    /// writable).
    fn attribute(&mut self) -> IdlResult<Vec<Operation>> {
        let pos = self.pos();
        let readonly = self.eat_kw("readonly");
        self.expect_kw("attribute")?;
        let ty = self.type_spec(false)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Semi)?;
        let mut ops = vec![Operation {
            name: format!("_get_{name}"),
            ret: ty.clone(),
            params: vec![],
            oneway: false,
            raises: vec![],
            pos,
        }];
        if !readonly {
            ops.push(Operation {
                name: format!("_set_{name}"),
                ret: Type::Void,
                params: vec![Param {
                    dir: ParamDir::In,
                    ty,
                    name: "value".to_string(),
                }],
                oneway: false,
                raises: vec![],
                pos,
            });
        }
        Ok(ops)
    }

    fn operation(&mut self) -> IdlResult<Operation> {
        let pos = self.pos();
        let oneway = self.eat_kw("oneway");
        let ret = self.type_spec(true)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                params.push(self.param()?);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let mut raises = Vec::new();
        if self.eat_kw("raises") {
            self.expect(&TokenKind::LParen)?;
            loop {
                raises.push(self.scoped_name()?);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Semi)?;
        if oneway && ret != Type::Void {
            return Err(IdlError::new(pos, "oneway operations must return void"));
        }
        Ok(Operation {
            name,
            ret,
            params,
            oneway,
            raises,
            pos,
        })
    }

    fn param(&mut self) -> IdlResult<Param> {
        let dir = if self.eat_kw("in") {
            ParamDir::In
        } else if self.eat_kw("out") {
            ParamDir::Out
        } else if self.eat_kw("inout") {
            ParamDir::InOut
        } else {
            ParamDir::In // direction defaults to `in`
        };
        let ty = self.type_spec(false)?;
        let name = self.ident()?;
        Ok(Param { dir, ty, name })
    }

    fn struct_def(&mut self) -> IdlResult<StructDef> {
        let pos = self.pos();
        self.expect_kw("struct")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut members = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let ty = self.type_spec(false)?;
            let name = self.ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(&TokenKind::Semi)?;
            members.push(Member { ty, name });
        }
        self.expect(&TokenKind::RBrace)?;
        self.eat_semi();
        Ok(StructDef { name, members, pos })
    }

    fn const_def(&mut self) -> IdlResult<ConstDef> {
        let pos = self.pos();
        self.expect_kw("const")?;
        let ty = self.type_spec(false)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Eq)?;
        let vpos = self.pos();
        let value = match self.bump().kind {
            TokenKind::Minus => match self.bump().kind {
                TokenKind::Int(n) => ConstValue::Int(-(n as i128)),
                other => {
                    return Err(IdlError::new(
                        vpos,
                        format!("expected integer after `-`, found {other}"),
                    ))
                }
            },
            TokenKind::Int(n) => ConstValue::Int(n as i128),
            TokenKind::Str(s) => ConstValue::Str(s),
            TokenKind::Ident(w) if w == "TRUE" => ConstValue::Bool(true),
            TokenKind::Ident(w) if w == "FALSE" => ConstValue::Bool(false),
            other => {
                return Err(IdlError::new(
                    vpos,
                    format!("expected a constant value, found {other}"),
                ))
            }
        };
        self.expect(&TokenKind::Semi)?;
        Ok(ConstDef {
            name,
            ty,
            value,
            pos,
        })
    }

    fn exception_def(&mut self) -> IdlResult<ExceptionDef> {
        let pos = self.pos();
        self.expect_kw("exception")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut members = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let ty = self.type_spec(false)?;
            let name = self.ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(&TokenKind::Semi)?;
            members.push(Member { ty, name });
        }
        self.expect(&TokenKind::RBrace)?;
        self.eat_semi();
        Ok(ExceptionDef { name, members, pos })
    }

    fn enum_def(&mut self) -> IdlResult<EnumDef> {
        let pos = self.pos();
        self.expect_kw("enum")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut variants = Vec::new();
        loop {
            variants.push(self.ident()?);
            // optional explicit value `= N` (accepted, must be sequential)
            if self.peek().kind == TokenKind::Eq {
                self.bump();
                let pos = self.pos();
                match self.bump().kind {
                    TokenKind::Int(n) => {
                        if n as usize != variants.len() - 1 {
                            return Err(IdlError::new(
                                pos,
                                "only sequential enumerator values are supported",
                            ));
                        }
                    }
                    other => {
                        return Err(IdlError::new(
                            pos,
                            format!("expected integer enumerator value, found {other}"),
                        ))
                    }
                }
            }
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.eat_semi();
        Ok(EnumDef {
            name,
            variants,
            pos,
        })
    }

    fn typedef(&mut self) -> IdlResult<Typedef> {
        let pos = self.pos();
        self.expect_kw("typedef")?;
        let ty = self.type_spec(false)?;
        let name = self.ident()?;
        let ty = self.array_suffix(ty)?;
        self.expect(&TokenKind::Semi)?;
        Ok(Typedef { name, ty, pos })
    }

    /// Optional `[N]` after a declared name (typedefs and struct members).
    fn array_suffix(&mut self, base: Type) -> IdlResult<Type> {
        if self.peek().kind != TokenKind::LBracket {
            return Ok(base);
        }
        let pos = self.pos();
        self.bump();
        let n = match self.bump().kind {
            TokenKind::Int(n) if n > 0 => n,
            TokenKind::Int(_) => return Err(IdlError::new(pos, "array extent must be positive")),
            other => {
                return Err(IdlError::new(
                    pos,
                    format!("expected array extent, found {other}"),
                ))
            }
        };
        self.expect(&TokenKind::RBracket)?;
        // multi-dimensional arrays nest outermost-first
        let inner = self.array_suffix(base)?;
        Ok(Type::Array(Box::new(inner), n))
    }

    fn scoped_name(&mut self) -> IdlResult<String> {
        let mut name = self.ident()?;
        while self.peek().kind == TokenKind::Scope {
            self.bump();
            // Scoping is flattened: the last segment is the lookup key
            // (all names in a spec must be unique; sema enforces it).
            name = self.ident()?;
        }
        Ok(name)
    }

    fn type_spec(&mut self, allow_void: bool) -> IdlResult<Type> {
        let pos = self.pos();
        let t = if self.eat_kw("void") {
            if !allow_void {
                return Err(IdlError::new(pos, "`void` is only valid as a return type"));
            }
            Type::Void
        } else if self.eat_kw("octet") {
            Type::Octet
        } else if self.eat_kw("boolean") {
            Type::Boolean
        } else if self.eat_kw("char") {
            Type::Char
        } else if self.eat_kw("short") {
            Type::Short
        } else if self.eat_kw("float") {
            Type::Float
        } else if self.eat_kw("double") {
            Type::Double
        } else if self.eat_kw("string") {
            Type::String_
        } else if self.eat_kw("long") {
            if self.eat_kw("long") {
                Type::LongLong
            } else {
                Type::Long
            }
        } else if self.eat_kw("unsigned") {
            if self.eat_kw("short") {
                Type::UShort
            } else if self.eat_kw("long") {
                if self.eat_kw("long") {
                    Type::ULongLong
                } else {
                    Type::ULong
                }
            } else {
                return Err(IdlError::new(
                    pos,
                    "`unsigned` must be followed by `short` or `long`",
                ));
            }
        } else if self.eat_kw("sequence") {
            self.expect(&TokenKind::Lt)?;
            let el = self.type_spec(false)?;
            self.expect(&TokenKind::Gt)?;
            match el {
                Type::Octet => Type::OctetSeq,
                Type::Named(n) if n == "zc_octet" || n == "ZC_Octet" => Type::ZcOctetSeq,
                other => Type::Sequence(Box::new(other)),
            }
        } else {
            Type::Named(self.scoped_name()?)
        };
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::pretty;

    const FIXTURE: &str = r#"
        module zcorba {
          struct FrameInfo {
            unsigned long id;
            long long pts;
            boolean key;
          };
          enum Codec { MPEG2, MPEG4 };
          typedef sequence<octet> Payload;
          typedef sequence<zc_octet> ZcPayload;
          typedef sequence<FrameInfo> FrameList;

          interface Encoder {
            ZcPayload encode(in FrameInfo info, in ZcPayload raw);
            oneway void flush();
            unsigned long stats(out unsigned long frames);
            void configure(in Codec codec, inout double rate) raises (BadCodec);
          };
        };
    "#;

    #[test]
    fn parses_fixture() {
        let spec = parse(FIXTURE).unwrap();
        assert_eq!(spec.definitions.len(), 1);
        let Definition::Module(m) = &spec.definitions[0] else {
            panic!("expected module")
        };
        assert_eq!(m.name, "zcorba");
        assert_eq!(m.definitions.len(), 6);
        let Definition::Interface(i) = &m.definitions[5] else {
            panic!("expected interface")
        };
        assert_eq!(i.name, "Encoder");
        assert_eq!(i.operations.len(), 4);
        assert!(i.operations[1].oneway);
        assert_eq!(i.operations[2].params[0].dir, ParamDir::Out);
        assert_eq!(i.operations[3].params[1].dir, ParamDir::InOut);
    }

    #[test]
    fn zc_octet_sequence_recognized() {
        let spec = parse("typedef sequence<zc_octet> B;").unwrap();
        let Definition::Typedef(t) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(t.ty, Type::ZcOctetSeq);
        // alternate spelling
        let spec = parse("typedef sequence<ZC_Octet> B;").unwrap();
        let Definition::Typedef(t) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(t.ty, Type::ZcOctetSeq);
    }

    #[test]
    fn unsigned_variants() {
        let spec = parse(
            "struct S { unsigned short a; unsigned long b; unsigned long long c; long long d; };",
        )
        .unwrap();
        let Definition::Struct(s) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(s.members[0].ty, Type::UShort);
        assert_eq!(s.members[1].ty, Type::ULong);
        assert_eq!(s.members[2].ty, Type::ULongLong);
        assert_eq!(s.members[3].ty, Type::LongLong);
    }

    #[test]
    fn nested_sequences() {
        let spec = parse("typedef sequence<sequence<long>> Matrix;").unwrap();
        let Definition::Typedef(t) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(
            t.ty,
            Type::Sequence(Box::new(Type::Sequence(Box::new(Type::Long))))
        );
    }

    #[test]
    fn default_param_direction_is_in() {
        let spec = parse("interface I { void f(long x); };").unwrap();
        let Definition::Interface(i) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(i.operations[0].params[0].dir, ParamDir::In);
    }

    #[test]
    fn enum_with_sequential_values() {
        assert!(parse("enum E { A = 0, B = 1 };").is_ok());
        assert!(parse("enum E { A = 5 };").is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse("interface { };").is_err()); // missing name
        assert!(parse("interface I { void f() };").is_err()); // missing ;
        assert!(parse("struct S { void v; };").is_err()); // void member
        assert!(parse("oneway long f();").is_err()); // oneway at top level
        assert!(parse("interface I { oneway long f(); };").is_err()); // oneway non-void
        assert!(parse("typedef unsigned float F;").is_err());
        assert!(parse("garbage").is_err());
    }

    #[test]
    fn pretty_print_reparse_fixpoint() {
        let spec = parse(FIXTURE).unwrap();
        let printed = pretty(&spec);
        let reparsed = parse(&printed).unwrap();
        // `raises` clauses are discarded, so compare the reparse of the
        // print against itself printed again (canonical fixpoint).
        assert_eq!(pretty(&reparsed), printed);
    }

    #[test]
    fn array_declarators() {
        let spec = parse("typedef long Vec4[4]; struct M { double cells[2][3]; octet pad[16]; };")
            .unwrap();
        let Definition::Typedef(t) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(t.ty, Type::Array(Box::new(Type::Long), 4));
        let Definition::Struct(m) = &spec.definitions[1] else {
            panic!()
        };
        assert_eq!(
            m.members[0].ty,
            Type::Array(Box::new(Type::Array(Box::new(Type::Double), 3)), 2)
        );
        assert_eq!(m.members[1].ty, Type::Array(Box::new(Type::Octet), 16));
        // zero extent and junk rejected
        assert!(parse("typedef long Bad[0];").is_err());
        assert!(parse("typedef long Bad[x];").is_err());
        assert!(parse("typedef long Bad[4;").is_err());
        // pretty fixpoint through declarator syntax
        let printed = crate::ast::pretty(&spec);
        assert!(printed.contains("typedef long Vec4[4];"));
        let reparsed = parse(&printed).unwrap();
        assert_eq!(crate::ast::pretty(&reparsed), printed);
    }

    #[test]
    fn const_declarations() {
        let spec = parse(
            "const long ANSWER = 42;\n\
             const long long NEG = -7;\n\
             const string GREETING = \"hi\\n\";\n\
             const boolean ON = TRUE;\n\
             const octet B = 255;",
        )
        .unwrap();
        crate::sema::check(&spec).unwrap();
        let Definition::Const(c) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(c.value, ConstValue::Int(42));
        let Definition::Const(n) = &spec.definitions[1] else {
            panic!()
        };
        assert_eq!(n.value, ConstValue::Int(-7));
        // range and kind checks
        assert!(crate::sema::check(&parse("const octet X = 256;").unwrap()).is_err());
        assert!(crate::sema::check(&parse("const long X = TRUE;").unwrap()).is_err());
        assert!(crate::sema::check(&parse("const unsigned long X = -1;").unwrap()).is_err());
        assert!(parse("const long X = ;").is_err());
        // pretty fixpoint
        let printed = crate::ast::pretty(&spec);
        assert!(printed.contains("const long ANSWER = 42;"));
        assert!(printed.contains("const boolean ON = TRUE;"));
        let reparsed = parse(&printed).unwrap();
        assert_eq!(crate::ast::pretty(&reparsed), printed);
        // codegen
        let rust = crate::codegen::generate(&spec);
        assert!(rust.contains("pub const ANSWER: i32 = 42;"));
        assert!(rust.contains("pub const NEG: i64 = -7;"));
        assert!(rust.contains("pub const GREETING: &str = \"hi\\n\";"));
        assert!(rust.contains("pub const ON: bool = true;"));
    }

    #[test]
    fn exceptions_and_raises() {
        let spec = parse(
            "exception Oops { long code; string what; };\n\
             exception Empty { };\n\
             interface I { void f() raises (Oops, Empty); long g(); };",
        )
        .unwrap();
        crate::sema::check(&spec).unwrap();
        let Definition::Exception(x) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(x.name, "Oops");
        assert_eq!(x.members.len(), 2);
        assert_eq!(x.repo_id(&[]), "IDL:Oops:1.0");
        let Definition::Interface(i) = &spec.definitions[2] else {
            panic!()
        };
        assert_eq!(i.operations[0].raises, vec!["Oops", "Empty"]);
        assert!(i.operations[1].raises.is_empty());
        // pretty fixpoint preserves raises
        let printed = crate::ast::pretty(&spec);
        assert!(printed.contains("raises (Oops, Empty)"));
        let reparsed = parse(&printed).unwrap();
        assert_eq!(crate::ast::pretty(&reparsed), printed);
        // sema rejects unknown raises and exceptions as data types
        assert!(
            crate::sema::check(&parse("interface I { void f() raises (Ghost); };").unwrap())
                .is_err()
        );
        assert!(
            crate::sema::check(&parse("exception E { long x; }; struct S { E e; };").unwrap())
                .is_err()
        );
        // generated code has the helpers
        let rust = crate::codegen::generate(&spec);
        assert!(rust.contains("pub struct Oops"));
        assert!(rust.contains("pub const REPO_ID: &'static str = \"IDL:Oops:1.0\""));
        assert!(rust.contains("pub fn raise(&self)"));
        assert!(rust.contains("pub fn from_error"));
    }

    #[test]
    fn attributes_desugar_to_accessors() {
        let spec = parse("interface I { readonly attribute long count; attribute string label; };")
            .unwrap();
        let Definition::Interface(i) = &spec.definitions[0] else {
            panic!()
        };
        let names: Vec<&str> = i.operations.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["_get_count", "_get_label", "_set_label"]);
        assert_eq!(i.operations[0].ret, Type::Long);
        assert!(i.operations[0].params.is_empty());
        assert_eq!(i.operations[2].ret, Type::Void);
        assert_eq!(i.operations[2].params[0].ty, Type::String_);
        // generated Rust names are legal identifiers
        let rust = crate::codegen::generate(&spec);
        assert!(rust.contains("fn _get_count(&self)"));
        assert!(rust.contains("fn _set_label(&self, value: String)"));
    }

    #[test]
    fn readonly_without_attribute_is_an_error() {
        assert!(parse("interface I { readonly long x; };").is_err());
    }

    #[test]
    fn scoped_names_flatten() {
        let spec = parse("interface I { void f(in m::Frame x); };").unwrap();
        let Definition::Interface(i) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(i.operations[0].params[0].ty, Type::Named("Frame".into()));
    }
}
