//! The IDL abstract syntax tree and its pretty-printer.

use crate::Pos;

/// A complete IDL specification (one compilation unit).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    /// Top-level definitions.
    pub definitions: Vec<Definition>,
}

/// Any top-level or module-level definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Definition {
    /// `module name { … };`
    Module(Module),
    /// `interface name { … };`
    Interface(Interface),
    /// `struct name { … };`
    Struct(StructDef),
    /// `enum name { … };`
    Enum(EnumDef),
    /// `typedef type name;`
    Typedef(Typedef),
    /// `exception name { … };`
    Exception(ExceptionDef),
    /// `const type name = value;`
    Const(ConstDef),
}

impl Definition {
    /// The defined name.
    pub fn name(&self) -> &str {
        match self {
            Definition::Module(m) => &m.name,
            Definition::Interface(i) => &i.name,
            Definition::Struct(s) => &s.name,
            Definition::Enum(e) => &e.name,
            Definition::Typedef(t) => &t.name,
            Definition::Exception(e) => &e.name,
            Definition::Const(c) => &c.name,
        }
    }

    /// The position where the definition starts.
    pub fn pos(&self) -> Pos {
        match self {
            Definition::Module(m) => m.pos,
            Definition::Interface(i) => i.pos,
            Definition::Struct(s) => s.pos,
            Definition::Enum(e) => e.pos,
            Definition::Typedef(t) => t.pos,
            Definition::Exception(e) => e.pos,
            Definition::Const(c) => c.pos,
        }
    }
}

/// An IDL module (maps to a Rust `mod`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Nested definitions.
    pub definitions: Vec<Definition>,
    /// Source position.
    pub pos: Pos,
}

/// An IDL interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Interface name.
    pub name: String,
    /// Operations, in declaration order.
    pub operations: Vec<Operation>,
    /// Source position.
    pub pos: Pos,
}

impl Interface {
    /// The CORBA repository id this compiler assigns.
    pub fn repo_id(&self, module_path: &[String]) -> String {
        let mut path = module_path.join("/");
        if !path.is_empty() {
            path.push('/');
        }
        format!("IDL:{path}{}:1.0", self.name)
    }
}

/// One operation of an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name (the GIOP `operation` string).
    pub name: String,
    /// Return type (`Type::Void` for none).
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// `oneway` operations get no reply.
    pub oneway: bool,
    /// Declared exceptions (`raises(...)`), by name.
    pub raises: Vec<String>,
    /// Source position.
    pub pos: Pos,
}

/// Parameter passing direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamDir {
    /// Client → server.
    In,
    /// Server → client (returned alongside the result).
    Out,
    /// Both ways.
    InOut,
}

/// One operation parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Direction.
    pub dir: ParamDir,
    /// Parameter type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order (CDR marshals them in this order).
    pub members: Vec<Member>,
    /// Source position.
    pub pos: Pos,
}

/// One struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Field type.
    pub ty: Type,
    /// Field name.
    pub name: String,
}

/// A user exception definition (`exception Name { members };`). Members
/// may be empty, unlike structs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExceptionDef {
    /// Exception name.
    pub name: String,
    /// Member fields (possibly none).
    pub members: Vec<Member>,
    /// Source position.
    pub pos: Pos,
}

impl ExceptionDef {
    /// The repository id the compiler assigns.
    pub fn repo_id(&self, module_path: &[String]) -> String {
        let mut path = module_path.join("/");
        if !path.is_empty() {
            path.push('/');
        }
        format!("IDL:{path}{}:1.0", self.name)
    }
}

/// An enum definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Enumerators, discriminants 0..n in order.
    pub variants: Vec<String>,
    /// Source position.
    pub pos: Pos,
}

/// A constant value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstValue {
    /// Integer (sign applied).
    Int(i128),
    /// String.
    Str(String),
    /// Boolean (`TRUE`/`FALSE`).
    Bool(bool),
}

impl ConstValue {
    /// IDL rendering.
    pub fn idl(&self) -> String {
        match self {
            ConstValue::Int(v) => v.to_string(),
            ConstValue::Str(s) => format!("{s:?}"),
            ConstValue::Bool(true) => "TRUE".into(),
            ConstValue::Bool(false) => "FALSE".into(),
        }
    }
}

/// A constant declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDef {
    /// Constant name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// The value.
    pub value: ConstValue,
    /// Source position.
    pub pos: Pos,
}

/// A typedef.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Typedef {
    /// New name.
    pub name: String,
    /// Aliased type.
    pub ty: Type,
    /// Source position.
    pub pos: Pos,
}

/// IDL types (the subset zcorba speaks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `void` (return type only).
    Void,
    /// `octet`
    Octet,
    /// `boolean`
    Boolean,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `unsigned short`
    UShort,
    /// `long`
    Long,
    /// `unsigned long`
    ULong,
    /// `long long`
    LongLong,
    /// `unsigned long long`
    ULongLong,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `string`
    String_,
    /// `sequence<octet>` — the standard copying byte stream.
    OctetSeq,
    /// `sequence<zc_octet>` — the zero-copy byte stream (the extension).
    ZcOctetSeq,
    /// `sequence<T>` for any other element type.
    Sequence(Box<Type>),
    /// A user-defined name (struct, enum, or typedef), possibly scoped
    /// (`module::Name` flattens to the last segment for lookup).
    Named(String),
    /// A fixed-size array declarator `T name[N]` (typedefs and struct
    /// members only, per IDL).
    Array(Box<Type>, u64),
}

impl Type {
    /// IDL rendering (used by the pretty-printer and error messages).
    pub fn idl(&self) -> String {
        match self {
            Type::Void => "void".into(),
            Type::Octet => "octet".into(),
            Type::Boolean => "boolean".into(),
            Type::Char => "char".into(),
            Type::Short => "short".into(),
            Type::UShort => "unsigned short".into(),
            Type::Long => "long".into(),
            Type::ULong => "unsigned long".into(),
            Type::LongLong => "long long".into(),
            Type::ULongLong => "unsigned long long".into(),
            Type::Float => "float".into(),
            Type::Double => "double".into(),
            Type::String_ => "string".into(),
            Type::OctetSeq => "sequence<octet>".into(),
            Type::ZcOctetSeq => "sequence<zc_octet>".into(),
            Type::Sequence(el) => format!("sequence<{}>", el.idl()),
            Type::Named(n) => n.clone(),
            Type::Array(el, n) => format!("{}[{n}]", el.idl()),
        }
    }

    /// Split into (base type, declarator suffix) for pretty-printing
    /// declarations: arrays put their extents after the declared name,
    /// outermost dimension first (`double m[2][3]`).
    pub fn declarator(&self) -> (&Type, String) {
        let mut cur = self;
        let mut suffix = String::new();
        while let Type::Array(el, n) = cur {
            suffix.push_str(&format!("[{n}]"));
            cur = el;
        }
        (cur, suffix)
    }
}

/// Pretty-print a spec back to canonical IDL (used by the parser fixpoint
/// property test and by tooling that normalizes IDL files).
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    for d in &spec.definitions {
        pretty_def(d, 0, &mut out);
    }
    out
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn pretty_def(d: &Definition, depth: usize, out: &mut String) {
    match d {
        Definition::Module(m) => {
            indent(depth, out);
            out.push_str(&format!("module {} {{\n", m.name));
            for d in &m.definitions {
                pretty_def(d, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("};\n");
        }
        Definition::Interface(i) => {
            indent(depth, out);
            out.push_str(&format!("interface {} {{\n", i.name));
            for op in &i.operations {
                indent(depth + 1, out);
                if op.oneway {
                    out.push_str("oneway ");
                }
                out.push_str(&format!("{} {}(", op.ret.idl(), op.name));
                let params: Vec<String> = op
                    .params
                    .iter()
                    .map(|p| {
                        let dir = match p.dir {
                            ParamDir::In => "in",
                            ParamDir::Out => "out",
                            ParamDir::InOut => "inout",
                        };
                        format!("{dir} {} {}", p.ty.idl(), p.name)
                    })
                    .collect();
                out.push_str(&params.join(", "));
                out.push(')');
                if !op.raises.is_empty() {
                    out.push_str(&format!(" raises ({})", op.raises.join(", ")));
                }
                out.push_str(";\n");
            }
            indent(depth, out);
            out.push_str("};\n");
        }
        Definition::Struct(s) => {
            indent(depth, out);
            out.push_str(&format!("struct {} {{\n", s.name));
            for m in &s.members {
                indent(depth + 1, out);
                let (base, suffix) = m.ty.declarator();
                out.push_str(&format!("{} {}{};\n", base.idl(), m.name, suffix));
            }
            indent(depth, out);
            out.push_str("};\n");
        }
        Definition::Enum(e) => {
            indent(depth, out);
            out.push_str(&format!(
                "enum {} {{ {} }};\n",
                e.name,
                e.variants.join(", ")
            ));
        }
        Definition::Const(c) => {
            indent(depth, out);
            out.push_str(&format!(
                "const {} {} = {};\n",
                c.ty.idl(),
                c.name,
                c.value.idl()
            ));
        }
        Definition::Exception(x) => {
            indent(depth, out);
            out.push_str(&format!("exception {} {{\n", x.name));
            for m in &x.members {
                indent(depth + 1, out);
                let (base, suffix) = m.ty.declarator();
                out.push_str(&format!("{} {}{};\n", base.idl(), m.name, suffix));
            }
            indent(depth, out);
            out.push_str("};\n");
        }
        Definition::Typedef(t) => {
            indent(depth, out);
            let (base, suffix) = t.ty.declarator();
            out.push_str(&format!("typedef {} {}{};\n", base.idl(), t.name, suffix));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_id_with_and_without_modules() {
        let i = Interface {
            name: "Echo".into(),
            operations: vec![],
            pos: Pos { line: 1, col: 1 },
        };
        assert_eq!(i.repo_id(&[]), "IDL:Echo:1.0");
        assert_eq!(
            i.repo_id(&["zcorba".to_string(), "media".to_string()]),
            "IDL:zcorba/media/Echo:1.0"
        );
    }

    #[test]
    fn type_idl_rendering() {
        assert_eq!(Type::ULongLong.idl(), "unsigned long long");
        assert_eq!(
            Type::Sequence(Box::new(Type::Named("Frame".into()))).idl(),
            "sequence<Frame>"
        );
        assert_eq!(Type::ZcOctetSeq.idl(), "sequence<zc_octet>");
    }
}
