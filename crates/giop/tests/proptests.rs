//! Property tests: GIOP framing, fragmentation, IORs and headers round-trip
//! under arbitrary inputs; decoders never panic on garbage.

use proptest::prelude::*;

use zc_cdr::{ByteOrder, CdrDecoder, CdrEncoder};
use zc_giop::{
    DepositManifest, GiopHeader, GiopVersion, Handshake, IiopProfile, Ior, MessageType,
    ReplyHeader, ReplyStatus, RequestHeader, TaggedProfile, GIOP_HEADER_LEN,
};

fn orders() -> impl Strategy<Value = ByteOrder> {
    prop_oneof![Just(ByteOrder::Big), Just(ByteOrder::Little)]
}

proptest! {
    #[test]
    fn prop_giop_header_roundtrip(
        size in 0u32..1_000_000,
        order in orders(),
        mt in 0u8..8,
    ) {
        let h = GiopHeader::new(
            GiopVersion::V1_2,
            order,
            MessageType::from_octet(mt).unwrap(),
            size,
        );
        prop_assert_eq!(GiopHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn prop_header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), GIOP_HEADER_LEN..=GIOP_HEADER_LEN)) {
        let arr: [u8; GIOP_HEADER_LEN] = bytes.try_into().unwrap();
        let _ = GiopHeader::decode(&arr);
    }

    #[test]
    fn prop_fragmentation_roundtrip(
        body in proptest::collection::vec(any::<u8>(), 0..20_000),
        max_body in 1usize..4096,
        order in orders(),
    ) {
        let frames = zc_giop::msg::fragment_frames(
            GiopVersion::V1_2, order, MessageType::Request, &body, max_body);
        let (mt, back) = zc_giop::msg::reassemble(&frames).unwrap();
        prop_assert_eq!(mt, MessageType::Request);
        prop_assert_eq!(back, body);
    }

    #[test]
    fn prop_request_header_roundtrip(
        id: u32,
        expected: bool,
        key in proptest::collection::vec(any::<u8>(), 0..64),
        op in "[a-zA-Z_][a-zA-Z0-9_]{0,30}",
        order in orders(),
    ) {
        let mut h = RequestHeader::new(id, key, &op);
        h.response_expected = expected;
        let mut enc = CdrEncoder::new(order);
        h.marshal(&mut enc).unwrap();
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, order);
        prop_assert_eq!(RequestHeader::demarshal(&mut dec).unwrap(), h);
    }

    #[test]
    fn prop_reply_header_roundtrip(id: u32, status in 0u32..4, order in orders()) {
        let h = ReplyHeader {
            service_contexts: vec![],
            request_id: id,
            status: ReplyStatus::from_u32(status).unwrap(),
        };
        let mut enc = CdrEncoder::new(order);
        h.marshal(&mut enc).unwrap();
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, order);
        prop_assert_eq!(ReplyHeader::demarshal(&mut dec).unwrap(), h);
    }

    #[test]
    fn prop_manifest_roundtrip(lengths in proptest::collection::vec(any::<u64>(), 0..50)) {
        let m = DepositManifest { block_lengths: lengths };
        let back = DepositManifest::from_context(&m.to_context()).unwrap().unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn prop_ior_string_roundtrip(
        type_id in "[ -~]{0,40}",
        host in "[a-z0-9.]{1,30}",
        port: u16,
        key in proptest::collection::vec(any::<u8>(), 0..32),
        foreign_tag in 1u32..1000,
        foreign_data in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut ior = Ior::new_iiop(&type_id, &host, port, &key);
        ior.profiles.push(TaggedProfile::Other { tag: foreign_tag, data: foreign_data });
        let s = ior.to_ior_string();
        let back = Ior::from_ior_string(&s).unwrap();
        prop_assert_eq!(&back, &ior);
        prop_assert_eq!(back.to_ior_string(), s);
    }

    #[test]
    fn prop_ior_parse_never_panics(s in "IOR:[0-9a-fA-F]{0,200}") {
        let _ = Ior::from_ior_string(&s);
    }

    #[test]
    fn prop_handshake_roundtrip(zc: bool, word in 1u8..16, page in 1u32..65536, arch in "[a-z0-9-]{1,20}") {
        let h = Handshake {
            byte_order: ByteOrder::native(),
            word_size: word,
            page_size: page,
            arch,
            zc_supported: zc,
        };
        prop_assert_eq!(Handshake::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn prop_handshake_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Handshake::decode(&bytes);
    }

    /// Negotiation is symmetric in its homogeneity/zero-copy verdicts.
    #[test]
    fn prop_negotiation_symmetric_verdict(zc_a: bool, zc_b: bool, foreign: bool) {
        let a = Handshake::local(zc_a);
        let b = if foreign { Handshake::foreign() } else { Handshake::local(zc_b) };
        let n1 = Handshake::negotiate(&a, &b);
        let n2 = Handshake::negotiate(&b, &a);
        prop_assert_eq!(n1.homogeneous, n2.homogeneous);
        prop_assert_eq!(n1.zero_copy, n2.zero_copy);
    }

    /// A valid framed GIOP stream with random byte flips and/or a
    /// truncation never panics header decoding or reassembly — every
    /// corruption lands as `Err`, never as a crash or a huge allocation.
    #[test]
    fn prop_mutated_stream_never_panics_decode(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        max_body in 32usize..512,
        order in orders(),
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255u8), 0..8),
        cut in any::<usize>(),
        do_truncate: bool,
    ) {
        let mut frames = zc_giop::msg::fragment_frames(
            GiopVersion::V1_2, order, MessageType::Request, &body, max_body);
        // Flip bytes anywhere in the concatenated stream (headers and
        // bodies alike — size fields, flags, magic, everything).
        let total: usize = frames.iter().map(Vec::len).sum();
        for &(idx, xor) in &flips {
            if total == 0 {
                break;
            }
            let mut pos = idx % total;
            for f in frames.iter_mut() {
                if pos < f.len() {
                    f[pos] ^= xor;
                    break;
                }
                pos -= f.len();
            }
        }
        if do_truncate && !frames.is_empty() {
            let fi = cut % frames.len();
            let keep = cut % frames[fi].len().max(1);
            frames[fi].truncate(keep);
        }
        for f in &frames {
            if f.len() >= GIOP_HEADER_LEN {
                let arr: [u8; GIOP_HEADER_LEN] =
                    f[..GIOP_HEADER_LEN].try_into().unwrap();
                let _ = GiopHeader::decode(&arr);
            }
        }
        let _ = zc_giop::msg::reassemble(&frames);
    }
}

// ---------------------------------------------------------------------------
// Adversarial replay of the wire-taint pass's flagged sites: lying
// `msg_size` fields, hostile fragment trains, and hostile count fields in
// service contexts must land as errors — never panics — and must never
// allocate past MAX_GIOP_MESSAGE. A counting global allocator measures the
// peak live-byte delta across each hostile decode.
// ---------------------------------------------------------------------------

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use zc_giop::{DepositManifest as Manifest, ServiceContext, MAX_GIOP_MESSAGE, SVC_CTX_DEPOSIT};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Run `f` with the peak counter rebased to the current live total and
/// return `(result, peak delta in bytes)`. A gate serializes measuring
/// sections; concurrent non-measuring tests only add kilobyte-scale noise,
/// far under the `MAX_GIOP_MESSAGE` assertion bound.
fn measured_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    static GATE: Mutex<()> = Mutex::new(());
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(base);
    (r, peak)
}

fn u32_wire(v: u32, order: ByteOrder) -> [u8; 4] {
    match order {
        ByteOrder::Big => v.to_be_bytes(),
        ByteOrder::Little => v.to_le_bytes(),
    }
}

proptest! {
    /// A frame whose header announces far more body than the frame carries
    /// must be rejected by reassembly without panicking — and without the
    /// announced size ever reaching an allocator. This replays the
    /// `reassemble` sites the taint pass flagged: the body pre-reservation
    /// and the per-fragment length accounting.
    #[test]
    fn prop_hostile_msg_size_errors_bounded(
        body in proptest::collection::vec(any::<u8>(), 1..2048),
        max_body in 32usize..256,
        order in orders(),
        hostile in 4096u32..u32::MAX,
        victim in any::<usize>(),
    ) {
        let mut frames = zc_giop::msg::fragment_frames(
            GiopVersion::V1_2, order, MessageType::Request, &body, max_body);
        // Overwrite one frame's msg_size field (bytes 8..12 of the fixed
        // header) with a lie much larger than any actual fragment body.
        let fi = victim % frames.len();
        frames[fi][8..12].copy_from_slice(&u32_wire(hostile, order));
        let (res, peak) = measured_peak(|| zc_giop::msg::reassemble(&frames));
        prop_assert!(
            res.is_err(),
            "frame {} announcing {} bytes must be rejected", fi, hostile
        );
        prop_assert!(
            peak <= MAX_GIOP_MESSAGE as usize,
            "hostile msg_size drove a {peak} byte peak"
        );
    }

    /// Multi-profile (object group) IORs with tagged components survive a
    /// marshal/demarshal round trip and the `IOR:<hex>` string form.
    #[test]
    fn prop_group_ior_roundtrip_with_components(
        type_id in "[ -~]{0,40}",
        replicas in proptest::collection::vec(
            ("[a-z0-9.]{1,20}", any::<u16>(), proptest::collection::vec(any::<u8>(), 0..16)),
            1..6,
        ),
        comps in proptest::collection::vec(
            (1u32..1000, proptest::collection::vec(any::<u8>(), 0..16)),
            0..4,
        ),
    ) {
        let members: Vec<(&str, u16, &[u8])> = replicas
            .iter()
            .map(|(h, p, k)| (h.as_str(), *p, k.as_slice()))
            .collect();
        let mut ior = Ior::new_group(&type_id, &members);
        // Components ride on the first profile; relay must be lossless.
        if let Some(TaggedProfile::Iiop(p)) = ior.profiles.first_mut() {
            p.components = comps
                .iter()
                .map(|(tag, data)| zc_giop::TaggedComponent { tag: *tag, data: data.clone() })
                .collect();
        }
        let s = ior.to_ior_string();
        let back = Ior::from_ior_string(&s).unwrap();
        prop_assert_eq!(&back, &ior);
        prop_assert_eq!(back.iiop_profiles().count(), replicas.len());
        prop_assert_eq!(back.to_ior_string(), s);
    }

    /// A valid multi-profile group IOR with random byte flips and/or a
    /// truncation never panics the IOR decoder — the profile count, the
    /// per-profile encapsulation lengths, and the component counts are all
    /// attacker-reachable, and every corruption must land as `Err`.
    #[test]
    fn prop_mutated_multi_profile_ior_never_panics(
        replicas in proptest::collection::vec(
            ("[a-z0-9.]{1,20}", any::<u16>(), proptest::collection::vec(any::<u8>(), 0..16)),
            1..6,
        ),
        comp_data in proptest::collection::vec(any::<u8>(), 0..16),
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255u8), 0..8),
        cut in any::<usize>(),
        do_truncate: bool,
    ) {
        let members: Vec<(&str, u16, &[u8])> = replicas
            .iter()
            .map(|(h, p, k)| (h.as_str(), *p, k.as_slice()))
            .collect();
        let mut ior = Ior::new_group("IDL:zcorba/Group:1.0", &members);
        if let Some(TaggedProfile::Iiop(p)) = ior.profiles.first_mut() {
            p.components = vec![zc_giop::TaggedComponent { tag: 77, data: comp_data }];
        }
        let mut enc = CdrEncoder::native();
        enc.write_octet(enc.order().flag() as u8);
        ior.marshal(&mut enc).unwrap();
        let mut bytes = enc.finish_stream();
        for &(idx, xor) in &flips {
            let pos = idx % bytes.len();
            bytes[pos] ^= xor;
        }
        if do_truncate {
            bytes.truncate(cut % bytes.len());
        }
        if !bytes.is_empty() {
            let order = ByteOrder::from_flag(bytes[0] & 1 == 1);
            let mut dec = CdrDecoder::new(&bytes, order);
            if dec.read_octet().is_ok() {
                let _ = Ior::demarshal(&mut dec);
            }
        }
        // The hex string path wraps the same decoder and must not panic
        // either.
        let mut s = String::with_capacity(4 + bytes.len() * 2);
        s.push_str("IOR:");
        for b in &bytes {
            s.push_str(&format!("{b:02x}"));
        }
        let _ = Ior::from_ior_string(&s);
    }

    /// Hostile profile and component counts in an IOR — millions announced
    /// over a handful of bytes — must error with bounded allocation. These
    /// replay the `demarshal_ior` and `demarshal_body` sizing sites, which
    /// clamp through `bounded_capacity`.
    #[test]
    fn prop_hostile_ior_counts_error_bounded(
        announced in 64u32..u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..32),
        order in orders(),
    ) {
        // Profile count with almost no bytes behind it: type_id (empty
        // string = 4-byte length + NUL), then the lying count.
        let mut enc = CdrEncoder::new(order);
        enc.write_string("");
        enc.write_u32(announced);
        let mut ior_bytes = enc.finish_stream();
        ior_bytes.extend_from_slice(&tail);

        let (res, peak) = measured_peak(|| {
            Ior::demarshal(&mut CdrDecoder::new(&ior_bytes, order))
        });
        prop_assert!(res.is_err(), "a lying profile count of {announced} must error");
        prop_assert!(
            peak <= MAX_GIOP_MESSAGE as usize,
            "hostile profile count drove a {peak} byte peak"
        );
    }

    /// Hostile count fields in the service-context layer: a context list
    /// announcing millions of entries over a few bytes, and a deposit
    /// manifest announcing millions of block lengths, must both error with
    /// bounded allocation. These replay the `demarshal_list` and
    /// `DepositManifest::from_context` sizing sites.
    #[test]
    fn prop_hostile_context_counts_error_bounded(
        announced in 8u32..u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..32),
        order in orders(),
    ) {
        // Context list: each entry needs at least 8 bytes (id + length),
        // so `announced` entries over <32 bytes cannot decode.
        let mut list_bytes = u32_wire(announced, order).to_vec();
        list_bytes.extend_from_slice(&tail);

        // Deposit manifest: flag octet, block count, then u64 lengths —
        // the announced count has no bytes behind it.
        let mut data = vec![order.flag() as u8, 0, 0, 0];
        data.extend_from_slice(&u32_wire(announced, order));
        data.extend_from_slice(&tail);
        let ctx = ServiceContext { id: SVC_CTX_DEPOSIT, data };

        let (all_err, peak) = measured_peak(|| {
            ServiceContext::demarshal_list(&mut CdrDecoder::new(&list_bytes, order)).is_err()
                && Manifest::from_context(&ctx).is_err()
        });
        prop_assert!(all_err, "a lying count of {} must error", announced);
        prop_assert!(
            peak <= MAX_GIOP_MESSAGE as usize,
            "hostile count drove a {peak} byte peak"
        );
    }
}

#[test]
fn iiop_profile_struct_is_public() {
    // compile-time check that the profile type is usable downstream
    let p = IiopProfile {
        version: GiopVersion::V1_0,
        host: "h".into(),
        port: 1,
        object_key: vec![],
        components: vec![],
    };
    assert_eq!(p.port, 1);
    assert_eq!(p.endpoint(), ("h".to_string(), 1));
}
