//! Property tests: GIOP framing, fragmentation, IORs and headers round-trip
//! under arbitrary inputs; decoders never panic on garbage.

use proptest::prelude::*;

use zc_cdr::{ByteOrder, CdrDecoder, CdrEncoder};
use zc_giop::{
    DepositManifest, GiopHeader, GiopVersion, Handshake, IiopProfile, Ior, MessageType,
    ReplyHeader, ReplyStatus, RequestHeader, TaggedProfile, GIOP_HEADER_LEN,
};

fn orders() -> impl Strategy<Value = ByteOrder> {
    prop_oneof![Just(ByteOrder::Big), Just(ByteOrder::Little)]
}

proptest! {
    #[test]
    fn prop_giop_header_roundtrip(
        size in 0u32..1_000_000,
        order in orders(),
        mt in 0u8..8,
    ) {
        let h = GiopHeader::new(
            GiopVersion::V1_2,
            order,
            MessageType::from_octet(mt).unwrap(),
            size,
        );
        prop_assert_eq!(GiopHeader::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn prop_header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), GIOP_HEADER_LEN..=GIOP_HEADER_LEN)) {
        let arr: [u8; GIOP_HEADER_LEN] = bytes.try_into().unwrap();
        let _ = GiopHeader::decode(&arr);
    }

    #[test]
    fn prop_fragmentation_roundtrip(
        body in proptest::collection::vec(any::<u8>(), 0..20_000),
        max_body in 1usize..4096,
        order in orders(),
    ) {
        let frames = zc_giop::msg::fragment_frames(
            GiopVersion::V1_2, order, MessageType::Request, &body, max_body);
        let (mt, back) = zc_giop::msg::reassemble(&frames).unwrap();
        prop_assert_eq!(mt, MessageType::Request);
        prop_assert_eq!(back, body);
    }

    #[test]
    fn prop_request_header_roundtrip(
        id: u32,
        expected: bool,
        key in proptest::collection::vec(any::<u8>(), 0..64),
        op in "[a-zA-Z_][a-zA-Z0-9_]{0,30}",
        order in orders(),
    ) {
        let mut h = RequestHeader::new(id, key, &op);
        h.response_expected = expected;
        let mut enc = CdrEncoder::new(order);
        h.marshal(&mut enc).unwrap();
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, order);
        prop_assert_eq!(RequestHeader::demarshal(&mut dec).unwrap(), h);
    }

    #[test]
    fn prop_reply_header_roundtrip(id: u32, status in 0u32..4, order in orders()) {
        let h = ReplyHeader {
            service_contexts: vec![],
            request_id: id,
            status: ReplyStatus::from_u32(status).unwrap(),
        };
        let mut enc = CdrEncoder::new(order);
        h.marshal(&mut enc).unwrap();
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, order);
        prop_assert_eq!(ReplyHeader::demarshal(&mut dec).unwrap(), h);
    }

    #[test]
    fn prop_manifest_roundtrip(lengths in proptest::collection::vec(any::<u64>(), 0..50)) {
        let m = DepositManifest { block_lengths: lengths };
        let back = DepositManifest::from_context(&m.to_context()).unwrap().unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn prop_ior_string_roundtrip(
        type_id in "[ -~]{0,40}",
        host in "[a-z0-9.]{1,30}",
        port: u16,
        key in proptest::collection::vec(any::<u8>(), 0..32),
        foreign_tag in 1u32..1000,
        foreign_data in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut ior = Ior::new_iiop(&type_id, &host, port, &key);
        ior.profiles.push(TaggedProfile::Other { tag: foreign_tag, data: foreign_data });
        let s = ior.to_ior_string();
        let back = Ior::from_ior_string(&s).unwrap();
        prop_assert_eq!(&back, &ior);
        prop_assert_eq!(back.to_ior_string(), s);
    }

    #[test]
    fn prop_ior_parse_never_panics(s in "IOR:[0-9a-fA-F]{0,200}") {
        let _ = Ior::from_ior_string(&s);
    }

    #[test]
    fn prop_handshake_roundtrip(zc: bool, word in 1u8..16, page in 1u32..65536, arch in "[a-z0-9-]{1,20}") {
        let h = Handshake {
            byte_order: ByteOrder::native(),
            word_size: word,
            page_size: page,
            arch,
            zc_supported: zc,
        };
        prop_assert_eq!(Handshake::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn prop_handshake_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Handshake::decode(&bytes);
    }

    /// Negotiation is symmetric in its homogeneity/zero-copy verdicts.
    #[test]
    fn prop_negotiation_symmetric_verdict(zc_a: bool, zc_b: bool, foreign: bool) {
        let a = Handshake::local(zc_a);
        let b = if foreign { Handshake::foreign() } else { Handshake::local(zc_b) };
        let n1 = Handshake::negotiate(&a, &b);
        let n2 = Handshake::negotiate(&b, &a);
        prop_assert_eq!(n1.homogeneous, n2.homogeneous);
        prop_assert_eq!(n1.zero_copy, n2.zero_copy);
    }

    /// A valid framed GIOP stream with random byte flips and/or a
    /// truncation never panics header decoding or reassembly — every
    /// corruption lands as `Err`, never as a crash or a huge allocation.
    #[test]
    fn prop_mutated_stream_never_panics_decode(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        max_body in 32usize..512,
        order in orders(),
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255u8), 0..8),
        cut in any::<usize>(),
        do_truncate: bool,
    ) {
        let mut frames = zc_giop::msg::fragment_frames(
            GiopVersion::V1_2, order, MessageType::Request, &body, max_body);
        // Flip bytes anywhere in the concatenated stream (headers and
        // bodies alike — size fields, flags, magic, everything).
        let total: usize = frames.iter().map(Vec::len).sum();
        for &(idx, xor) in &flips {
            if total == 0 {
                break;
            }
            let mut pos = idx % total;
            for f in frames.iter_mut() {
                if pos < f.len() {
                    f[pos] ^= xor;
                    break;
                }
                pos -= f.len();
            }
        }
        if do_truncate && !frames.is_empty() {
            let fi = cut % frames.len();
            let keep = cut % frames[fi].len().max(1);
            frames[fi].truncate(keep);
        }
        for f in &frames {
            if f.len() >= GIOP_HEADER_LEN {
                let arr: [u8; GIOP_HEADER_LEN] =
                    f[..GIOP_HEADER_LEN].try_into().unwrap();
                let _ = GiopHeader::decode(&arr);
            }
        }
        let _ = zc_giop::msg::reassemble(&frames);
    }
}

#[test]
fn iiop_profile_struct_is_public() {
    // compile-time check that the profile type is usable downstream
    let p = IiopProfile {
        version: GiopVersion::V1_0,
        host: "h".into(),
        port: 1,
        object_key: vec![],
    };
    assert_eq!(p.port, 1);
}
