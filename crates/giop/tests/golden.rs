//! Golden wire-format tests: the exact bytes of canonical GIOP artifacts.
//!
//! These pin the wire representation so that refactors of the encoder
//! cannot silently change what goes on the network — the property that
//! keeps independently built zcorba processes interoperable.

use zc_cdr::{ByteOrder, CdrEncoder};
use zc_giop::{
    frame_msg, GiopHeader, GiopVersion, Ior, MessageType, RequestHeader, GIOP_HEADER_LEN,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn golden_giop_header_big_endian() {
    let h = GiopHeader::new(
        GiopVersion::V1_2,
        ByteOrder::Big,
        MessageType::Request,
        0x1234,
    );
    // GIOP | 1 2 | flags=0 (BE, no frag) | type=0 | size BE
    assert_eq!(hex(&h.encode()), "47494f500102000000001234");
    assert_eq!(h.encode().len(), GIOP_HEADER_LEN);
}

#[test]
fn golden_giop_header_little_endian() {
    let h = GiopHeader::new(GiopVersion::V1_0, ByteOrder::Little, MessageType::Reply, 7);
    // flags=1 (LE), type=1, size LE
    assert_eq!(
        hex(&h.encode()),
        "47494f50010001010700000000000000"[..24].to_string()
    );
}

#[test]
fn golden_request_header_body() {
    // A canonical request: no service contexts, id 1, response expected,
    // 4-byte key "key\0" spelled out, operation "op".
    let h = RequestHeader {
        service_contexts: vec![],
        request_id: 1,
        response_expected: true,
        object_key: b"key".to_vec(),
        operation: "op".to_string(),
    };
    let mut enc = CdrEncoder::new(ByteOrder::Big);
    h.marshal(&mut enc).unwrap();
    let bytes = enc.finish_stream();
    // contexts count(4) | request id(4) | bool(1) + pad(3) |
    // key len(4) + "key" + pad(1) | op len(4)="op\0"(3)... | principal(4)
    let expected = concat!(
        "00000000", // 0 service contexts
        "00000001", // request id 1
        "01",       // response expected
        "000000",   // padding to 4
        "00000003", // key length 3
        "6b6579",   // "key"
        "00",       // pad to 4 for the op-length ulong
        "00000003", // operation length incl NUL
        "6f7000",   // "op\0"
        "00",       // pad (op ended at odd offset; ulong aligns)
        "00000000", // principal: empty sequence
    );
    assert_eq!(hex(&bytes), expected);
}

#[test]
fn golden_frame_concatenation() {
    let f = frame_msg(
        GiopVersion::V1_0,
        ByteOrder::Big,
        MessageType::CloseConnection,
        &[],
    );
    assert_eq!(
        hex(&f),
        "47494f50010000050000000000000000"[..24].to_string()
    );
}

#[test]
fn golden_ior_string_is_stable() {
    // The IOR string of a fixed reference must never change (users persist
    // IOR strings in files and naming services).
    let ior = Ior::new_iiop("IDL:g/X:1.0", "h", 1, b"k");
    let s = ior.to_ior_string();
    // Re-parsing and restringifying is the identity.
    assert_eq!(Ior::from_ior_string(&s).unwrap().to_ior_string(), s);
    // And the exact text is pinned (native little-endian encapsulation).
    if ByteOrder::native() == ByteOrder::Little {
        assert_eq!(
            s,
            "IOR:010000000c00000049444c3a672f583a312e3000010000000000000011000000010102000200000068000100010000006b"
        );
    }
}

#[test]
fn golden_handshake_frame() {
    // Handshake bytes for a fixed declaration (must stay parseable by old
    // peers; pin the layout).
    let h = zc_giop::Handshake {
        byte_order: ByteOrder::Little,
        word_size: 8,
        page_size: 4096,
        arch: "x".to_string(),
        zc_supported: true,
    };
    let bytes = h.encode();
    assert_eq!(&bytes[..4], b"ZCH1");
    assert_eq!(bytes[4], 1, "LE flag");
    assert_eq!(bytes[5], 8, "word size");
    assert_eq!(bytes[6], 1, "zc flag");
    // page size LE at offset 8 (after 1 pad byte to align the ulong)
    assert_eq!(&bytes[8..12], &4096u32.to_le_bytes());
}
