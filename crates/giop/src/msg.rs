//! The GIOP message header and framing.

use zc_cdr::{endian, ByteOrder};

use crate::{GiopError, GiopResult, MAX_GIOP_MESSAGE};

/// The four magic bytes opening every GIOP message.
pub const GIOP_MAGIC: [u8; 4] = *b"GIOP";

/// Length of the fixed GIOP message header.
pub const GIOP_HEADER_LEN: usize = 12;

/// Protocol version. We speak 1.0 and 1.2 (1.2 adds bidirectional use and
/// the fragment bit semantics we rely on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GiopVersion {
    /// Major version (always 1).
    pub major: u8,
    /// Minor version (0 or 2).
    pub minor: u8,
}

impl GiopVersion {
    /// GIOP 1.0 — the version MICO spoke in the paper's era.
    pub const V1_0: GiopVersion = GiopVersion { major: 1, minor: 0 };
    /// GIOP 1.2.
    pub const V1_2: GiopVersion = GiopVersion { major: 1, minor: 2 };

    fn validate(self) -> GiopResult<GiopVersion> {
        if self.major == 1 && (self.minor == 0 || self.minor == 2) {
            Ok(self)
        } else {
            Err(GiopError::BadVersion(self.major, self.minor))
        }
    }
}

impl std::fmt::Display for GiopVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// The flags octet of the GIOP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GiopFlags {
    /// Byte order of the message body (bit 0).
    pub order: ByteOrder,
    /// More fragments follow (bit 1).
    pub more_fragments: bool,
}

impl GiopFlags {
    /// Flags for a complete (unfragmented) message in `order`.
    pub fn complete(order: ByteOrder) -> GiopFlags {
        GiopFlags {
            order,
            more_fragments: false,
        }
    }

    /// Encode to the wire octet.
    pub fn to_octet(self) -> u8 {
        (self.order.flag() as u8) | ((self.more_fragments as u8) << 1)
    }

    /// Decode from the wire octet (unknown bits are reserved and ignored).
    pub fn from_octet(b: u8) -> GiopFlags {
        GiopFlags {
            order: ByteOrder::from_flag(b & 1 == 1),
            more_fragments: b & 2 == 2,
        }
    }
}

/// GIOP message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageType {
    /// Client → server method invocation.
    Request = 0,
    /// Server → client result.
    Reply = 1,
    /// Client cancels an outstanding request.
    CancelRequest = 2,
    /// Client asks where an object lives.
    LocateRequest = 3,
    /// Server answers a LocateRequest.
    LocateReply = 4,
    /// Orderly connection shutdown.
    CloseConnection = 5,
    /// Protocol error notification.
    MessageError = 6,
    /// Continuation of a fragmented message.
    Fragment = 7,
}

impl MessageType {
    /// Decode from the wire octet.
    pub fn from_octet(b: u8) -> GiopResult<MessageType> {
        Ok(match b {
            0 => MessageType::Request,
            1 => MessageType::Reply,
            2 => MessageType::CancelRequest,
            3 => MessageType::LocateRequest,
            4 => MessageType::LocateReply,
            5 => MessageType::CloseConnection,
            6 => MessageType::MessageError,
            7 => MessageType::Fragment,
            other => return Err(GiopError::BadMessageType(other)),
        })
    }
}

/// The fixed 12-byte GIOP message header:
/// `magic(4) | version(2) | flags(1) | msg_type(1) | msg_size(4)`.
///
/// `msg_size` counts the body bytes following the header and is encoded in
/// the byte order announced by the flags octet. Conveniently, 12 bytes keeps
/// the body 4- and 8-aligned when the header lands on an aligned address —
/// CDR alignment in the body is computed relative to the body start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GiopHeader {
    /// Protocol version.
    pub version: GiopVersion,
    /// Flags (byte order + fragmentation).
    pub flags: GiopFlags,
    /// Message type.
    pub msg_type: MessageType,
    /// Body length in bytes.
    pub msg_size: u32,
}

impl GiopHeader {
    /// Header for a complete message.
    pub fn new(
        version: GiopVersion,
        order: ByteOrder,
        msg_type: MessageType,
        msg_size: u32,
    ) -> GiopHeader {
        GiopHeader {
            version,
            flags: GiopFlags::complete(order),
            msg_type,
            msg_size,
        }
    }

    /// Serialize to the fixed 12 bytes.
    pub fn encode(&self) -> [u8; GIOP_HEADER_LEN] {
        let mut out = [0u8; GIOP_HEADER_LEN];
        // zc-audit: allow(control-plane) — fixed 12-byte GIOP header, no payload bytes
        out[..4].copy_from_slice(&GIOP_MAGIC);
        out[4] = self.version.major;
        out[5] = self.version.minor;
        out[6] = self.flags.to_octet();
        out[7] = self.msg_type as u8;
        // zc-audit: allow(control-plane) — header size field, four bytes
        out[8..12].copy_from_slice(&endian::write_u32(self.flags.order, self.msg_size));
        out
    }

    /// Parse from the fixed 12 bytes, validating magic, version, type and
    /// the size limit.
    pub fn decode(bytes: &[u8; GIOP_HEADER_LEN]) -> GiopResult<GiopHeader> {
        // Constant indices into the fixed 12-byte array: infallible, and
        // panic-free even on hostile input.
        let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if magic != GIOP_MAGIC {
            return Err(GiopError::BadMagic(magic));
        }
        let version = GiopVersion {
            major: bytes[4],
            minor: bytes[5],
        }
        .validate()?;
        let flags = GiopFlags::from_octet(bytes[6]);
        let msg_type = MessageType::from_octet(bytes[7])?;
        let msg_size = endian::read_u32(flags.order, &bytes[8..12]);
        if msg_size as u64 > MAX_GIOP_MESSAGE {
            return Err(GiopError::MessageTooLarge(msg_size as u64));
        }
        Ok(GiopHeader {
            version,
            flags,
            msg_type,
            msg_size,
        })
    }
}

/// Frame a complete GIOP message: header followed by body.
pub fn frame(
    version: GiopVersion,
    order: ByteOrder,
    msg_type: MessageType,
    body: &[u8],
) -> Vec<u8> {
    let header = GiopHeader::new(version, order, msg_type, body.len() as u32);
    let mut out = Vec::with_capacity(GIOP_HEADER_LEN + body.len());
    // zc-audit: allow(control-plane) — 12-byte header prefix
    out.extend_from_slice(&header.encode());
    // zc-audit: allow(copy) — control frames aggregate header+body into one send buffer; accounted as SocketSend
    out.extend_from_slice(body);
    out
}

/// Split a large body into a first message plus `Fragment` continuations of
/// at most `max_body` bytes each, setting the more-fragments bit on all but
/// the last. GIOP 1.2 semantics (fragments carry the request id as their
/// first ulong; callers include it in each chunk).
pub fn fragment_frames(
    version: GiopVersion,
    order: ByteOrder,
    msg_type: MessageType,
    body: &[u8],
    max_body: usize,
) -> Vec<Vec<u8>> {
    assert!(max_body > 0, "fragment body size must be positive");
    if body.len() <= max_body {
        return vec![frame(version, order, msg_type, body)];
    }
    let mut frames = Vec::new();
    let chunks: Vec<&[u8]> = body.chunks(max_body).collect();
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.into_iter().enumerate() {
        let mt = if i == 0 {
            msg_type
        } else {
            MessageType::Fragment
        };
        let mut header = GiopHeader::new(version, order, mt, chunk.len() as u32);
        header.flags.more_fragments = i != last;
        let mut f = Vec::with_capacity(GIOP_HEADER_LEN + chunk.len());
        // zc-audit: allow(control-plane) — per-fragment 12-byte header
        f.extend_from_slice(&header.encode());
        // zc-audit: allow(copy) — software fragmentation copies each chunk; this models the KernelFrag layer
        f.extend_from_slice(chunk);
        frames.push(f);
    }
    frames
}

/// Reassemble frames produced by [`fragment_frames`] back into
/// `(msg_type, body)`. Returns an error when a continuation is not a
/// `Fragment` or the final frame still announces more fragments.
pub fn reassemble(frames: &[Vec<u8>]) -> GiopResult<(MessageType, Vec<u8>)> {
    // Bounded upfront reservation: the body grows incrementally toward the
    // running total, which is itself capped at MAX_GIOP_MESSAGE below, so a
    // hostile fragment train can never out-allocate a single legal message.
    let mut body = Vec::with_capacity(zc_buffers::bounded_capacity(
        frames.first().map_or(0, |f| f.len() as u64),
        MAX_GIOP_MESSAGE,
    ));
    let mut msg_type = None;
    let mut total: u64 = 0;
    let last = frames.len().saturating_sub(1);
    for (i, f) in frames.iter().enumerate() {
        if f.len() < GIOP_HEADER_LEN {
            return Err(GiopError::BadMagic([0; 4]));
        }
        let Ok(hdr_bytes) = <[u8; GIOP_HEADER_LEN]>::try_from(&f[..GIOP_HEADER_LEN]) else {
            // Length checked above; an error return keeps hostile input
            // away from any panic.
            return Err(GiopError::BadMagic([0; 4]));
        };
        let hdr = GiopHeader::decode(&hdr_bytes)?;
        // `decode` has validated msg_size <= MAX_GIOP_MESSAGE; the rebind
        // through the clamp makes that bound local and explicit.
        let frag_len = (hdr.msg_size as u64).min(MAX_GIOP_MESSAGE) as usize;
        match (i, hdr.msg_type) {
            (0, t) => msg_type = Some(t),
            (_, MessageType::Fragment) => {}
            (_, t) => return Err(GiopError::BadMessageType(t as u8)),
        }
        if (i == last) == hdr.flags.more_fragments {
            return Err(GiopError::BadHandshake); // inconsistent fragment bits
        }
        if f.len() != GIOP_HEADER_LEN + frag_len {
            return Err(GiopError::MessageTooLarge(frag_len as u64));
        }
        // Per-fragment sizes are individually capped, but their *sum* must
        // be too: otherwise a long fragment train OOMs the receiver one
        // legal fragment at a time.
        total = total.saturating_add(frag_len as u64);
        if total > MAX_GIOP_MESSAGE {
            return Err(GiopError::MessageTooLarge(total));
        }
        // zc-audit: allow(copy) — software reassembly concatenates fragment bodies; this models the KernelDefrag layer
        body.extend_from_slice(&f[GIOP_HEADER_LEN..]);
    }
    Ok((msg_type.ok_or(GiopError::BadHandshake)?, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip_both_orders() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let h = GiopHeader::new(GiopVersion::V1_2, order, MessageType::Request, 1234);
            let bytes = h.encode();
            assert_eq!(&bytes[..4], b"GIOP");
            let back = GiopHeader::decode(&bytes).unwrap();
            assert_eq!(back, h);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let h = GiopHeader::new(GiopVersion::V1_0, ByteOrder::Big, MessageType::Reply, 0);
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(matches!(
            GiopHeader::decode(&bytes),
            Err(GiopError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let h = GiopHeader::new(GiopVersion::V1_0, ByteOrder::Big, MessageType::Reply, 0);
        let mut bytes = h.encode();
        bytes[5] = 9;
        assert_eq!(GiopHeader::decode(&bytes), Err(GiopError::BadVersion(1, 9)));
    }

    #[test]
    fn bad_type_rejected() {
        let h = GiopHeader::new(GiopVersion::V1_0, ByteOrder::Big, MessageType::Reply, 0);
        let mut bytes = h.encode();
        bytes[7] = 42;
        assert_eq!(
            GiopHeader::decode(&bytes),
            Err(GiopError::BadMessageType(42))
        );
    }

    #[test]
    fn oversized_rejected() {
        let h = GiopHeader::new(
            GiopVersion::V1_0,
            ByteOrder::Big,
            MessageType::Request,
            u32::MAX,
        );
        let bytes = h.encode();
        assert!(matches!(
            GiopHeader::decode(&bytes),
            Err(GiopError::MessageTooLarge(_))
        ));
    }

    #[test]
    fn crafted_header_with_huge_length_rejected_before_allocation() {
        // A hand-built wire header claiming a ~4 GiB body, as a corrupted
        // or hostile peer would send it. Decode must fail with
        // MessageTooLarge (surfaced as a MARSHAL system exception by the
        // ORB) — the length field must never size an allocation.
        let mut bytes = [0u8; GIOP_HEADER_LEN];
        bytes[..4].copy_from_slice(b"GIOP");
        bytes[4] = 1; // major
        bytes[5] = 2; // minor
        bytes[6] = 1; // flags: little-endian
        bytes[7] = 0; // Request
        bytes[8..12].copy_from_slice(&0xFFFF_FFF0u32.to_le_bytes());
        assert_eq!(
            GiopHeader::decode(&bytes),
            Err(GiopError::MessageTooLarge(0xFFFF_FFF0))
        );
        // One byte above the limit is already too much…
        bytes[8..12].copy_from_slice(&((MAX_GIOP_MESSAGE as u32) + 1).to_le_bytes());
        assert!(matches!(
            GiopHeader::decode(&bytes),
            Err(GiopError::MessageTooLarge(_))
        ));
        // …while the limit itself still decodes.
        bytes[8..12].copy_from_slice(&(MAX_GIOP_MESSAGE as u32).to_le_bytes());
        assert!(GiopHeader::decode(&bytes).is_ok());
    }

    #[test]
    fn size_follows_flag_order() {
        let h = GiopHeader::new(
            GiopVersion::V1_0,
            ByteOrder::Little,
            MessageType::Request,
            1,
        );
        let bytes = h.encode();
        assert_eq!(bytes[8], 1, "little-endian size starts with LSB");
        let h = GiopHeader::new(GiopVersion::V1_0, ByteOrder::Big, MessageType::Request, 1);
        let bytes = h.encode();
        assert_eq!(bytes[11], 1, "big-endian size ends with LSB");
    }

    #[test]
    fn frame_concatenates_header_and_body() {
        let f = frame(
            GiopVersion::V1_2,
            ByteOrder::Little,
            MessageType::Request,
            &[1, 2, 3],
        );
        assert_eq!(f.len(), GIOP_HEADER_LEN + 3);
        let hdr = GiopHeader::decode(&f[..12].try_into().unwrap()).unwrap();
        assert_eq!(hdr.msg_size, 3);
        assert_eq!(&f[12..], &[1, 2, 3]);
    }

    #[test]
    fn fragmentation_roundtrip() {
        let body: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let frames = fragment_frames(
            GiopVersion::V1_2,
            ByteOrder::Little,
            MessageType::Request,
            &body,
            1460,
        );
        assert!(frames.len() > 1);
        let (mt, back) = reassemble(&frames).unwrap();
        assert_eq!(mt, MessageType::Request);
        assert_eq!(back, body);
    }

    #[test]
    fn small_body_is_single_frame() {
        let frames = fragment_frames(
            GiopVersion::V1_0,
            ByteOrder::Big,
            MessageType::Reply,
            &[1, 2],
            1460,
        );
        assert_eq!(frames.len(), 1);
        let hdr = GiopHeader::decode(&frames[0][..12].try_into().unwrap()).unwrap();
        assert!(!hdr.flags.more_fragments);
    }

    #[test]
    fn truncated_fragment_stream_rejected() {
        let body = vec![0u8; 5000];
        let mut frames = fragment_frames(
            GiopVersion::V1_2,
            ByteOrder::Little,
            MessageType::Request,
            &body,
            1024,
        );
        frames.pop(); // lose the final fragment
        assert!(reassemble(&frames).is_err());
    }

    #[test]
    fn flags_octet_roundtrip() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            for more in [false, true] {
                let f = GiopFlags {
                    order,
                    more_fragments: more,
                };
                assert_eq!(GiopFlags::from_octet(f.to_octet()), f);
            }
        }
    }
}
