//! Interoperable Object References (IOR) with IIOP profiles.

use zc_cdr::{ByteOrder, CdrDecoder, CdrEncoder, CdrResult};

use crate::msg::GiopVersion;
use crate::{GiopError, GiopResult};

/// OMG tag for the IIOP profile.
pub const TAG_INTERNET_IOP: u32 = 0;

/// Capacity clamp for wire-announced profile counts: an object group lists
/// one profile per replica, so anything past this is a hostile count field,
/// not a deployment.
pub const MAX_IOR_PROFILES: u64 = 16;

/// Capacity clamp for wire-announced tagged-component counts per profile.
pub const MAX_PROFILE_COMPONENTS: u64 = 16;

/// One tagged component inside an IIOP profile, kept verbatim (this ORB
/// relays components losslessly but interprets none of them yet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedComponent {
    /// OMG component tag.
    pub tag: u32,
    /// Raw component data.
    pub data: Vec<u8>,
}

/// An IIOP profile: where an object lives and how to name it there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IiopProfile {
    /// IIOP (GIOP) version the endpoint speaks.
    pub version: GiopVersion,
    /// Hostname or dotted address.
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Opaque object key within the server ORB.
    pub object_key: Vec<u8>,
    /// Tagged components. Encoded only when non-empty (this dialect keeps
    /// component-free profiles byte-identical to the historical form), and
    /// preserved verbatim on relay.
    pub components: Vec<TaggedComponent>,
}

impl IiopProfile {
    /// A component-free profile.
    pub fn new(version: GiopVersion, host: &str, port: u16, object_key: &[u8]) -> IiopProfile {
        IiopProfile {
            version,
            host: host.to_string(),
            port,
            object_key: object_key.to_vec(),
            components: Vec::new(),
        }
    }

    /// The `(host, port)` endpoint this profile names.
    pub fn endpoint(&self) -> (String, u16) {
        (self.host.clone(), self.port)
    }

    /// Encode the profile body (an encapsulation).
    fn marshal_body(&self, enc: &mut CdrEncoder) {
        enc.write_encapsulation(|e| {
            e.write_octet(self.version.major);
            e.write_octet(self.version.minor);
            e.write_string(&self.host);
            e.write_u16(self.port);
            e.write_octet_seq(&self.object_key);
            if !self.components.is_empty() {
                e.write_u32(self.components.len() as u32);
                for c in &self.components {
                    e.write_u32(c.tag);
                    e.write_octet_seq(&c.data);
                }
            }
        });
    }

    fn demarshal_body(dec: &mut CdrDecoder<'_>) -> CdrResult<IiopProfile> {
        dec.read_encapsulation(|e| {
            let major = e.read_octet()?;
            let minor = e.read_octet()?;
            let host = e.read_string()?;
            let port = e.read_u16()?;
            let object_key = e.read_octet_seq()?;
            let mut components = Vec::new();
            if e.remaining() > 0 {
                let count = e.read_u32()?;
                components.reserve(zc_buffers::bounded_capacity(
                    count as u64,
                    MAX_PROFILE_COMPONENTS,
                ));
                for _ in 0..count {
                    let tag = e.read_u32()?;
                    let data = e.read_octet_seq()?;
                    components.push(TaggedComponent { tag, data });
                }
            }
            Ok(IiopProfile {
                version: GiopVersion { major, minor },
                host,
                port,
                object_key,
                components,
            })
        })
    }
}

/// A tagged profile: either a parsed IIOP profile or an opaque foreign one
/// (preserved byte-exactly so re-encoding an IOR we merely relayed is
/// lossless — a property real ORBs must maintain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaggedProfile {
    /// `TAG_INTERNET_IOP`.
    Iiop(IiopProfile),
    /// Any other tag, kept verbatim.
    Other {
        /// The profile tag.
        tag: u32,
        /// Raw encapsulated profile data.
        data: Vec<u8>,
    },
}

/// An Interoperable Object Reference: a repository type id plus one or more
/// profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ior {
    /// Repository id of the most derived interface (e.g.
    /// `IDL:zcorba/Transfer:1.0`), empty for anonymous references.
    pub type_id: String,
    /// Profiles, in preference order.
    pub profiles: Vec<TaggedProfile>,
}

impl Ior {
    /// Build a single-profile IIOP reference.
    pub fn new_iiop(type_id: &str, host: &str, port: u16, object_key: &[u8]) -> Ior {
        Ior {
            type_id: type_id.to_string(),
            profiles: vec![TaggedProfile::Iiop(IiopProfile::new(
                GiopVersion::V1_2,
                host,
                port,
                object_key,
            ))],
        }
    }

    /// Build an object-group reference: one IIOP profile per replica, in
    /// preference order (the first entry is the sticky primary).
    pub fn new_group(type_id: &str, replicas: &[(&str, u16, &[u8])]) -> Ior {
        Ior {
            type_id: type_id.to_string(),
            profiles: replicas
                .iter()
                .map(|(host, port, key)| {
                    TaggedProfile::Iiop(IiopProfile::new(GiopVersion::V1_2, host, *port, key))
                })
                .collect(),
        }
    }

    /// Merge several references into one object group: the type id of the
    /// first member plus every member's profiles, concatenated in argument
    /// order (so preference order is the argument order).
    pub fn merge_group(members: &[Ior]) -> GiopResult<Ior> {
        let first = members.first().ok_or(GiopError::NoIiopProfile)?;
        let mut group = Ior {
            type_id: first.type_id.clone(),
            profiles: Vec::with_capacity(members.iter().map(|m| m.profiles.len()).sum()),
        };
        for m in members {
            // Every member must actually be dialable, or the group would
            // silently drop a replica the operator thought was registered.
            m.iiop_profile()?;
            group.profiles.extend(m.profiles.iter().cloned());
        }
        Ok(group)
    }

    /// The first IIOP profile, if any.
    pub fn iiop_profile(&self) -> GiopResult<&IiopProfile> {
        self.iiop_profiles().next().ok_or(GiopError::NoIiopProfile)
    }

    /// All IIOP profiles, in preference order (an object group lists one
    /// per replica).
    pub fn iiop_profiles(&self) -> impl Iterator<Item = &IiopProfile> {
        self.profiles.iter().filter_map(|p| match p {
            TaggedProfile::Iiop(p) => Some(p),
            TaggedProfile::Other { .. } => None,
        })
    }

    /// Marshal onto a CDR stream.
    pub fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        enc.write_string(&self.type_id);
        enc.write_u32(self.profiles.len() as u32);
        for p in &self.profiles {
            match p {
                TaggedProfile::Iiop(prof) => {
                    enc.write_u32(TAG_INTERNET_IOP);
                    prof.marshal_body(enc);
                }
                TaggedProfile::Other { tag, data } => {
                    enc.write_u32(*tag);
                    enc.write_octet_seq(data);
                }
            }
        }
        Ok(())
    }

    /// Demarshal from a CDR stream.
    pub fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<Ior> {
        Ior::demarshal_ior(dec)
    }

    /// The actual multi-profile decoder. Registered by name as a zc-audit
    /// wire-taint entrypoint (zc-audit.toml `[taint] entrypoints`): the
    /// profile and component counts are attacker-controlled, so every
    /// count-driven allocation below must pass through `bounded_capacity`.
    fn demarshal_ior(dec: &mut CdrDecoder<'_>) -> CdrResult<Ior> {
        let type_id = dec.read_string()?;
        let count = dec.read_u32()?;
        let mut profiles =
            Vec::with_capacity(zc_buffers::bounded_capacity(count as u64, MAX_IOR_PROFILES));
        for _ in 0..count {
            let tag = dec.read_u32()?;
            if tag == TAG_INTERNET_IOP {
                profiles.push(TaggedProfile::Iiop(IiopProfile::demarshal_body(dec)?));
            } else {
                profiles.push(TaggedProfile::Other {
                    tag,
                    data: dec.read_octet_seq()?,
                });
            }
        }
        Ok(Ior { type_id, profiles })
    }

    /// The classic `IOR:<hex>` stringified form: the hex encoding of a CDR
    /// encapsulation (flag octet + marshaled IOR) in native order.
    pub fn to_ior_string(&self) -> String {
        let mut enc = CdrEncoder::native();
        enc.write_octet(enc.order().flag() as u8);
        self.marshal(&mut enc).expect("IOR marshal is infallible");
        let bytes = enc.finish_stream();
        let mut s = String::with_capacity(4 + bytes.len() * 2);
        s.push_str("IOR:");
        for b in bytes {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse an `IOR:<hex>` string.
    pub fn from_ior_string(s: &str) -> GiopResult<Ior> {
        let hex = s
            .strip_prefix("IOR:")
            .ok_or_else(|| GiopError::BadIorString(s.to_string()))?;
        if hex.len() % 2 != 0 || hex.is_empty() {
            return Err(GiopError::BadIorString(s.to_string()));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let b = u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| GiopError::BadIorString(s.to_string()))?;
            bytes.push(b);
        }
        let order = ByteOrder::from_flag(bytes[0] & 1 == 1);
        let mut dec = CdrDecoder::new(&bytes, order);
        dec.read_octet()?; // flag
        Ok(Ior::demarshal(&mut dec)?)
    }
}

impl std::fmt::Display for Ior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_ior_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ior {
        Ior::new_iiop("IDL:zcorba/Transfer:1.0", "10.0.0.7", 2809, b"transfer-1")
    }

    #[test]
    fn cdr_roundtrip_both_orders() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let ior = sample();
            let mut enc = CdrEncoder::new(order);
            ior.marshal(&mut enc).unwrap();
            let bytes = enc.finish_stream();
            let mut dec = CdrDecoder::new(&bytes, order);
            assert_eq!(Ior::demarshal(&mut dec).unwrap(), ior);
        }
    }

    #[test]
    fn string_roundtrip() {
        let ior = sample();
        let s = ior.to_ior_string();
        assert!(s.starts_with("IOR:"));
        assert!(s[4..].chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(Ior::from_ior_string(&s).unwrap(), ior);
    }

    #[test]
    fn iiop_profile_lookup() {
        let ior = sample();
        let p = ior.iiop_profile().unwrap();
        assert_eq!(p.host, "10.0.0.7");
        assert_eq!(p.port, 2809);
        assert_eq!(p.object_key, b"transfer-1");
    }

    #[test]
    fn foreign_profile_preserved_verbatim() {
        let mut ior = sample();
        ior.profiles.push(TaggedProfile::Other {
            tag: 0x4D454F57,
            data: vec![0xDE, 0xAD, 0xBE, 0xEF],
        });
        let s = ior.to_ior_string();
        let back = Ior::from_ior_string(&s).unwrap();
        assert_eq!(back, ior);
        // lossless relay: restringify identically
        assert_eq!(back.to_ior_string(), s);
    }

    #[test]
    fn no_iiop_profile_error() {
        let ior = Ior {
            type_id: "IDL:x:1.0".into(),
            profiles: vec![TaggedProfile::Other {
                tag: 99,
                data: vec![],
            }],
        };
        assert_eq!(ior.iiop_profile().unwrap_err(), GiopError::NoIiopProfile);
    }

    #[test]
    fn malformed_strings_rejected() {
        assert!(Ior::from_ior_string("NOPE:00").is_err());
        assert!(Ior::from_ior_string("IOR:").is_err());
        assert!(Ior::from_ior_string("IOR:0").is_err());
        assert!(Ior::from_ior_string("IOR:zz").is_err());
    }

    #[test]
    fn multi_profile_order_preserved() {
        let mut ior = sample();
        ior.profiles.push(TaggedProfile::Iiop(IiopProfile::new(
            GiopVersion::V1_0,
            "backup",
            1,
            &[1],
        )));
        let back = Ior::from_ior_string(&ior.to_ior_string()).unwrap();
        assert_eq!(back.profiles.len(), 2);
        assert_eq!(back.iiop_profile().unwrap().host, "10.0.0.7");
        let hosts: Vec<&str> = back.iiop_profiles().map(|p| p.host.as_str()).collect();
        assert_eq!(hosts, ["10.0.0.7", "backup"]);
    }

    #[test]
    fn group_constructor_lists_replicas_in_order() {
        let g = Ior::new_group(
            "IDL:zcorba/Transfer:1.0",
            &[
                ("primary", 2809, b"t".as_slice()),
                ("replica-a", 2810, b"t".as_slice()),
                ("replica-b", 2811, b"t".as_slice()),
            ],
        );
        let back = Ior::from_ior_string(&g.to_ior_string()).unwrap();
        let eps: Vec<(String, u16)> = back.iiop_profiles().map(|p| p.endpoint()).collect();
        assert_eq!(
            eps,
            [
                ("primary".to_string(), 2809),
                ("replica-a".to_string(), 2810),
                ("replica-b".to_string(), 2811)
            ]
        );
    }

    #[test]
    fn merge_group_concatenates_profiles() {
        let a = Ior::new_iiop("IDL:zcorba/Transfer:1.0", "a", 1, b"k");
        let b = Ior::new_iiop("IDL:zcorba/Transfer:1.0", "b", 2, b"k");
        let g = Ior::merge_group(&[a, b]).unwrap();
        assert_eq!(g.iiop_profiles().count(), 2);
        assert_eq!(g.iiop_profile().unwrap().host, "a");
        // Empty and non-dialable member sets are rejected.
        assert!(Ior::merge_group(&[]).is_err());
        let foreign = Ior {
            type_id: "IDL:x:1.0".into(),
            profiles: vec![TaggedProfile::Other {
                tag: 7,
                data: vec![],
            }],
        };
        assert!(Ior::merge_group(&[foreign]).is_err());
    }

    #[test]
    fn tagged_components_roundtrip_losslessly() {
        let mut ior = sample();
        if let TaggedProfile::Iiop(p) = &mut ior.profiles[0] {
            p.components.push(TaggedComponent {
                tag: 3, // TAG_ALTERNATE_IIOP_ADDRESS
                data: vec![1, 2, 3, 4],
            });
            p.components.push(TaggedComponent {
                tag: 0x5A,
                data: vec![],
            });
        }
        let s = ior.to_ior_string();
        let back = Ior::from_ior_string(&s).unwrap();
        assert_eq!(back, ior);
        assert_eq!(back.to_ior_string(), s);
        assert_eq!(back.iiop_profile().unwrap().components.len(), 2);
    }
}
