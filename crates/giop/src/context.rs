//! GIOP service contexts, including the zcorba deposit manifest.

use zc_cdr::wire::zc_vendor_id;
use zc_cdr::{CdrDecoder, CdrEncoder, CdrResult};

/// Service-context id for the zcorba deposit manifest. Built from the
/// shared `ZC_TAG` ("ZC") so we stay inside the OMG "vendor" id space.
pub const SVC_CTX_DEPOSIT: u32 = zc_vendor_id(1);

/// Service-context id for negotiation echoes (diagnostics; the binding
/// negotiation itself happens in the connection handshake).
pub const SVC_CTX_NEGOTIATE: u32 = zc_vendor_id(2);

/// Service-context id for the zcorba trace context: propagates a request's
/// trace id so client and server flight-recorder spans can be correlated.
pub const SVC_CTX_TRACE: u32 = zc_vendor_id(3);

/// Service-context id for the zcorba zero-copy health report: each endpoint
/// piggybacks its cumulative receive-side speculation statistics so the
/// peer can decide to degrade its send path from zero-copy to copying.
pub const SVC_CTX_ZC_HEALTH: u32 = zc_vendor_id(4);

/// A single GIOP service context: an id plus opaque encapsulated data.
///
/// Standard CORBA receivers skip contexts they do not understand, which is
/// what keeps the deposit manifest interoperable: a non-ZC peer would never
/// see one (negotiation precedes use), and even if it did the request body
/// remains self-contained.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceContext {
    /// Context identifier.
    pub id: u32,
    /// Raw context data (conventionally a CDR encapsulation).
    pub data: Vec<u8>,
}

impl ServiceContext {
    /// Marshal a service-context list (ulong count, then id + octet-seq
    /// data per entry).
    pub fn marshal_list(list: &[ServiceContext], enc: &mut CdrEncoder) -> CdrResult<()> {
        enc.write_u32(list.len() as u32);
        for ctx in list {
            enc.write_u32(ctx.id);
            enc.write_octet_seq(&ctx.data);
        }
        Ok(())
    }

    /// Demarshal a service-context list.
    pub fn demarshal_list(dec: &mut CdrDecoder<'_>) -> CdrResult<Vec<ServiceContext>> {
        let count = dec.read_u32()?;
        let mut out = Vec::with_capacity(zc_buffers::bounded_capacity(count as u64, 64));
        for _ in 0..count {
            let id = dec.read_u32()?;
            let data = dec.read_octet_seq()?;
            out.push(ServiceContext { id, data });
        }
        Ok(out)
    }

    /// Find a context by id.
    pub fn find(list: &[ServiceContext], id: u32) -> Option<&ServiceContext> {
        list.iter().find(|c| c.id == id)
    }
}

/// The deposit manifest: the control-path announcement of out-of-band data.
///
/// Carried as a service context on any Request or Reply whose body contains
/// deposit descriptors. It lists the byte length of every block, in
/// descriptor-index order, so the receiver's deposit callback can allocate
/// appropriately sized page-aligned buffers *before* the blocks arrive on
/// the data channel — the role played in the paper by the "GIOPRequest
/// header [that] contains the size of the data block that is needed by the
/// receiver to correctly receive the GIOPRequest message" (§4.4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DepositManifest {
    /// Byte length of each deposited block, in index order.
    pub block_lengths: Vec<u64>,
}

impl DepositManifest {
    /// Total payload bytes announced.
    pub fn total_bytes(&self) -> u64 {
        self.block_lengths.iter().sum()
    }

    /// Number of blocks announced.
    pub fn block_count(&self) -> usize {
        self.block_lengths.len()
    }

    /// Encode into a service context.
    pub fn to_context(&self) -> ServiceContext {
        let mut enc = CdrEncoder::native();
        enc.write_octet(enc.order().flag() as u8); // encapsulation-style flag
        enc.write_u32(self.block_lengths.len() as u32);
        for &len in &self.block_lengths {
            enc.write_u64(len);
        }
        ServiceContext {
            id: SVC_CTX_DEPOSIT,
            data: enc.finish_stream(),
        }
    }

    /// Decode from a service context previously produced by
    /// [`DepositManifest::to_context`]. Returns `None` if the id differs.
    pub fn from_context(ctx: &ServiceContext) -> CdrResult<Option<DepositManifest>> {
        if ctx.id != SVC_CTX_DEPOSIT {
            return Ok(None);
        }
        let flag = *ctx
            .data
            .first()
            .ok_or(zc_cdr::CdrError::OutOfBounds { need: 1, have: 0 })?;
        let order = zc_cdr::ByteOrder::from_flag(flag & 1 == 1);
        let mut dec = CdrDecoder::new(&ctx.data, order);
        dec.read_octet()?; // flag
        let count = dec.read_u32()?;
        let mut block_lengths =
            Vec::with_capacity(zc_buffers::bounded_capacity(count as u64, 1024));
        for _ in 0..count {
            block_lengths.push(dec.read_u64()?);
        }
        Ok(Some(DepositManifest { block_lengths }))
    }

    /// Scan a context list for a manifest.
    pub fn find_in(list: &[ServiceContext]) -> CdrResult<Option<DepositManifest>> {
        match ServiceContext::find(list, SVC_CTX_DEPOSIT) {
            Some(ctx) => DepositManifest::from_context(ctx),
            None => Ok(None),
        }
    }
}

/// The trace context: a 64-bit trace id stamped on a Request by the caller
/// and echoed into every event the receiver records while serving it, plus
/// the sender's send timestamp for wire-stage attribution. Like the deposit
/// manifest it travels as a CDR encapsulation (byte-order flag octet, then
/// the fields), so either endianness interoperates. A peer that does not
/// understand it skips it, per standard service-context rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// The caller-allocated trace id (`0` conventionally means untraced).
    pub trace_id: u64,
    /// The sender's trace-clock timestamp when the message was assembled
    /// (`zc_trace::now_ns`); `0` means unstamped. The receiver derives the
    /// wire stage (`arrival − sent_at_ns`), which is only meaningful when
    /// both endpoints share the trace clock — always true for the
    /// in-process Sim and loopback-TCP experiments this repo runs.
    pub sent_at_ns: u64,
    /// The caller's journey id: one per *logical* request, shared by every
    /// attempt (retry/failover/…) of it. `0` means "no journey" (a reply
    /// echo, a foreign peer, or the pre-journey wire format).
    pub journey_id: u64,
    /// 1-based attempt ordinal within the journey (`0` when unknown).
    pub attempt: u32,
    /// Cause tag of this attempt (`zc_trace::JourneyCause` discriminant:
    /// initial/retry/failover/shed-rotate/degrade-probe). Carried as a raw
    /// byte so a decoder never rejects a cause minted by a newer peer.
    pub cause: u8,
}

impl TraceContext {
    /// Encode into a service context.
    pub fn to_context(&self) -> ServiceContext {
        let mut enc = CdrEncoder::native();
        enc.write_octet(enc.order().flag() as u8); // encapsulation-style flag
        enc.write_u64(self.trace_id);
        enc.write_u64(self.sent_at_ns);
        enc.write_u64(self.journey_id);
        // Attempt ordinal and cause share one trailing word.
        enc.write_u64(((self.attempt as u64) << 8) | self.cause as u64);
        ServiceContext {
            id: SVC_CTX_TRACE,
            data: enc.finish_stream(),
        }
    }

    /// Decode from a service context previously produced by
    /// [`TraceContext::to_context`]. Returns `None` if the id differs.
    /// A context truncated before the trace id is an error; every field
    /// after it decodes leniently, so the pre-span format (trace id only)
    /// and the pre-journey format (trace id + timestamp) both still parse,
    /// with the missing fields reading as 0.
    pub fn from_context(ctx: &ServiceContext) -> CdrResult<Option<TraceContext>> {
        if ctx.id != SVC_CTX_TRACE {
            return Ok(None);
        }
        let flag = *ctx
            .data
            .first()
            .ok_or(zc_cdr::CdrError::OutOfBounds { need: 1, have: 0 })?;
        let order = zc_cdr::ByteOrder::from_flag(flag & 1 == 1);
        let mut dec = CdrDecoder::new(&ctx.data, order);
        dec.read_octet()?; // flag
        let trace_id = dec.read_u64()?;
        let sent_at_ns = dec.read_u64().unwrap_or_default();
        let journey_id = dec.read_u64().unwrap_or_default();
        let attempt_cause = dec.read_u64().unwrap_or_default();
        Ok(Some(TraceContext {
            trace_id,
            sent_at_ns,
            journey_id,
            attempt: (attempt_cause >> 8) as u32,
            cause: attempt_cause as u8,
        }))
    }

    /// Scan a context list for a trace context.
    pub fn find_in(list: &[ServiceContext]) -> CdrResult<Option<TraceContext>> {
        match ServiceContext::find(list, SVC_CTX_TRACE) {
            Some(ctx) => TraceContext::from_context(ctx),
            None => Ok(None),
        }
    }
}

/// The zero-copy health context: one endpoint's cumulative receive-side
/// speculation counters, piggybacked on Requests and Replies. The *sender*
/// of deposits reads the peer's report to learn whether its speculative
/// deposits actually land in place — the feedback signal behind per-
/// connection ZC→copy graceful degradation. Same encapsulation convention
/// as the other zcorba contexts (byte-order flag octet first); unknown to
/// foreign peers, who skip it per standard service-context rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ZcHealthContext {
    /// Receive speculations that held, since connection start.
    pub spec_hits: u64,
    /// Receive speculations that missed (fallback copies ran).
    pub spec_misses: u64,
}

impl ZcHealthContext {
    /// Encode into a service context.
    pub fn to_context(&self) -> ServiceContext {
        let mut enc = CdrEncoder::native();
        enc.write_octet(enc.order().flag() as u8); // encapsulation-style flag
        enc.write_u64(self.spec_hits);
        enc.write_u64(self.spec_misses);
        ServiceContext {
            id: SVC_CTX_ZC_HEALTH,
            data: enc.finish_stream(),
        }
    }

    /// Decode from a service context previously produced by
    /// [`ZcHealthContext::to_context`]. Returns `None` if the id differs.
    pub fn from_context(ctx: &ServiceContext) -> CdrResult<Option<ZcHealthContext>> {
        if ctx.id != SVC_CTX_ZC_HEALTH {
            return Ok(None);
        }
        let flag = *ctx
            .data
            .first()
            .ok_or(zc_cdr::CdrError::OutOfBounds { need: 1, have: 0 })?;
        let order = zc_cdr::ByteOrder::from_flag(flag & 1 == 1);
        let mut dec = CdrDecoder::new(&ctx.data, order);
        dec.read_octet()?; // flag
        let spec_hits = dec.read_u64()?;
        let spec_misses = dec.read_u64()?;
        Ok(Some(ZcHealthContext {
            spec_hits,
            spec_misses,
        }))
    }

    /// Scan a context list for a health report.
    pub fn find_in(list: &[ServiceContext]) -> CdrResult<Option<ZcHealthContext>> {
        match ServiceContext::find(list, SVC_CTX_ZC_HEALTH) {
            Some(ctx) => ZcHealthContext::from_context(ctx),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zc_cdr::ByteOrder;

    #[test]
    fn context_list_roundtrip() {
        let list = vec![
            ServiceContext {
                id: 1,
                data: vec![1, 2, 3],
            },
            ServiceContext {
                id: SVC_CTX_NEGOTIATE,
                data: vec![],
            },
        ];
        let mut enc = CdrEncoder::new(ByteOrder::Big);
        ServiceContext::marshal_list(&list, &mut enc).unwrap();
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, ByteOrder::Big);
        let back = ServiceContext::demarshal_list(&mut dec).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn manifest_roundtrip() {
        let m = DepositManifest {
            block_lengths: vec![4096, 0, 1 << 24, 12345],
        };
        let ctx = m.to_context();
        assert_eq!(ctx.id, SVC_CTX_DEPOSIT);
        let back = DepositManifest::from_context(&ctx).unwrap().unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_bytes(), 4096 + (1 << 24) + 12345);
        assert_eq!(back.block_count(), 4);
    }

    #[test]
    fn manifest_ignores_foreign_context() {
        let ctx = ServiceContext {
            id: 77,
            data: vec![1, 2, 3],
        };
        assert_eq!(DepositManifest::from_context(&ctx).unwrap(), None);
    }

    #[test]
    fn find_in_list() {
        let m = DepositManifest {
            block_lengths: vec![10],
        };
        let list = vec![
            ServiceContext {
                id: 5,
                data: vec![],
            },
            m.to_context(),
        ];
        assert_eq!(DepositManifest::find_in(&list).unwrap().unwrap(), m);
        assert_eq!(DepositManifest::find_in(&list[..1]).unwrap(), None);
    }

    #[test]
    fn empty_manifest_is_valid() {
        let m = DepositManifest::default();
        let back = DepositManifest::from_context(&m.to_context())
            .unwrap()
            .unwrap();
        assert_eq!(back.block_count(), 0);
        assert_eq!(back.total_bytes(), 0);
    }

    #[test]
    fn truncated_manifest_rejected() {
        let mut ctx = DepositManifest {
            block_lengths: vec![1, 2, 3],
        }
        .to_context();
        ctx.data.truncate(8);
        assert!(DepositManifest::from_context(&ctx).is_err());
    }

    #[test]
    fn trace_context_roundtrip() {
        let t = TraceContext {
            trace_id: 0xDEAD_BEEF_1234_5678,
            sent_at_ns: 987_654_321,
            journey_id: 0x0000_0ABC_DEF0_1234,
            attempt: 3,
            cause: 2, // failover
        };
        let ctx = t.to_context();
        assert_eq!(ctx.id, SVC_CTX_TRACE);
        let back = TraceContext::from_context(&ctx).unwrap().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn trace_context_without_timestamp_decodes_unstamped() {
        // The pre-span wire format ended after the trace id; it must still
        // decode, with sent_at_ns reading as 0 (unstamped) and no journey.
        let mut ctx = TraceContext {
            trace_id: 77,
            sent_at_ns: 999,
            journey_id: 5,
            attempt: 2,
            cause: 1,
        }
        .to_context();
        ctx.data.truncate(16); // flag + alignment pad + trace_id only
        let back = TraceContext::from_context(&ctx).unwrap().unwrap();
        assert_eq!(back.trace_id, 77);
        assert_eq!(back.sent_at_ns, 0);
        assert_eq!(back.journey_id, 0);
        assert_eq!(back.attempt, 0);
        assert_eq!(back.cause, 0);
    }

    #[test]
    fn trace_context_without_journey_decodes_journeyless() {
        // The pre-journey wire format ended after the timestamp; the
        // journey fields must read as "no journey", not error.
        let mut ctx = TraceContext {
            trace_id: 77,
            sent_at_ns: 999,
            journey_id: 5,
            attempt: 2,
            cause: 1,
        }
        .to_context();
        ctx.data.truncate(24); // flag + pad + trace_id + sent_at_ns
        let back = TraceContext::from_context(&ctx).unwrap().unwrap();
        assert_eq!(back.trace_id, 77);
        assert_eq!(back.sent_at_ns, 999);
        assert_eq!(back.journey_id, 0);
        assert_eq!(back.attempt, 0);
        assert_eq!(back.cause, 0);
    }

    #[test]
    fn trace_context_ignores_foreign_id() {
        let ctx = ServiceContext {
            id: SVC_CTX_DEPOSIT,
            data: vec![0, 1, 2],
        };
        assert_eq!(TraceContext::from_context(&ctx).unwrap(), None);
    }

    #[test]
    fn trace_context_find_in_mixed_list() {
        let t = TraceContext {
            trace_id: 42,
            ..Default::default()
        };
        let list = vec![
            DepositManifest {
                block_lengths: vec![8],
            }
            .to_context(),
            t.to_context(),
        ];
        assert_eq!(TraceContext::find_in(&list).unwrap().unwrap(), t);
        assert_eq!(TraceContext::find_in(&list[..1]).unwrap(), None);
        // Both contexts coexist on one request.
        assert!(DepositManifest::find_in(&list).unwrap().is_some());
    }

    #[test]
    fn truncated_trace_context_rejected() {
        let mut ctx = TraceContext {
            trace_id: 7,
            ..Default::default()
        }
        .to_context();
        ctx.data.truncate(4);
        assert!(TraceContext::from_context(&ctx).is_err());
    }

    #[test]
    fn zc_health_roundtrip() {
        let h = ZcHealthContext {
            spec_hits: 1_000_000,
            spec_misses: 37,
        };
        let ctx = h.to_context();
        assert_eq!(ctx.id, SVC_CTX_ZC_HEALTH);
        let back = ZcHealthContext::from_context(&ctx).unwrap().unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn zc_health_ignores_foreign_id_and_rejects_truncation() {
        let foreign = ServiceContext {
            id: SVC_CTX_TRACE,
            data: vec![0, 1],
        };
        assert_eq!(ZcHealthContext::from_context(&foreign).unwrap(), None);
        let mut ctx = ZcHealthContext {
            spec_hits: 1,
            spec_misses: 2,
        }
        .to_context();
        ctx.data.truncate(9);
        assert!(ZcHealthContext::from_context(&ctx).is_err());
    }

    #[test]
    fn zc_health_find_in_mixed_list() {
        let h = ZcHealthContext {
            spec_hits: 5,
            spec_misses: 1,
        };
        let list = vec![
            TraceContext {
                trace_id: 9,
                ..Default::default()
            }
            .to_context(),
            h.to_context(),
        ];
        assert_eq!(ZcHealthContext::find_in(&list).unwrap().unwrap(), h);
        assert_eq!(ZcHealthContext::find_in(&list[..1]).unwrap(), None);
    }

    /// Cross-assert the wire values against spelled-out literals: the ids
    /// are derived from `zc_cdr::wire::ZC_TAG`, and this test pins them so
    /// a refactor of the derivation cannot silently renumber the protocol.
    #[test]
    fn service_context_ids_pinned_to_wire_values() {
        assert_eq!(SVC_CTX_DEPOSIT, 0x5A43_0001);
        assert_eq!(SVC_CTX_NEGOTIATE, 0x5A43_0002);
        assert_eq!(SVC_CTX_TRACE, 0x5A43_0003);
        assert_eq!(SVC_CTX_ZC_HEALTH, 0x5A43_0004);
        assert_eq!(SVC_CTX_DEPOSIT >> 16, u16::from_be_bytes(*b"ZC") as u32);
    }
}
