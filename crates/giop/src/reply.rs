//! The GIOP Reply header, reply status and system exceptions.

use zc_cdr::{CdrDecoder, CdrEncoder, CdrError, CdrResult};

use crate::context::ServiceContext;

/// Reply status codes (CORBA `ReplyStatusType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ReplyStatus {
    /// Normal completion; result follows.
    NoException = 0,
    /// A declared (IDL `raises`) exception follows.
    UserException = 1,
    /// A CORBA system exception follows.
    SystemException = 2,
    /// The object lives elsewhere; an IOR follows.
    LocationForward = 3,
}

impl ReplyStatus {
    /// Decode from the wire value.
    pub fn from_u32(v: u32) -> CdrResult<ReplyStatus> {
        Ok(match v {
            0 => ReplyStatus::NoException,
            1 => ReplyStatus::UserException,
            2 => ReplyStatus::SystemException,
            3 => ReplyStatus::LocationForward,
            other => return Err(CdrError::BadEnumValue(other)),
        })
    }
}

/// A GIOP Reply header: service contexts, request id, status. The result
/// value / exception body follows in the same stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyHeader {
    /// Service contexts (a reply carrying deposits announces them here).
    pub service_contexts: Vec<ServiceContext>,
    /// Echoes the request id this reply answers.
    pub request_id: u32,
    /// Outcome discriminator.
    pub status: ReplyStatus,
}

impl ReplyHeader {
    /// A successful-reply header.
    pub fn ok(request_id: u32) -> ReplyHeader {
        ReplyHeader {
            service_contexts: Vec::new(),
            request_id,
            status: ReplyStatus::NoException,
        }
    }

    /// Encode onto a CDR stream.
    pub fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        ServiceContext::marshal_list(&self.service_contexts, enc)?;
        enc.write_u32(self.request_id);
        enc.write_u32(self.status as u32);
        Ok(())
    }

    /// Decode from a CDR stream.
    pub fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<ReplyHeader> {
        let service_contexts = ServiceContext::demarshal_list(dec)?;
        let request_id = dec.read_u32()?;
        let status = ReplyStatus::from_u32(dec.read_u32()?)?;
        Ok(ReplyHeader {
            service_contexts,
            request_id,
            status,
        })
    }
}

/// The standard system exceptions we raise (a pragmatic subset of the
/// CORBA set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemExceptionKind {
    /// Target object does not exist.
    ObjectNotExist,
    /// Operation name not understood by the target.
    BadOperation,
    /// Marshaling/demarshaling failure.
    Marshal,
    /// Communication failure.
    CommFailure,
    /// Feature not implemented.
    NoImplement,
    /// Internal ORB error.
    Internal,
    /// Request was cancelled or timed out.
    Timeout,
    /// Transient failure; retry may succeed.
    Transient,
}

impl SystemExceptionKind {
    /// The CORBA repository id for this exception.
    pub fn repo_id(self) -> &'static str {
        match self {
            SystemExceptionKind::ObjectNotExist => "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0",
            SystemExceptionKind::BadOperation => "IDL:omg.org/CORBA/BAD_OPERATION:1.0",
            SystemExceptionKind::Marshal => "IDL:omg.org/CORBA/MARSHAL:1.0",
            SystemExceptionKind::CommFailure => "IDL:omg.org/CORBA/COMM_FAILURE:1.0",
            SystemExceptionKind::NoImplement => "IDL:omg.org/CORBA/NO_IMPLEMENT:1.0",
            SystemExceptionKind::Internal => "IDL:omg.org/CORBA/INTERNAL:1.0",
            SystemExceptionKind::Timeout => "IDL:omg.org/CORBA/TIMEOUT:1.0",
            SystemExceptionKind::Transient => "IDL:omg.org/CORBA/TRANSIENT:1.0",
        }
    }

    /// Recover the kind from a repository id.
    pub fn from_repo_id(id: &str) -> Option<SystemExceptionKind> {
        Some(match id {
            "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0" => SystemExceptionKind::ObjectNotExist,
            "IDL:omg.org/CORBA/BAD_OPERATION:1.0" => SystemExceptionKind::BadOperation,
            "IDL:omg.org/CORBA/MARSHAL:1.0" => SystemExceptionKind::Marshal,
            "IDL:omg.org/CORBA/COMM_FAILURE:1.0" => SystemExceptionKind::CommFailure,
            "IDL:omg.org/CORBA/NO_IMPLEMENT:1.0" => SystemExceptionKind::NoImplement,
            "IDL:omg.org/CORBA/INTERNAL:1.0" => SystemExceptionKind::Internal,
            "IDL:omg.org/CORBA/TIMEOUT:1.0" => SystemExceptionKind::Timeout,
            "IDL:omg.org/CORBA/TRANSIENT:1.0" => SystemExceptionKind::Transient,
            _ => return None,
        })
    }
}

/// A system exception as carried in a Reply body with
/// [`ReplyStatus::SystemException`]: repository id, minor code, completion
/// status (0 = yes, 1 = no, 2 = maybe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemException {
    /// Which standard exception.
    pub kind: SystemExceptionKind,
    /// Vendor-specific minor code.
    pub minor: u32,
    /// Whether the operation had completed when the exception was raised.
    pub completed: u32,
}

impl SystemException {
    /// Convenience constructor with `completed = NO`.
    pub fn new(kind: SystemExceptionKind, minor: u32) -> SystemException {
        SystemException {
            kind,
            minor,
            completed: 1,
        }
    }

    /// Encode as a Reply body.
    pub fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        enc.write_string(self.kind.repo_id());
        enc.write_u32(self.minor);
        enc.write_u32(self.completed);
        Ok(())
    }

    /// Decode from a Reply body.
    pub fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<SystemException> {
        let id = dec.read_string()?;
        let kind = SystemExceptionKind::from_repo_id(&id).ok_or(CdrError::InvalidString)?;
        let minor = dec.read_u32()?;
        let completed = dec.read_u32()?;
        Ok(SystemException {
            kind,
            minor,
            completed,
        })
    }
}

impl std::fmt::Display for SystemException {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (minor {}, completed {})",
            self.kind.repo_id(),
            self.minor,
            self.completed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zc_cdr::ByteOrder;

    #[test]
    fn reply_header_roundtrip() {
        for status in [
            ReplyStatus::NoException,
            ReplyStatus::UserException,
            ReplyStatus::SystemException,
            ReplyStatus::LocationForward,
        ] {
            let h = ReplyHeader {
                service_contexts: vec![],
                request_id: 9,
                status,
            };
            let mut enc = CdrEncoder::new(ByteOrder::Little);
            h.marshal(&mut enc).unwrap();
            let bytes = enc.finish_stream();
            let mut dec = CdrDecoder::new(&bytes, ByteOrder::Little);
            assert_eq!(ReplyHeader::demarshal(&mut dec).unwrap(), h);
        }
    }

    #[test]
    fn bad_status_rejected() {
        let mut enc = CdrEncoder::new(ByteOrder::Big);
        enc.write_u32(0); // empty contexts
        enc.write_u32(1); // request id
        enc.write_u32(17); // invalid status
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, ByteOrder::Big);
        assert!(ReplyHeader::demarshal(&mut dec).is_err());
    }

    #[test]
    fn system_exception_roundtrip_all_kinds() {
        let kinds = [
            SystemExceptionKind::ObjectNotExist,
            SystemExceptionKind::BadOperation,
            SystemExceptionKind::Marshal,
            SystemExceptionKind::CommFailure,
            SystemExceptionKind::NoImplement,
            SystemExceptionKind::Internal,
            SystemExceptionKind::Timeout,
            SystemExceptionKind::Transient,
        ];
        for kind in kinds {
            let e = SystemException::new(kind, 3);
            let mut enc = CdrEncoder::new(ByteOrder::Little);
            e.marshal(&mut enc).unwrap();
            let bytes = enc.finish_stream();
            let mut dec = CdrDecoder::new(&bytes, ByteOrder::Little);
            assert_eq!(SystemException::demarshal(&mut dec).unwrap(), e);
            assert_eq!(
                SystemExceptionKind::from_repo_id(kind.repo_id()),
                Some(kind)
            );
        }
    }

    #[test]
    fn unknown_repo_id_rejected() {
        let mut enc = CdrEncoder::new(ByteOrder::Little);
        enc.write_string("IDL:example/NotAThing:1.0");
        enc.write_u32(0);
        enc.write_u32(0);
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, ByteOrder::Little);
        assert!(SystemException::demarshal(&mut dec).is_err());
    }
}
