//! GIOP/IIOP — the General (Internet) Inter-ORB Protocol engine.
//!
//! The paper's ORB keeps "the standard Internet InterORB Protocol (IIOP)"
//! for ORB-to-ORB communication while separating bulk data out of the
//! message stream. This crate provides the protocol pieces:
//!
//! * [`msg`] — the 12-byte GIOP message header, message types, flags,
//!   framing helpers and fragmentation;
//! * [`request`]/[`reply`] — Request and Reply headers and system-exception
//!   bodies;
//! * [`context`] — service contexts, including the two zcorba-specific
//!   contexts: the **deposit manifest** (announces the sizes of the
//!   out-of-band blocks so the receiver can pre-allocate page-aligned
//!   buffers before the data arrives — the "size of the data block that is
//!   needed by the receiver" from §4.4) and the negotiation record;
//! * [`handshake`] — the connection-open architecture/capability exchange
//!   ("the negotiation of the architecture and the typeset between the
//!   client and server is specified by the GIOP protocol already", §2.1);
//! * [`ior`] — Interoperable Object References with IIOP profiles and
//!   `IOR:` stringification.

pub mod context;
pub mod handshake;
pub mod ior;
pub mod msg;
pub mod reply;
pub mod request;

pub use context::{
    DepositManifest, ServiceContext, TraceContext, ZcHealthContext, SVC_CTX_DEPOSIT,
    SVC_CTX_NEGOTIATE, SVC_CTX_TRACE, SVC_CTX_ZC_HEALTH,
};
pub use handshake::{Handshake, Negotiated};
pub use ior::{
    IiopProfile, Ior, TaggedComponent, TaggedProfile, MAX_IOR_PROFILES, MAX_PROFILE_COMPONENTS,
};
pub use msg::{
    fragment_frames, frame as frame_msg, reassemble, GiopFlags, GiopHeader, GiopVersion,
    MessageType, GIOP_HEADER_LEN, GIOP_MAGIC,
};
pub use reply::{ReplyHeader, ReplyStatus, SystemException, SystemExceptionKind};
pub use request::RequestHeader;

use zc_cdr::CdrError;

/// Errors raised by the GIOP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GiopError {
    /// The four magic bytes were not `GIOP`.
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8, u8),
    /// Unknown message type octet.
    BadMessageType(u8),
    /// Announced message size exceeds the configured maximum.
    MessageTooLarge(u64),
    /// A header or body failed to decode.
    Cdr(CdrError),
    /// Malformed IOR string.
    BadIorString(String),
    /// The IOR does not contain a usable IIOP profile.
    NoIiopProfile,
    /// Handshake frame malformed or incompatible magic.
    BadHandshake,
}

impl From<CdrError> for GiopError {
    fn from(e: CdrError) -> Self {
        GiopError::Cdr(e)
    }
}

impl std::fmt::Display for GiopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GiopError::BadMagic(m) => write!(f, "bad GIOP magic {m:?}"),
            GiopError::BadVersion(maj, min) => write!(f, "unsupported GIOP version {maj}.{min}"),
            GiopError::BadMessageType(t) => write!(f, "unknown GIOP message type {t}"),
            GiopError::MessageTooLarge(n) => write!(f, "GIOP message size {n} exceeds limit"),
            GiopError::Cdr(e) => write!(f, "CDR error in GIOP message: {e}"),
            GiopError::BadIorString(s) => write!(f, "malformed IOR string: {s}"),
            GiopError::NoIiopProfile => write!(f, "IOR carries no IIOP profile"),
            GiopError::BadHandshake => write!(f, "malformed zcorba handshake frame"),
        }
    }
}

impl std::error::Error for GiopError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GiopError::Cdr(e) => Some(e),
            _ => None,
        }
    }
}

/// Result alias for GIOP operations.
pub type GiopResult<T> = Result<T, GiopError>;

/// Maximum accepted GIOP message size (control messages only — bulk payload
/// travels on the data channel, so control frames stay small).
pub const MAX_GIOP_MESSAGE: u64 = 64 << 20;
