//! The connection-open architecture/capability handshake.
//!
//! "For remote communication with the same architecture on client and
//! server, certain types … do not have to be marshaled and demarshaled at
//! all. The negotiation of the architecture and the typeset between the
//! client and server is specified by the GIOP protocol already." (§2.1)
//!
//! zcorba performs this negotiation once per connection, immediately after
//! transport establishment and before any GIOP traffic: each side sends a
//! fixed-format [`Handshake`] frame describing its architecture and
//! zero-copy capability; both sides then independently compute the same
//! [`Handshake::negotiate`] outcome. Direct deposit is enabled only when
//! the architectures match bit-for-bit *and* both ends opted in — otherwise
//! the connection silently runs conventional, fully-marshaled IIOP, which
//! keeps heterogeneous interoperability intact.

use zc_cdr::{ByteOrder, CdrDecoder, CdrEncoder};

use crate::{GiopError, GiopResult};

/// Magic bytes opening a handshake frame (distinct from "GIOP" so a foreign
/// peer fails fast and loudly rather than misparsing).
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"ZCH1";

/// One side's architecture and capability declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    /// Native byte order of this host.
    pub byte_order: ByteOrder,
    /// Native word size in bytes (8 on all our targets; part of the
    /// architecture identity check).
    pub word_size: u8,
    /// Page size used for deposit buffers.
    pub page_size: u32,
    /// Free-form architecture tag (e.g. `x86_64-linux`); must match exactly
    /// for the marshaling bypass to be safe.
    pub arch: String,
    /// Whether this ORB supports (and wants) direct deposit.
    pub zc_supported: bool,
}

/// The jointly computed outcome of a handshake exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Negotiated {
    /// Both ends are the same architecture (byte order, word size, page
    /// size, arch tag) — marshaling bypass is safe.
    pub homogeneous: bool,
    /// Direct deposit is active on this connection.
    pub zero_copy: bool,
    /// The byte order the connection will use for GIOP messages (the
    /// client's native order; the server "makes it right").
    pub wire_order: ByteOrder,
}

impl Handshake {
    /// The handshake for this host.
    pub fn local(zc_supported: bool) -> Handshake {
        Handshake {
            byte_order: ByteOrder::native(),
            word_size: std::mem::size_of::<usize>() as u8,
            page_size: zc_buffers::PAGE_SIZE as u32,
            arch: format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
            zc_supported,
        }
    }

    /// A handshake that *pretends* to be a foreign architecture — used by
    /// interop tests and the heterogeneity experiments to force the
    /// conventional path without actual foreign hardware.
    pub fn foreign() -> Handshake {
        Handshake {
            byte_order: ByteOrder::native().swapped(),
            word_size: 4,
            page_size: zc_buffers::PAGE_SIZE as u32,
            arch: "sparc32-solaris".to_string(),
            zc_supported: false,
        }
    }

    /// Serialize to a self-contained frame (fixed magic, then CDR in this
    /// host's byte order with a leading flag octet).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = CdrEncoder::new(self.byte_order);
        enc.write_raw(&HANDSHAKE_MAGIC);
        enc.write_octet(self.byte_order.flag() as u8);
        enc.write_octet(self.word_size);
        enc.write_bool(self.zc_supported);
        enc.write_u32(self.page_size);
        enc.write_string(&self.arch);
        enc.finish_stream()
    }

    /// Parse a frame produced by [`Handshake::encode`].
    pub fn decode(bytes: &[u8]) -> GiopResult<Handshake> {
        if bytes.len() < 6 || bytes[..4] != HANDSHAKE_MAGIC {
            return Err(GiopError::BadHandshake);
        }
        let byte_order = ByteOrder::from_flag(bytes[4] & 1 == 1);
        let mut dec = CdrDecoder::new(bytes, byte_order);
        dec.read_octet()?; // 'Z'
        dec.read_octet()?; // 'C'
        dec.read_octet()?; // 'H'
        dec.read_octet()?; // '1'
        dec.read_octet()?; // order flag
        let word_size = dec.read_octet()?;
        let zc_supported = dec.read_bool()?;
        let page_size = dec.read_u32()?;
        let arch = dec.read_string()?;
        Ok(Handshake {
            byte_order,
            word_size,
            page_size,
            arch,
            zc_supported,
        })
    }

    /// Compute the connection mode. Both peers run this with the same two
    /// declarations (ordering normalized by role: `client`, `server`), so
    /// they agree without a second round trip.
    pub fn negotiate(client: &Handshake, server: &Handshake) -> Negotiated {
        let homogeneous = client.byte_order == server.byte_order
            && client.word_size == server.word_size
            && client.page_size == server.page_size
            && client.arch == server.arch;
        Negotiated {
            homogeneous,
            zero_copy: homogeneous && client.zc_supported && server.zc_supported,
            wire_order: client.byte_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let h = Handshake::local(true);
        let back = Handshake::decode(&h.encode()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn foreign_roundtrip() {
        let h = Handshake::foreign();
        let back = Handshake::decode(&h.encode()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Handshake::local(true).encode();
        bytes[0] = b'G';
        assert_eq!(Handshake::decode(&bytes), Err(GiopError::BadHandshake));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = Handshake::local(true).encode();
        assert!(Handshake::decode(&bytes[..5]).is_err());
        assert!(Handshake::decode(&[]).is_err());
    }

    #[test]
    fn negotiation_homogeneous_both_willing() {
        let a = Handshake::local(true);
        let b = Handshake::local(true);
        let n = Handshake::negotiate(&a, &b);
        assert!(n.homogeneous);
        assert!(n.zero_copy);
        assert_eq!(n.wire_order, ByteOrder::native());
    }

    #[test]
    fn negotiation_one_side_unwilling() {
        let a = Handshake::local(true);
        let b = Handshake::local(false);
        let n = Handshake::negotiate(&a, &b);
        assert!(n.homogeneous, "same machine is still homogeneous");
        assert!(!n.zero_copy, "but deposit needs both ends willing");
    }

    #[test]
    fn negotiation_heterogeneous_never_zero_copy() {
        let a = Handshake::local(true);
        let mut b = Handshake::foreign();
        b.zc_supported = true; // even a willing foreign peer can't deposit
        let n = Handshake::negotiate(&a, &b);
        assert!(!n.homogeneous);
        assert!(!n.zero_copy);
    }

    #[test]
    fn wire_order_is_client_native() {
        let mut client = Handshake::local(true);
        client.byte_order = ByteOrder::Big;
        let server = Handshake::local(true);
        let n = Handshake::negotiate(&client, &server);
        assert_eq!(n.wire_order, ByteOrder::Big);
    }

    #[test]
    fn page_size_mismatch_blocks_deposit() {
        let a = Handshake::local(true);
        let mut b = Handshake::local(true);
        b.page_size = 8192;
        let n = Handshake::negotiate(&a, &b);
        assert!(!n.zero_copy);
    }
}
