//! The GIOP Request header.

use zc_cdr::{CdrDecoder, CdrEncoder, CdrResult};

use crate::context::ServiceContext;

/// A GIOP Request header (1.0-style layout, which both our versions share):
/// service contexts, request id, response-expected flag, object key,
/// operation name, and principal (always empty here, as deprecated).
///
/// The parameter body follows the header in the same CDR stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHeader {
    /// Service contexts (deposit manifest travels here).
    pub service_contexts: Vec<ServiceContext>,
    /// Request id, unique per connection; replies echo it.
    pub request_id: u32,
    /// `false` for oneway operations — no Reply will be sent.
    pub response_expected: bool,
    /// Opaque key identifying the target object within the server ORB.
    pub object_key: Vec<u8>,
    /// Operation (method) name.
    pub operation: String,
}

impl RequestHeader {
    /// Construct a header with no service contexts.
    pub fn new(request_id: u32, object_key: Vec<u8>, operation: &str) -> RequestHeader {
        RequestHeader {
            service_contexts: Vec::new(),
            request_id,
            response_expected: true,
            object_key,
            operation: operation.to_string(),
        }
    }

    /// Encode onto a CDR stream (the start of a Request message body).
    pub fn marshal(&self, enc: &mut CdrEncoder) -> CdrResult<()> {
        ServiceContext::marshal_list(&self.service_contexts, enc)?;
        enc.write_u32(self.request_id);
        enc.write_bool(self.response_expected);
        enc.write_octet_seq(&self.object_key);
        enc.write_string(&self.operation);
        enc.write_u32(0); // principal: zero-length sequence (deprecated)
        Ok(())
    }

    /// Decode from a CDR stream.
    pub fn demarshal(dec: &mut CdrDecoder<'_>) -> CdrResult<RequestHeader> {
        let service_contexts = ServiceContext::demarshal_list(dec)?;
        let request_id = dec.read_u32()?;
        let response_expected = dec.read_bool()?;
        let object_key = dec.read_octet_seq()?;
        let operation = dec.read_string()?;
        let principal_len = dec.read_u32()?;
        for _ in 0..principal_len {
            dec.read_octet()?;
        }
        Ok(RequestHeader {
            service_contexts,
            request_id,
            response_expected,
            object_key,
            operation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{DepositManifest, SVC_CTX_DEPOSIT};
    use zc_cdr::ByteOrder;

    fn roundtrip(h: &RequestHeader, order: ByteOrder) -> RequestHeader {
        let mut enc = CdrEncoder::new(order);
        h.marshal(&mut enc).unwrap();
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, order);
        let back = RequestHeader::demarshal(&mut dec).unwrap();
        assert_eq!(dec.remaining(), 0);
        back
    }

    #[test]
    fn plain_roundtrip() {
        let h = RequestHeader::new(42, b"obj-key-1".to_vec(), "transfer");
        assert_eq!(roundtrip(&h, ByteOrder::Big), h);
        assert_eq!(roundtrip(&h, ByteOrder::Little), h);
    }

    #[test]
    fn oneway_flag_preserved() {
        let mut h = RequestHeader::new(7, b"k".to_vec(), "notify");
        h.response_expected = false;
        assert!(!roundtrip(&h, ByteOrder::Little).response_expected);
    }

    #[test]
    fn with_deposit_manifest() {
        let mut h = RequestHeader::new(1, b"key".to_vec(), "push");
        h.service_contexts.push(
            DepositManifest {
                block_lengths: vec![1 << 20],
            }
            .to_context(),
        );
        let back = roundtrip(&h, ByteOrder::Little);
        let m = DepositManifest::find_in(&back.service_contexts)
            .unwrap()
            .unwrap();
        assert_eq!(m.block_lengths, vec![1 << 20]);
        assert_eq!(back.service_contexts[0].id, SVC_CTX_DEPOSIT);
    }

    #[test]
    fn empty_object_key_and_operation_name() {
        let h = RequestHeader::new(0, vec![], "");
        assert_eq!(roundtrip(&h, ByteOrder::Big), h);
    }

    #[test]
    fn parameters_follow_header_in_same_stream() {
        let h = RequestHeader::new(3, b"ok".to_vec(), "op");
        let mut enc = CdrEncoder::new(ByteOrder::Little);
        h.marshal(&mut enc).unwrap();
        enc.write_u32(0xFEED_F00D); // first parameter
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, ByteOrder::Little);
        let back = RequestHeader::demarshal(&mut dec).unwrap();
        assert_eq!(back, h);
        assert_eq!(dec.read_u32().unwrap(), 0xFEED_F00D);
    }
}
