//! Criterion bench behind Figure 6 (left): copying vs zero-copy socket
//! paths, raw data transfer, host-measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zc_ttcp::{run_measured, TtcpParams, TtcpVersion};

fn bench_fig6_sockets(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_sockets");
    group.sample_size(10);
    for &block in &[4 << 10, 1 << 20] {
        let total = (block * 16).max(4 << 20);
        group.throughput(Throughput::Bytes(total as u64));
        for version in [TtcpVersion::RawTcp, TtcpVersion::ZcTcp] {
            group.bench_with_input(
                BenchmarkId::new(version.label(), block),
                &block,
                |b, &block| {
                    b.iter(|| run_measured(&TtcpParams::new(version, block, total)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6_sockets);
criterion_main!(benches);
