//! Encoder kernel benchmarks: the compute side of the §5.4 application
//! (DCT + quantize + RLE per frame), and the synthetic source itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use zc_mpeg::{encode_frame, EncoderConfig, FrameSource, VideoFormat};

fn bench_encoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpeg_encoder");
    group.sample_size(10);
    for (name, fmt) in [
        ("sd-like", VideoFormat::new(320, 192)),
        ("720p-like", VideoFormat::new(1280, 720 / 16 * 16)),
    ] {
        let frame = FrameSource::new(fmt, 1).frame_at(0);
        group.throughput(Throughput::Bytes(fmt.frame_bytes() as u64));
        group.bench_with_input(BenchmarkId::new("encode", name), &frame, |b, frame| {
            b.iter(|| encode_frame(frame, &EncoderConfig::default()).len())
        });
    }
    group.finish();
}

fn bench_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_source");
    group.sample_size(10);
    let fmt = VideoFormat::new(640, 480);
    group.throughput(Throughput::Bytes(fmt.frame_bytes() as u64));
    group.bench_function("generate_640x480", |b| {
        let src = FrameSource::new(fmt, 3);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            src.frame_at(i).data.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encoder, bench_source);
criterion_main!(benches);
