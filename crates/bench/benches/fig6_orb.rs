//! Criterion bench behind Figure 6 (right): the four ORB/stack
//! combinations, host-measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zc_ttcp::{run_measured, TtcpParams, TtcpVersion};

fn bench_fig6_orb(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_orb");
    group.sample_size(10);
    let block = 1 << 20;
    let total = 8 << 20;
    group.throughput(Throughput::Bytes(total as u64));
    for version in [
        TtcpVersion::CorbaStd,
        TtcpVersion::CorbaStdOverZcTcp,
        TtcpVersion::CorbaZcOverTcp,
        TtcpVersion::CorbaZc,
    ] {
        group.bench_with_input(
            BenchmarkId::new(version.label(), block),
            &block,
            |b, &block| {
                b.iter(|| run_measured(&TtcpParams::new(version, block, total)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6_orb);
criterion_main!(benches);
