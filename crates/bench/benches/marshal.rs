//! Marshaling microbenchmarks: the per-byte cost asymmetry at the heart
//! of the paper — copying `sequence<octet>` marshaling scales with the
//! payload; zero-copy `sequence<ZC_Octet>` descriptors are O(1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use zc_buffers::PagePool;
use zc_cdr::{CdrDecoder, CdrEncoder, CdrMarshal, OctetSeq, ZcOctetSeq};

fn bench_marshal(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshal");
    for &n in &[4 << 10, 256 << 10, 4 << 20] {
        group.throughput(Throughput::Bytes(n as u64));
        let std_seq = OctetSeq(vec![7u8; n]);
        group.bench_with_input(BenchmarkId::new("octet_seq_copying", n), &n, |b, _| {
            b.iter(|| {
                let mut enc = CdrEncoder::native();
                std_seq.marshal(&mut enc).unwrap();
                enc.finish_stream().len()
            })
        });
        let zc_seq = ZcOctetSeq::with_length(n);
        group.bench_with_input(BenchmarkId::new("zc_octet_seq_deposit", n), &n, |b, _| {
            b.iter(|| {
                let mut enc = CdrEncoder::native().with_zc(true);
                zc_seq.marshal(&mut enc).unwrap();
                let (stream, deposits) = enc.finish();
                (stream.len(), deposits.len())
            })
        });
    }
    group.finish();
}

fn bench_demarshal(c: &mut Criterion) {
    let mut group = c.benchmark_group("demarshal");
    let n = 1 << 20;
    group.throughput(Throughput::Bytes(n as u64));
    let bytes = {
        let mut enc = CdrEncoder::native();
        OctetSeq(vec![7u8; n]).marshal(&mut enc).unwrap();
        enc.finish_stream()
    };
    group.bench_function("octet_seq_copying", |b| {
        b.iter(|| {
            let mut dec = CdrDecoder::new(&bytes, zc_cdr::ByteOrder::native());
            OctetSeq::demarshal(&mut dec).unwrap().len()
        })
    });
    let (zc_stream, deposits) = {
        let mut enc = CdrEncoder::native().with_zc(true);
        ZcOctetSeq::with_length(n).marshal(&mut enc).unwrap();
        enc.finish()
    };
    group.bench_function("zc_octet_seq_deposit", |b| {
        b.iter(|| {
            let mut dec = CdrDecoder::new(&zc_stream, zc_cdr::ByteOrder::native())
                .with_deposits(deposits.clone());
            ZcOctetSeq::demarshal(&mut dec).unwrap().len()
        })
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_pool");
    let pool = PagePool::new(64 << 20);
    group.bench_function("acquire_release_64k", |b| {
        b.iter(|| {
            let buf = pool.acquire(64 << 10);
            buf.capacity()
        })
    });
    group.bench_function("fresh_alloc_64k", |b| {
        b.iter(|| zc_buffers::AlignedBuf::with_capacity(64 << 10).capacity())
    });
    group.finish();
}

criterion_group!(benches, bench_marshal, bench_demarshal, bench_pool);
criterion_main!(benches);
