//! Small-request ORB latency (the per-packet side of the story the paper
//! cites from earlier work [18]): an empty `ping` and a 4 KiB echo across
//! ORB configurations.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zc_cdr::ZcOctetSeq;
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork};

struct Ping;
impl Servant for Ping {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/Ping:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "ping" => req.result(&0u32),
            "echo4k" => {
                let d: ZcOctetSeq = req.arg()?;
                req.result(&d)
            }
            other => req.bad_operation(other),
        }
    }
}

fn setup(cfg: SimConfig, zc: bool) -> (zc_orb::ObjectRef, zc_orb::ServerHandle, Orb) {
    let net = SimNetwork::new(cfg);
    let server_orb = Orb::builder().sim(net.clone()).zc(zc).build();
    server_orb.adapter().register("ping", Arc::new(Ping));
    let server = server_orb.serve(0).unwrap();
    let client = Orb::builder().sim(net).zc(zc).build();
    let ior = server.ior_for("ping", "IDL:zcorba/Ping:1.0").unwrap();
    let obj = client.resolve(&ior).unwrap();
    (obj, server, client)
}

fn bench_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("orb_latency");
    for (name, cfg, zc) in [
        ("std-orb/copy-stack", SimConfig::copying(), false),
        ("zc-orb/zc-stack", SimConfig::zero_copy(), true),
    ] {
        let (obj, _server, _client) = setup(cfg, zc);
        group.bench_function(BenchmarkId::new("ping", name), |b| {
            b.iter(|| {
                let r: u32 = obj.request("ping").invoke().unwrap().result().unwrap();
                assert_eq!(r, 0);
            })
        });
        let page = ZcOctetSeq::with_length(4096);
        group.bench_function(BenchmarkId::new("echo4k", name), |b| {
            b.iter(|| {
                let back: ZcOctetSeq = obj
                    .request("echo4k")
                    .arg(&page)
                    .unwrap()
                    .invoke()
                    .unwrap()
                    .result()
                    .unwrap();
                assert_eq!(back.len(), 4096);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
