//! Criterion bench behind Figure 5: raw TCP vs standard CORBA on the
//! operational (host-measured) stack, per block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zc_ttcp::{run_measured, TtcpParams, TtcpVersion};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for &block in &[64 << 10, 1 << 20] {
        let total = block * 8;
        group.throughput(Throughput::Bytes(total as u64));
        for version in [TtcpVersion::RawTcp, TtcpVersion::CorbaStd] {
            group.bench_with_input(
                BenchmarkId::new(version.label(), block),
                &block,
                |b, &block| {
                    b.iter(|| run_measured(&TtcpParams::new(version, block, total)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
