//! End-to-end journey reconstruction: kill a primary mid-stream, spool the
//! shared flight recorder to disk, and prove `zc-flame` reconstructs the
//! whole causal chain offline — the initial attempt linked to the failover
//! attempt under one journey id, with correct cause tags and a critical
//! path bounded by the measured wall clock. Run on both the simulated and
//! the real TCP transport.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zc_bench::flame::{analyze_spool_dir, Journey};
use zc_giop::Ior;
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_trace::{JourneyCause, SpoolConfig, Telemetry};
use zc_transport::{FaultPlan, SimConfig, SimNetwork};

const REPO_ID: &str = "IDL:zcorba/bench/JourneyReplica:1.0";

/// Minimal replica: an idempotent echo plus a stall for poisoning TCP
/// connections to a dead peer.
struct Replica;

impl Servant for Replica {
    fn repo_id(&self) -> &'static str {
        REPO_ID
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "ping" => {
                let n: u32 = req.arg()?;
                req.result(&n)
            }
            "nap" => {
                let ms: u32 = req.arg()?;
                std::thread::sleep(Duration::from_millis(ms as u64));
                req.result(&ms)
            }
            other => req.bad_operation(other),
        }
    }
}

fn temp_spool_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("zcorba-flame-e2e-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ping(obj: &zc_orb::ObjectRef, n: u32) -> OrbResult<u32> {
    obj.request("ping").arg(&n)?.idempotent().invoke()?.result()
}

/// The journey the scenario must have produced: complete (ordinal chain
/// contiguous from an `initial` opener) and recovered through a `failover`
/// attempt.
fn assert_failover_journey(journeys: &[Journey], wall_clock: Duration) -> u64 {
    let recovered: Vec<&Journey> = journeys.iter().filter(|j| j.is_recovered()).collect();
    assert!(
        !recovered.is_empty(),
        "no recovered journey reconstructed from the spool (journeys: {})",
        journeys.len()
    );
    let j = recovered[0];
    assert!(
        j.attempts.len() >= 2,
        "failover journey needs >= 2 attempts"
    );
    assert_eq!(
        j.attempts[0].cause,
        JourneyCause::Initial,
        "journey must open with an initial attempt"
    );
    assert_eq!(j.attempts[0].ordinal, 0);
    assert!(
        j.attempts.iter().any(|a| a.cause == JourneyCause::Failover),
        "no attempt carries the failover cause: {:?}",
        j.attempts.iter().map(|a| a.cause).collect::<Vec<_>>()
    );
    // Causal link: every attempt shares the journey id, and ordinals are
    // the causal order.
    for (i, a) in j.attempts.iter().enumerate() {
        assert_eq!(a.ordinal, i as u32);
    }
    // The reconstructed critical path can never exceed what really
    // elapsed: stage legs are disjoint sub-intervals of the wall clock.
    assert!(
        j.critical_path_ns() <= wall_clock.as_nanos() as u64,
        "critical path {} ns exceeds wall clock {} ns",
        j.critical_path_ns(),
        wall_clock.as_nanos()
    );
    // Untouched journeys stay single-attempt: the pre-kill pings.
    assert!(journeys
        .iter()
        .any(|o| o.attempts.len() == 1 && o.is_complete()));
    j.journey_id
}

#[test]
fn killed_primary_journey_reconstructs_from_spool_sim() {
    let dir = temp_spool_dir("sim");
    let telemetry = Telemetry::with_capacity(4096);
    let net = SimNetwork::new(SimConfig::zero_copy());
    let mut servers = Vec::new();
    let mut orbs = Vec::new();
    let mut iors = Vec::new();
    for _ in 0..2 {
        let orb = Orb::builder()
            .sim(net.clone())
            .telemetry(Arc::clone(&telemetry))
            .build();
        orb.adapter().register("replica", Arc::new(Replica));
        let server = orb.serve(0).unwrap();
        iors.push(server.ior_for("replica", REPO_ID).unwrap());
        servers.push(server);
        orbs.push(orb);
    }
    let group = Ior::merge_group(&iors).unwrap();
    // The client ORB owns the spool: its drop (end of scope) runs the
    // final drain, so the segments are complete before analysis.
    let client = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry))
        .trace_spool(SpoolConfig::new(&dir))
        .build();
    let obj = client.resolve(&group).unwrap();

    let started = Instant::now();
    for n in 0..3 {
        assert_eq!(ping(&obj, n).unwrap(), n);
    }
    // Kill the primary mid-stream: acceptor gone, live connection severed
    // at its next frame. The following idempotent call's initial attempt
    // dies on the cut, recovery reconnects, the primary refuses, rotation
    // retries on the backup — one journey, two attempts, cause failover.
    servers.remove(0).shutdown();
    net.inject_faults(FaultPlan::cut_after(0));
    assert_eq!(ping(&obj, 99).unwrap(), 99);
    let wall_clock = started.elapsed();

    for s in servers {
        s.shutdown();
    }
    drop(obj);
    drop(client); // final spool drain
    drop(orbs);

    let analysis = analyze_spool_dir(&dir).unwrap();
    assert_eq!(analysis.stats.unreadable_segments, 0);
    assert_eq!(analysis.stats.skipped_events, 0);
    assert_failover_journey(&analysis.journeys, wall_clock);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_primary_journey_reconstructs_from_spool_tcp() {
    let dir = temp_spool_dir("tcp");
    let telemetry = Telemetry::with_capacity(4096);
    let mut servers = Vec::new();
    let mut orbs = Vec::new();
    let mut iors = Vec::new();
    for _ in 0..2 {
        let orb = Orb::builder()
            .tcp()
            .telemetry(Arc::clone(&telemetry))
            .build();
        orb.adapter().register("replica", Arc::new(Replica));
        let server = orb.serve(0).unwrap();
        iors.push(server.ior_for("replica", REPO_ID).unwrap());
        servers.push(server);
        orbs.push(orb);
    }
    let group = Ior::merge_group(&iors).unwrap();
    let client = Orb::builder()
        .tcp()
        .telemetry(Arc::clone(&telemetry))
        .trace_spool(SpoolConfig::new(&dir))
        .build();
    let obj = client.resolve(&group).unwrap();

    let started = Instant::now();
    for n in 0..3 {
        assert_eq!(ping(&obj, n).unwrap(), n);
    }
    // Real TCP has no fault injection: stop the primary's acceptor, then
    // poison the still-open connection with a timed-out stall. The next
    // idempotent ping finds the poisoned conn (attempt 0, recorded with no
    // wire trace), reconnects, is refused, and fails over to the backup.
    servers.remove(0).shutdown();
    let stalled = obj
        .request("nap")
        .arg(&5_000u32)
        .unwrap()
        .idempotent()
        .invoke_timeout(Duration::from_millis(50));
    assert!(stalled.is_err(), "stalled call must time out");
    assert_eq!(ping(&obj, 99).unwrap(), 99);
    let wall_clock = started.elapsed();

    for s in servers {
        s.shutdown();
    }
    drop(obj);
    drop(client); // final spool drain
    drop(orbs);

    let analysis = analyze_spool_dir(&dir).unwrap();
    assert_eq!(analysis.stats.unreadable_segments, 0);
    assert_failover_journey(&analysis.journeys, wall_clock);
    let _ = std::fs::remove_dir_all(&dir);
}
