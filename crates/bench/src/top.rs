//! `zc-top` plumbing: parse `_ZcTelemetry` snapshot JSON lines into a flat
//! sample, compute poll-to-poll deltas, and render the operator dashboard
//! (terminal frame) or the `--once --json` machine summary.
//!
//! Kept in the library (not the binary) so the parsing and rendering are
//! unit-testable against snapshots produced by `zc_trace` itself — the
//! round-trip `OrbTelemetry::json_lines` → [`TopSample::parse`] is pinned
//! by tests, which is what keeps the dashboard honest as sections evolve.

use std::fmt::Write as _;

use crate::trajectory::{parse_json, Json};

/// One parsed `_ZcTelemetry` snapshot, flattened to `section.key` (and
/// `section.name.key` for named families) → numeric value.
#[derive(Debug, Clone)]
pub struct TopSample {
    fields: Vec<(String, f64)>,
    /// Whether the server's telemetry was enabled.
    pub enabled: bool,
}

impl TopSample {
    /// Parse the JSON-lines text served by `_ZcTelemetry::snapshot_json`.
    /// Unknown sections and non-numeric members are skipped, not errors:
    /// the poller must keep working against newer servers.
    pub fn parse(jsonl: &str) -> Result<TopSample, String> {
        let mut fields = Vec::new();
        let mut enabled = false;
        let mut saw_section = false;
        for line in jsonl.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = parse_json(line).map_err(|e| format!("bad snapshot line: {e}: {line}"))?;
            let Some(section) = v.get("section").and_then(Json::as_str) else {
                continue;
            };
            saw_section = true;
            // Named families key by their discriminator; flat sections key
            // by the section name alone.
            let discriminator = v
                .get("name")
                .or_else(|| v.get("layer"))
                .and_then(Json::as_str);
            let prefix = match discriminator {
                Some(d) => format!("{section}.{d}"),
                None => section.to_string(),
            };
            if let Json::Obj(members) = &v {
                for (k, val) in members {
                    if k == "section" || k == "name" || k == "layer" {
                        continue;
                    }
                    // Counter lines carry a single `value` member; collapse
                    // it onto the prefix so lookups read `counter.retries`.
                    let key = if k == "value" {
                        prefix.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    match val {
                        Json::Num(n) => fields.push((key, *n)),
                        Json::Bool(b) => {
                            if section == "recorder" && k == "enabled" {
                                enabled = *b;
                            }
                            fields.push((key, if *b { 1.0 } else { 0.0 }));
                        }
                        _ => {}
                    }
                }
            }
        }
        if !saw_section {
            return Err("no telemetry sections in input".to_string());
        }
        Ok(TopSample { fields, enabled })
    }

    /// Look up a flattened field, e.g. `"load.req_per_s"` or
    /// `"stage.dispatch.p99"`.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Like [`TopSample::get`] with a `0.0` default — absent sections
    /// (e.g. no stage samples yet) read as zero.
    pub fn num(&self, key: &str) -> f64 {
        self.get(key).unwrap_or(0.0)
    }

    /// Total bytes copied across every copy-meter layer.
    pub fn total_copied_bytes(&self) -> f64 {
        self.fields
            .iter()
            .filter(|(k, _)| k.starts_with("copies.") && k.ends_with(".bytes"))
            .map(|(_, v)| *v)
            .sum()
    }

    /// `(stage name, p99 ns)` for every stage present in the snapshot, in
    /// snapshot order.
    pub fn stage_p99s(&self) -> Vec<(&str, f64)> {
        self.fields
            .iter()
            .filter_map(|(k, v)| {
                let rest = k.strip_prefix("stage.")?;
                let stage = rest.strip_suffix(".p99")?;
                Some((stage, *v))
            })
            .collect()
    }
}

/// Poll-to-poll deltas computed client-side from two samples taken
/// `elapsed_s` apart.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopDelta {
    /// Wall-clock seconds between the two samples.
    pub elapsed_s: f64,
    /// Inbound wire throughput derived from the server's receive counter.
    pub goodput_mbit_s: f64,
    /// Outbound wire throughput derived from the send counter.
    pub tx_mbit_s: f64,
    /// Copy-meter movement between the polls (all layers).
    pub copied_bytes_delta: f64,
    /// Requests the server received between the polls.
    pub requests_delta: f64,
}

/// Compute deltas between two samples of the *same* server.
pub fn delta(prev: &TopSample, cur: &TopSample, elapsed_s: f64) -> TopDelta {
    let secs = if elapsed_s > 0.0 { elapsed_s } else { 1.0 };
    let d = |key: &str| (cur.num(key) - prev.num(key)).max(0.0);
    TopDelta {
        elapsed_s,
        goodput_mbit_s: d("transport.wire_bytes_recv") * 8.0 / secs / 1e6,
        tx_mbit_s: d("transport.wire_bytes_sent") * 8.0 / secs / 1e6,
        copied_bytes_delta: (cur.total_copied_bytes() - prev.total_copied_bytes()).max(0.0),
        requests_delta: d("counter.requests_received"),
    }
}

fn fmt_bytes(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} GiB", v / (1u64 << 30) as f64)
    } else if v >= 1e6 {
        format!("{:.2} MiB", v / (1u64 << 20) as f64)
    } else if v >= 1e3 {
        format!("{:.1} KiB", v / 1024.0)
    } else {
        format!("{v:.0} B")
    }
}

/// Render one refreshing dashboard frame.
pub fn render_frame(s: &TopSample, d: Option<&TopDelta>, endpoint: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "zc-top — {endpoint}   telemetry: {}",
        if s.enabled { "enabled" } else { "DISABLED" }
    );
    let _ = writeln!(out, "{}", "─".repeat(72));
    if let Some(d) = d {
        let _ = writeln!(
            out,
            "goodput   {:>10.1} Mbit/s in   {:>10.1} Mbit/s out   ({:.2}s window)",
            d.goodput_mbit_s, d.tx_mbit_s, d.elapsed_s
        );
        let _ = writeln!(
            out,
            "copies    {:>10} copied between polls   req Δ {:>8.0}",
            fmt_bytes(d.copied_bytes_delta),
            d.requests_delta
        );
    }
    let _ = writeln!(
        out,
        "load      {:>8.1} req/s   tx {:>12.0} B/s   rx {:>12.0} B/s   retries {:>6.2}/s",
        s.num("load.req_per_s"),
        s.num("load.wire_tx_bytes_per_s"),
        s.num("load.wire_rx_bytes_per_s"),
        s.num("load.retries_per_s"),
    );
    let _ = writeln!(
        out,
        "inflight  {:>4.0} (peak {:>4.0})   conns {:>4.0} (peak {:>4.0})   spec-hit {:>6.3}",
        s.num("load.inflight"),
        s.num("load.inflight_peak"),
        s.num("load.conns"),
        s.num("load.conns_peak"),
        s.num("transport.spec_hit_rate"),
    );
    let _ = writeln!(
        out,
        "health    degraded {:>3.0} (peak {:>3.0})   breakers {:>3.0} (peak {:>3.0})   retries {:>6.0} total",
        s.num("load.degraded_conns"),
        s.num("load.degraded_conns_peak"),
        s.num("load.breakers_open"),
        s.num("load.breakers_open_peak"),
        s.num("counter.retries"),
    );
    let _ = writeln!(
        out,
        "overload  shed {:>7.0} total ({:>6.2}/s)   brownout {:>7.0} ({:>6.2}/s)   failover {:>5.0} ({:>6.2}/s)",
        s.num("counter.sheds"),
        s.num("load.shed_per_s"),
        s.num("counter.brownout_sheds"),
        s.num("load.brownout_per_s"),
        s.num("counter.failovers"),
        s.num("load.failover_per_s"),
    );
    let _ = writeln!(
        out,
        "marks     reassembly peak {:>10}   pool retained {:>10} (peak {:>10})",
        fmt_bytes(s.num("load.reassembly_bytes_peak")),
        fmt_bytes(s.num("pool.retained_bytes")),
        fmt_bytes(s.num("load.pool_retained_peak")),
    );
    let _ = writeln!(
        out,
        "counters  rx {:>9.0}   ok {:>9.0}   exc {:>6.0}   degr {:>4.0}   upgr {:>4.0}   brk {:>4.0}",
        s.num("counter.requests_received"),
        s.num("counter.replies_ok"),
        s.num("counter.replies_exception"),
        s.num("counter.degradations"),
        s.num("counter.upgrades"),
        s.num("counter.breaker_opens"),
    );
    let p99s = s.stage_p99s();
    if !p99s.is_empty() {
        let _ = writeln!(out, "stage p99 (ns)");
        for chunk in p99s.chunks(3) {
            let mut line = String::from("  ");
            for (name, p99) in chunk {
                let _ = write!(line, "{name:<16}{p99:>12.0}   ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
    }
    let _ = writeln!(
        out,
        "recorder  {:>9.0} events   {:>6.0} dropped",
        s.num("recorder.recorded"),
        s.num("recorder.dropped"),
    );
    out
}

/// Every key the `--once --json` summary is contractually required to
/// carry. CI asserts the whole list with one jq query (replacing the old
/// hand-maintained grep loop, which silently rotted whenever a key was
/// renamed), `zc-top --keys` prints it for scripts, and a unit test keeps
/// it in lock-step with [`render_once_json`] in both directions.
pub const REQUIRED_JSON_KEYS: &[&str] = &[
    "schema",
    "endpoint",
    "enabled",
    "goodput_mbit_s",
    "tx_mbit_s",
    "copied_bytes_delta",
    "poll_interval_s",
    "req_per_s",
    "wire_tx_bytes_per_s",
    "wire_rx_bytes_per_s",
    "retries_per_s",
    "inflight",
    "inflight_peak",
    "conns",
    "conns_peak",
    "degraded_conns",
    "degraded_conns_peak",
    "breakers_open",
    "breakers_open_peak",
    "reassembly_peak_bytes",
    "pool_retained_bytes",
    "pool_retained_peak",
    "requests_received",
    "replies_ok",
    "replies_exception",
    "retries_total",
    "reconnects_total",
    "breaker_opens_total",
    "sheds_total",
    "brownout_sheds_total",
    "failovers_total",
    "shed_per_s",
    "brownout_per_s",
    "failover_per_s",
    "degradations_total",
    "upgrades_total",
    "spec_hit_rate",
    "events_recorded",
    "events_dropped",
    "stage_p99_ns",
];

/// The numeric summary fields, in emission order: the `REQUIRED_JSON_KEYS`
/// tail between the three header fields and `stage_p99_ns`.
fn summary_numbers(s: &TopSample, d: &TopDelta) -> [f64; 36] {
    [
        d.goodput_mbit_s,
        d.tx_mbit_s,
        d.copied_bytes_delta,
        d.elapsed_s,
        s.num("load.req_per_s"),
        s.num("load.wire_tx_bytes_per_s"),
        s.num("load.wire_rx_bytes_per_s"),
        s.num("load.retries_per_s"),
        s.num("load.inflight"),
        s.num("load.inflight_peak"),
        s.num("load.conns"),
        s.num("load.conns_peak"),
        s.num("load.degraded_conns"),
        s.num("load.degraded_conns_peak"),
        s.num("load.breakers_open"),
        s.num("load.breakers_open_peak"),
        s.num("load.reassembly_bytes_peak"),
        s.num("pool.retained_bytes"),
        s.num("load.pool_retained_peak"),
        s.num("counter.requests_received"),
        s.num("counter.replies_ok"),
        s.num("counter.replies_exception"),
        s.num("counter.retries"),
        s.num("counter.reconnects"),
        s.num("counter.breaker_opens"),
        s.num("counter.sheds"),
        s.num("counter.brownout_sheds"),
        s.num("counter.failovers"),
        s.num("load.shed_per_s"),
        s.num("load.brownout_per_s"),
        s.num("load.failover_per_s"),
        s.num("counter.degradations"),
        s.num("counter.upgrades"),
        s.num("transport.spec_hit_rate"),
        s.num("recorder.recorded"),
        s.num("recorder.dropped"),
    ]
}

/// Render the `--once --json` machine summary: one flat object carrying
/// exactly [`REQUIRED_JSON_KEYS`]. Hand-rolled like every other JSON
/// emitter here; the key names come straight from the required list so the
/// contract and the emitter cannot drift apart.
pub fn render_once_json(s: &TopSample, d: &TopDelta, endpoint: &str) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"schema\":\"zcorba-top/v1\"");
    let _ = write!(out, ",\"endpoint\":\"{endpoint}\"");
    let _ = write!(out, ",\"enabled\":{}", s.enabled);
    let numeric_keys = &REQUIRED_JSON_KEYS[3..REQUIRED_JSON_KEYS.len() - 1];
    for (key, v) in numeric_keys.iter().zip(summary_numbers(s, d)) {
        let _ = write!(out, ",\"{key}\":{v:.6}");
    }
    let _ = write!(out, ",\"stage_p99_ns\":{{");
    let mut first = true;
    for (name, p99) in s.stage_p99s() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{name}\":{p99:.0}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zc_buffers::{CopySnapshot, PoolStats};

    /// A real snapshot produced by zc-trace, round-tripped through the
    /// parser: this is the contract between the server and the dashboard.
    fn live_sample() -> TopSample {
        let tele = zc_trace::Telemetry::with_capacity(64);
        tele.metrics().requests_received.incr();
        tele.metrics().requests_received.incr();
        tele.metrics().replies_ok.incr();
        tele.transport()
            .add(zc_trace::TransportField::WireBytesRecv, 1 << 20);
        tele.record_stage(zc_trace::Stage::ServerDispatch, 1, 7, 999);
        tele.note_request_received();
        tele.note_dispatch_begin();
        tele.note_reassembly_bytes(123_456);
        let snap = tele.orb_snapshot(CopySnapshot::default(), PoolStats::default());
        TopSample::parse(&snap.json_lines()).expect("parse own snapshot")
    }

    #[test]
    fn parses_live_snapshot_fields() {
        let s = live_sample();
        assert!(s.enabled);
        assert_eq!(s.num("counter.requests_received"), 2.0);
        assert_eq!(s.num("transport.wire_bytes_recv"), (1u64 << 20) as f64);
        assert_eq!(s.num("load.inflight"), 1.0);
        assert_eq!(s.num("load.reassembly_bytes_peak"), 123_456.0);
        let p99s = s.stage_p99s();
        assert!(
            p99s.iter().any(|(n, v)| *n == "dispatch" && *v > 0.0),
            "{p99s:?}"
        );
    }

    #[test]
    fn deltas_compute_goodput() {
        let tele = zc_trace::Telemetry::with_capacity(8);
        let snap = |t: &zc_trace::Telemetry| {
            TopSample::parse(
                &t.orb_snapshot(CopySnapshot::default(), PoolStats::default())
                    .json_lines(),
            )
            .unwrap()
        };
        let a = snap(&tele);
        tele.transport()
            .add(zc_trace::TransportField::WireBytesRecv, 10_000_000);
        let b = snap(&tele);
        let d = delta(&a, &b, 2.0);
        // 10 MB in 2 s = 40 Mbit/s.
        assert!(
            (d.goodput_mbit_s - 40.0).abs() < 1e-6,
            "{}",
            d.goodput_mbit_s
        );
        // Counters are monotone, so deltas never go negative.
        let back = delta(&b, &a, 2.0);
        assert_eq!(back.goodput_mbit_s, 0.0);
    }

    #[test]
    fn frame_and_json_render_required_keys() {
        let s = live_sample();
        let d = TopDelta {
            elapsed_s: 0.25,
            goodput_mbit_s: 812.5,
            tx_mbit_s: 11.0,
            copied_bytes_delta: 4096.0,
            requests_delta: 100.0,
        };
        let frame = render_frame(&s, Some(&d), "127.0.0.1:47117");
        assert!(frame.contains("zc-top"), "{frame}");
        assert!(frame.contains("goodput"), "{frame}");
        assert!(frame.contains("stage p99"), "{frame}");
        assert!(frame.contains("reassembly peak"), "{frame}");
        assert!(frame.contains("overload"), "{frame}");
        assert!(frame.contains("brownout"), "{frame}");
        assert!(frame.contains("failover"), "{frame}");

        let json = render_once_json(&s, &d, "127.0.0.1:47117");
        let v = parse_json(&json).expect("valid json");
        for key in [
            "goodput_mbit_s",
            "req_per_s",
            "wire_rx_bytes_per_s",
            "retries_per_s",
            "inflight_peak",
            "breakers_open",
            "degraded_conns",
            "reassembly_peak_bytes",
            "pool_retained_peak",
            "spec_hit_rate",
            "copied_bytes_delta",
            "sheds_total",
            "brownout_sheds_total",
            "failovers_total",
            "shed_per_s",
            "brownout_per_s",
            "failover_per_s",
        ] {
            assert!(v.get(key).and_then(Json::as_f64).is_some(), "missing {key}");
        }
        assert!(
            v.get("stage_p99_ns")
                .and_then(|o| o.get("dispatch"))
                .is_some(),
            "{json}"
        );
    }

    /// The schema contract, both directions: every required key is
    /// emitted, and nothing is emitted that the required list does not
    /// name. CI's jq check trusts this list, so drift fails here first.
    #[test]
    fn json_summary_carries_exactly_the_required_keys() {
        let s = live_sample();
        let json = render_once_json(&s, &TopDelta::default(), "127.0.0.1:1");
        let v = parse_json(&json).expect("valid json");
        for key in REQUIRED_JSON_KEYS {
            assert!(v.get(key).is_some(), "summary missing required key {key}");
        }
        let Json::Obj(members) = &v else {
            panic!("summary is not an object")
        };
        for (key, _) in members {
            assert!(
                REQUIRED_JSON_KEYS.contains(&key.as_str()),
                "summary emits undeclared key {key}"
            );
        }
        assert_eq!(members.len(), REQUIRED_JSON_KEYS.len());
    }

    #[test]
    fn parse_rejects_garbage_but_skips_unknown_sections() {
        assert!(TopSample::parse("not json").is_err());
        assert!(TopSample::parse("").is_err());
        // Unknown sections are tolerated (forward compatibility).
        let s = TopSample::parse(
            "{\"section\":\"future_thing\",\"x\":1}\n{\"section\":\"recorder\",\"enabled\":true,\"recorded\":5,\"dropped\":0}\n",
        )
        .unwrap();
        assert!(s.enabled);
        assert_eq!(s.num("future_thing.x"), 1.0);
        assert_eq!(s.num("recorder.recorded"), 5.0);
    }
}
