//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary prints two views of its experiment:
//!
//! 1. **modeled** — the calibrated 2003-testbed prediction (`zc-simnet`),
//!    which is what should be compared against the paper's absolute
//!    Mbit/s;
//! 2. **measured** — the same configuration really executed on this host
//!    through the operational stack (`zc-transport`/`zc-orb`), where the
//!    copies are real `memcpy`s; absolute numbers reflect *this* machine,
//!    but the ordering and the copy accounting must tell the same story.

use zc_trace::OrbTelemetry;
use zc_ttcp::{run_measured, run_modeled, MeasuredOutcome, Series, TtcpParams, TtcpVersion};

/// Block sizes for the measured sweep (a subset of the paper's range keeps
/// harness runtime reasonable; pass `--full` to binaries for all sizes).
pub fn measured_block_sizes(full: bool) -> Vec<usize> {
    if full {
        zc_simnet::paper_block_sizes()
    } else {
        vec![4 << 10, 64 << 10, 1 << 20, 4 << 20]
    }
}

/// Total bytes to move per measured point (scales a little with block
/// size so small blocks don't take forever).
pub fn measured_total(block: usize) -> usize {
    (block * 16).clamp(8 << 20, 64 << 20)
}

/// Modeled series over the paper's full size range.
pub fn modeled_series(version: TtcpVersion, sizes: &[usize]) -> Series {
    Series::new(
        format!("{} (model)", version.label()),
        sizes.iter().map(|&b| run_modeled(version, b)).collect(),
    )
}

/// One measured point, optionally with telemetry enabled.
pub fn measured_point(version: TtcpVersion, block: usize, traced: bool) -> MeasuredOutcome {
    let mut p = TtcpParams::new(version, block, measured_total(block));
    p.traced = traced;
    run_measured(&p)
}

/// Measured series over the host (telemetry disabled).
pub fn measured_series(version: TtcpVersion, sizes: &[usize]) -> Series {
    measured_series_traced(version, sizes, false).0
}

/// Measured series over the host; when `traced`, every point runs with
/// telemetry enabled and the last point's merged [`OrbTelemetry`] snapshot
/// is returned alongside the throughput series.
pub fn measured_series_traced(
    version: TtcpVersion,
    sizes: &[usize],
    traced: bool,
) -> (Series, Option<OrbTelemetry>) {
    let mut last = None;
    let values = sizes
        .iter()
        .map(|&b| {
            let out = measured_point(version, b, traced);
            if out.telemetry.is_some() {
                last = out.telemetry;
            }
            out.mbit_s
        })
        .collect();
    (
        Series::new(format!("{} (host)", version.label()), values),
        last,
    )
}

/// Parse the common harness flags: `--full` widens the measured sweep.
pub fn full_flag() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// `--no-trace` turns the measured runs' telemetry off (fig5/fig6 trace by
/// default to exercise the observability path alongside the benchmark).
pub fn trace_flag() -> bool {
    !std::env::args().any(|a| a == "--no-trace")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes() {
        assert_eq!(measured_block_sizes(false).len(), 4);
        assert_eq!(measured_block_sizes(true).len(), 13);
        assert!(measured_total(4096) >= 8 << 20);
        assert!(measured_total(16 << 20) <= 64 << 20);
    }

    #[test]
    fn modeled_series_has_all_points() {
        let sizes = zc_simnet::paper_block_sizes();
        let s = modeled_series(TtcpVersion::RawTcp, &sizes);
        assert_eq!(s.values.len(), sizes.len());
        assert!(s.values.iter().all(|&v| v > 0.0));
    }
}
