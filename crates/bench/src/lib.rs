//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary prints two views of its experiment:
//!
//! 1. **modeled** — the calibrated 2003-testbed prediction (`zc-simnet`),
//!    which is what should be compared against the paper's absolute
//!    Mbit/s;
//! 2. **measured** — the same configuration really executed on this host
//!    through the operational stack (`zc-transport`/`zc-orb`), where the
//!    copies are real `memcpy`s; absolute numbers reflect *this* machine,
//!    but the ordering and the copy accounting must tell the same story.

pub mod flame;
pub mod overload;
pub mod report;
pub mod top;
pub mod trajectory;

pub use flame::{
    analyze_spool_dir, reconstruct_journeys, Attempt, FlameAnalysis, Journey, FLAME_SCHEMA,
};

pub use overload::{
    probe_capacity, run_point as overload_point, run_sweep as overload_sweep, OverloadCurve,
    OverloadMode, OverloadParams, OverloadPoint,
};

pub use report::{
    json_flag, print_telemetry, render_breakdown_json, render_breakdown_text, run_breakdown,
    Breakdown, BreakdownColumn, BREAKDOWN_CONFIGS,
};
pub use trajectory::{
    compare, find_baseline, parse_json, Json, TrajectorySnapshot, Verdict, SCHEMA,
};

use zc_trace::OrbTelemetry;
use zc_ttcp::{run_measured, run_modeled, MeasuredOutcome, Series, TtcpParams, TtcpVersion};

/// Block sizes for the measured sweep (a subset of the paper's range keeps
/// harness runtime reasonable; pass `--full` to binaries for all sizes).
pub fn measured_block_sizes(full: bool) -> Vec<usize> {
    if full {
        zc_simnet::paper_block_sizes()
    } else {
        vec![4 << 10, 64 << 10, 1 << 20, 4 << 20]
    }
}

/// Total bytes to move per measured point (scales a little with block
/// size so small blocks don't take forever).
pub fn measured_total(block: usize) -> usize {
    (block * 16).clamp(8 << 20, 64 << 20)
}

/// Modeled series over the paper's full size range.
pub fn modeled_series(version: TtcpVersion, sizes: &[usize]) -> Series {
    Series::new(
        format!("{} (model)", version.label()),
        sizes.iter().map(|&b| run_modeled(version, b)).collect(),
    )
}

/// One measured point, optionally with telemetry enabled.
pub fn measured_point(version: TtcpVersion, block: usize, traced: bool) -> MeasuredOutcome {
    let mut p = TtcpParams::new(version, block, measured_total(block));
    p.traced = traced;
    run_measured(&p)
}

/// Measured series over the host (telemetry disabled).
pub fn measured_series(version: TtcpVersion, sizes: &[usize]) -> Series {
    measured_series_traced(version, sizes, false).0
}

/// Measured series over the host; when `traced`, every point runs with
/// telemetry enabled and the last point's merged [`OrbTelemetry`] snapshot
/// is returned alongside the throughput series.
pub fn measured_series_traced(
    version: TtcpVersion,
    sizes: &[usize],
    traced: bool,
) -> (Series, Option<OrbTelemetry>) {
    let mut last = None;
    let values = sizes
        .iter()
        .map(|&b| {
            let out = measured_point(version, b, traced);
            if out.telemetry.is_some() {
                last = out.telemetry;
            }
            out.mbit_s
        })
        .collect();
    (
        Series::new(format!("{} (host)", version.label()), values),
        last,
    )
}

/// Parse the common harness flags: `--full` widens the measured sweep.
pub fn full_flag() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// `--no-trace` turns the measured runs' telemetry off (fig5/fig6 trace by
/// default to exercise the observability path alongside the benchmark).
pub fn trace_flag() -> bool {
    !std::env::args().any(|a| a == "--no-trace")
}

// ---------------------------------------------------------------------------
// Fault sweep: goodput through the self-healing ORB under injected frame
// loss.
// ---------------------------------------------------------------------------

/// Outcome of one fault-sweep point: `calls` idempotent zero-copy echoes of
/// `block_bytes` payloads over a [`SimNetwork`] whose frames are dropped
/// (modeled as wire cuts) with probability `drop_prob`, driven through the
/// retrying, reconnecting ORB client.
#[derive(Debug, Clone, Copy)]
pub struct FaultSweepPoint {
    /// Per-frame drop probability injected into the simulated network.
    pub drop_prob: f64,
    /// Payload bytes per call.
    pub block_bytes: usize,
    /// Invocations attempted.
    pub calls: u32,
    /// Invocations that ultimately succeeded (possibly after retries).
    pub ok: u32,
    /// Invocations that exhausted the retry budget.
    pub failed: u32,
    /// Retry attempts recorded by the ORB.
    pub retries: u64,
    /// Replacement connections established.
    pub reconnects: u64,
    /// Application goodput: successfully echoed payload bytes per second
    /// of wall clock, in Mbit/s. Retries and reconnect stalls are paid for
    /// here — this is what frame loss costs the application.
    pub goodput_mbit_s: f64,
}

impl FaultSweepPoint {
    /// CSV row matching [`fault_sweep_csv_header`].
    pub fn to_csv_row(&self) -> String {
        format!(
            "{:.4},{},{},{},{},{},{},{:.2}",
            self.drop_prob,
            self.block_bytes,
            self.calls,
            self.ok,
            self.failed,
            self.retries,
            self.reconnects,
            self.goodput_mbit_s
        )
    }
}

/// Header for the fault-sweep CSV section.
pub fn fault_sweep_csv_header() -> &'static str {
    "drop_prob,block_bytes,calls,ok,failed,retries,reconnects,goodput_mbit_s"
}

struct ByteSum;

impl zc_orb::Servant for ByteSum {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/bench/ByteSum:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut zc_orb::ServerRequest<'_>) -> zc_orb::OrbResult<()> {
        match op {
            "sum" => {
                let data: zc_cdr::ZcOctetSeq = req.arg()?;
                let sum: u64 = data.iter().map(|&b| b as u64).sum();
                req.result(&sum)
            }
            other => req.bad_operation(other),
        }
    }
}

/// Run one fault-sweep point: a fresh simulated network with per-frame
/// drop probability `drop_prob` on both sides, a zero-copy server, and a
/// client whose retry policy has fast backoffs and no circuit breaker (the
/// sweep measures recovery throughput, not fail-fast behaviour).
pub fn fault_sweep_point(drop_prob: f64, calls: u32, block_bytes: usize) -> FaultSweepPoint {
    use std::sync::Arc;
    use zc_orb::ObjectAdapterExt;

    let net = zc_transport::SimNetwork::new(zc_transport::SimConfig::zero_copy());
    let telemetry = zc_trace::Telemetry::with_capacity(1024);
    let server_orb = zc_orb::Orb::builder().sim(net.clone()).build();
    server_orb.adapter().register("bytesum", Arc::new(ByteSum));
    let server = server_orb.serve(0).expect("serve");
    let retry = zc_orb::RetryPolicy {
        max_attempts: 6,
        base_backoff: std::time::Duration::from_micros(100),
        max_backoff: std::time::Duration::from_millis(2),
        breaker_threshold: u32::MAX,
        ..zc_orb::RetryPolicy::default()
    };
    let client = zc_orb::Orb::builder()
        .sim(net.clone())
        .retry(retry)
        .telemetry(Arc::clone(&telemetry))
        .build();
    let obj = client
        .resolve(
            &server
                .ior_for("bytesum", "IDL:zcorba/bench/ByteSum:1.0")
                .expect("ior"),
        )
        .expect("resolve");

    let payload = zc_cdr::ZcOctetSeq::with_length(block_bytes);
    let expected: u64 = payload.iter().map(|&b| b as u64).sum();

    net.inject_faults(zc_transport::FaultPlan::drop(drop_prob).on(zc_transport::FaultSide::Both));

    let mut ok = 0u32;
    let mut failed = 0u32;
    let start = std::time::Instant::now();
    for _ in 0..calls {
        let outcome = obj
            .request("sum")
            .idempotent()
            .arg(&payload)
            .expect("marshal")
            .invoke();
        match outcome {
            Ok(reply) => {
                let sum: u64 = reply.result().expect("result");
                assert_eq!(sum, expected, "payload corrupted in flight");
                ok += 1;
            }
            Err(_) => failed += 1,
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    net.clear_faults();

    let metrics = telemetry.metrics();
    FaultSweepPoint {
        drop_prob,
        block_bytes,
        calls,
        ok,
        failed,
        retries: metrics.retries.get(),
        reconnects: metrics.reconnects.get(),
        goodput_mbit_s: (ok as f64 * block_bytes as f64 * 8.0) / elapsed / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes() {
        assert_eq!(measured_block_sizes(false).len(), 4);
        assert_eq!(measured_block_sizes(true).len(), 13);
        assert!(measured_total(4096) >= 8 << 20);
        assert!(measured_total(16 << 20) <= 64 << 20);
    }

    #[test]
    fn fault_sweep_point_lossless_baseline() {
        let pt = fault_sweep_point(0.0, 8, 4 << 10);
        assert_eq!(pt.ok, 8);
        assert_eq!(pt.failed, 0);
        assert_eq!(pt.retries, 0);
        assert!(pt.goodput_mbit_s > 0.0);
    }

    #[test]
    fn fault_sweep_point_recovers_under_loss() {
        let pt = fault_sweep_point(0.05, 24, 4 << 10);
        // Heavy loss must show recovery work, and most calls still land.
        assert!(pt.retries + pt.reconnects > 0);
        assert!(pt.ok > pt.calls / 2);
    }

    #[test]
    fn modeled_series_has_all_points() {
        let sizes = zc_simnet::paper_block_sizes();
        let s = modeled_series(TtcpVersion::RawTcp, &sizes);
        assert_eq!(s.values.len(), sizes.len());
        assert!(s.values.iter().all(|&v| v > 0.0));
    }
}
