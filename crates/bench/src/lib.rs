//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary prints two views of its experiment:
//!
//! 1. **modeled** — the calibrated 2003-testbed prediction (`zc-simnet`),
//!    which is what should be compared against the paper's absolute
//!    Mbit/s;
//! 2. **measured** — the same configuration really executed on this host
//!    through the operational stack (`zc-transport`/`zc-orb`), where the
//!    copies are real `memcpy`s; absolute numbers reflect *this* machine,
//!    but the ordering and the copy accounting must tell the same story.

use zc_ttcp::{run_measured, run_modeled, Series, TtcpParams, TtcpVersion};

/// Block sizes for the measured sweep (a subset of the paper's range keeps
/// harness runtime reasonable; pass `--full` to binaries for all sizes).
pub fn measured_block_sizes(full: bool) -> Vec<usize> {
    if full {
        zc_simnet::paper_block_sizes()
    } else {
        vec![4 << 10, 64 << 10, 1 << 20, 4 << 20]
    }
}

/// Total bytes to move per measured point (scales a little with block
/// size so small blocks don't take forever).
pub fn measured_total(block: usize) -> usize {
    (block * 16).clamp(8 << 20, 64 << 20)
}

/// Modeled series over the paper's full size range.
pub fn modeled_series(version: TtcpVersion, sizes: &[usize]) -> Series {
    Series::new(
        format!("{} (model)", version.label()),
        sizes.iter().map(|&b| run_modeled(version, b)).collect(),
    )
}

/// Measured series over the host.
pub fn measured_series(version: TtcpVersion, sizes: &[usize]) -> Series {
    Series::new(
        format!("{} (host)", version.label()),
        sizes
            .iter()
            .map(|&b| {
                let p = TtcpParams::new(version, b, measured_total(b));
                run_measured(&p).mbit_s
            })
            .collect(),
    )
}

/// Parse the common harness flags: `--full` widens the measured sweep.
pub fn full_flag() -> bool {
    std::env::args().any(|a| a == "--full")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes() {
        assert_eq!(measured_block_sizes(false).len(), 4);
        assert_eq!(measured_block_sizes(true).len(), 13);
        assert!(measured_total(4096) >= 8 << 20);
        assert!(measured_total(16 << 20) <= 64 << 20);
    }

    #[test]
    fn modeled_series_has_all_points() {
        let sizes = zc_simnet::paper_block_sizes();
        let s = modeled_series(TtcpVersion::RawTcp, &sizes);
        assert_eq!(s.values.len(), sizes.len());
        assert!(s.values.iter().all(|&v| v > 0.0));
    }
}
