//! Emit the figure sweep as CSV (for plotting or regression tracking), or
//! as shared-format JSON with `--json`.
//!
//! Three sections, separated by blank lines and `#` comment headers:
//!
//! 1. the **modeled** sweep — all six configurations of Figures 5/6 across
//!    the paper's block sizes on the calibrated P-II/GbE testbed;
//! 2. the **measured** sweep — the same configurations really executed on
//!    this host with telemetry enabled, including speculation hit/miss
//!    counts, wire-byte totals, per-layer copy-meter bytes, request
//!    latency quantiles and the request-span stage p50/p99;
//! 3. the **fault** sweep — per-frame drop probability vs goodput through
//!    the self-healing ORB (retries + reconnects per point, so recovery
//!    cost is visible, not just failure counts). See docs/fault-model.md.
//!
//! ```text
//! cargo run -p zc-bench --bin sweep_csv --release > sweep.csv
//! cargo run -p zc-bench --bin sweep_csv --release -- --modern        # 2003 desktop
//! cargo run -p zc-bench --bin sweep_csv --release -- --modeled-only  # skip host runs
//! cargo run -p zc-bench --bin sweep_csv --release -- --fault-only    # only section 3
//! cargo run -p zc-bench --bin sweep_csv --release -- --json          # JSON lines
//! ```

use zc_bench::trajectory::{goodput_json, GoodputPoint};
use zc_bench::{
    fault_sweep_csv_header, fault_sweep_point, json_flag, measured_block_sizes, measured_point,
};
use zc_buffers::CopyLayer;
use zc_simnet::{run_sweep, LinkSpec, MachineSpec, FIGURE_CONFIGS};
use zc_trace::Stage;
use zc_ttcp::{run_modeled, TtcpVersion};

fn main() {
    let modern = std::env::args().any(|a| a == "--modern");
    let modeled_only = std::env::args().any(|a| a == "--modeled-only");
    let fault_only = std::env::args().any(|a| a == "--fault-only");
    let json = json_flag();
    if !fault_only {
        let machine = if modern {
            MachineSpec::modern_2003()
        } else {
            MachineSpec::pentium_ii_400()
        };
        let sweep = run_sweep(
            machine,
            LinkSpec::gigabit_ethernet(),
            &zc_simnet::paper_block_sizes(),
            &FIGURE_CONFIGS,
        );
        if !json {
            println!("# modeled (calibrated 2003 testbed)");
            print!("{}", sweep.to_csv());
        }
        if modeled_only && !json {
            return;
        }
        measured_section(json);
        if !json {
            println!();
        }
    }
    if json {
        for &p in &[0.0, 0.0005, 0.001, 0.002, 0.005, 0.01] {
            let pt = fault_sweep_point(p, 400, 64 << 10);
            println!(
                "{{\"section\":\"fault\",\"drop_prob\":{:.4},\"block_bytes\":{},\"calls\":{},\
                 \"ok\":{},\"failed\":{},\"retries\":{},\"reconnects\":{},\"goodput_mbit_s\":{:.2}}}",
                pt.drop_prob,
                pt.block_bytes,
                pt.calls,
                pt.ok,
                pt.failed,
                pt.retries,
                pt.reconnects,
                pt.goodput_mbit_s
            );
        }
    } else {
        println!(
            "# fault sweep: per-frame drop probability vs goodput through the self-healing ORB"
        );
        println!("{}", fault_sweep_csv_header());
        for &p in &[0.0, 0.0005, 0.001, 0.002, 0.005, 0.01] {
            println!("{}", fault_sweep_point(p, 400, 64 << 10).to_csv_row());
        }
    }
}

fn measured_section(json: bool) {
    if !json {
        println!();
        println!("# measured on this host (telemetry-enabled runs)");
        println!(
            "version,block_bytes,mbit_s,overhead_copy_factor,spec_hits,spec_misses,\
             wire_bytes_sent,wire_bytes_recv,marshal_bytes,demarshal_bytes,\
             socket_send_bytes,socket_recv_bytes,kernel_frag_bytes,kernel_defrag_bytes,\
             deposit_fallback_bytes,latency_p50_ns,latency_p99_ns,\
             stage_marshal_p50_ns,stage_marshal_p99_ns,stage_wire_p50_ns,\
             stage_demarshal_p50_ns,stage_dispatch_p50_ns"
        );
    }
    for version in TtcpVersion::ALL {
        for &block in &measured_block_sizes(false) {
            let out = measured_point(version, block, true);
            let t = out.telemetry.expect("traced run produces telemetry");
            if json {
                let point = GoodputPoint {
                    version,
                    transport: "sim",
                    block_bytes: block,
                    modeled_mbit_s: run_modeled(version, block),
                    measured_mbit_s: out.mbit_s,
                    overhead_copy_factor: out.overhead_copy_factor,
                    spec_hit_rate: t.spec_hit_rate(),
                };
                println!("{}", goodput_json(&point));
                continue;
            }
            let lat = t.metrics.request_latency_ns;
            let stage = |s: Stage, q: f64| t.metrics.stage_ns.get(s).quantile(q);
            println!(
                "{},{},{:.1},{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                version.label().replace(',', ";"),
                block,
                out.mbit_s,
                out.overhead_copy_factor,
                t.transport.spec_hits,
                t.transport.spec_misses,
                t.transport.wire_bytes_sent,
                t.transport.wire_bytes_recv,
                out.copies.bytes(CopyLayer::Marshal),
                out.copies.bytes(CopyLayer::Demarshal),
                out.copies.bytes(CopyLayer::SocketSend),
                out.copies.bytes(CopyLayer::SocketRecv),
                out.copies.bytes(CopyLayer::KernelFrag),
                out.copies.bytes(CopyLayer::KernelDefrag),
                out.copies.bytes(CopyLayer::DepositFallback),
                lat.quantile(0.50),
                lat.quantile(0.99),
                stage(Stage::ClientMarshal, 0.50),
                stage(Stage::ClientMarshal, 0.99),
                stage(Stage::Wire, 0.50),
                stage(Stage::ServerDemarshal, 0.50),
                stage(Stage::ServerDispatch, 0.50),
            );
        }
    }
}
