//! Emit the figure sweep as CSV (for plotting or regression tracking).
//!
//! Three sections, separated by blank lines and `#` comment headers:
//!
//! 1. the **modeled** sweep — all six configurations of Figures 5/6 across
//!    the paper's block sizes on the calibrated P-II/GbE testbed;
//! 2. the **measured** sweep — the same configurations really executed on
//!    this host with telemetry enabled, including speculation hit/miss
//!    counts, wire-byte totals, per-layer copy-meter bytes and request
//!    latency quantiles;
//! 3. the **fault** sweep — per-frame drop probability vs goodput through
//!    the self-healing ORB (retries + reconnects per point, so recovery
//!    cost is visible, not just failure counts). See docs/fault-model.md.
//!
//! ```text
//! cargo run -p zc-bench --bin sweep_csv --release > sweep.csv
//! cargo run -p zc-bench --bin sweep_csv --release -- --modern        # 2003 desktop
//! cargo run -p zc-bench --bin sweep_csv --release -- --modeled-only  # skip host runs
//! cargo run -p zc-bench --bin sweep_csv --release -- --fault-only    # only section 3
//! ```

use zc_bench::{fault_sweep_csv_header, fault_sweep_point, measured_block_sizes, measured_point};
use zc_buffers::CopyLayer;
use zc_simnet::{run_sweep, LinkSpec, MachineSpec, FIGURE_CONFIGS};
use zc_ttcp::TtcpVersion;

fn main() {
    let modern = std::env::args().any(|a| a == "--modern");
    let modeled_only = std::env::args().any(|a| a == "--modeled-only");
    let fault_only = std::env::args().any(|a| a == "--fault-only");
    if !fault_only {
        let machine = if modern {
            MachineSpec::modern_2003()
        } else {
            MachineSpec::pentium_ii_400()
        };
        let sweep = run_sweep(
            machine,
            LinkSpec::gigabit_ethernet(),
            &zc_simnet::paper_block_sizes(),
            &FIGURE_CONFIGS,
        );
        println!("# modeled (calibrated 2003 testbed)");
        print!("{}", sweep.to_csv());
        if modeled_only {
            return;
        }
        measured_section();
        println!();
    }
    println!("# fault sweep: per-frame drop probability vs goodput through the self-healing ORB");
    println!("{}", fault_sweep_csv_header());
    for &p in &[0.0, 0.0005, 0.001, 0.002, 0.005, 0.01] {
        println!("{}", fault_sweep_point(p, 400, 64 << 10).to_csv_row());
    }
}

fn measured_section() {
    println!();
    println!("# measured on this host (telemetry-enabled runs)");
    println!(
        "version,block_bytes,mbit_s,overhead_copy_factor,spec_hits,spec_misses,\
         wire_bytes_sent,wire_bytes_recv,marshal_bytes,demarshal_bytes,\
         socket_send_bytes,socket_recv_bytes,kernel_frag_bytes,kernel_defrag_bytes,\
         deposit_fallback_bytes,latency_p50_ns,latency_p99_ns"
    );
    for version in TtcpVersion::ALL {
        for &block in &measured_block_sizes(false) {
            let out = measured_point(version, block, true);
            let t = out.telemetry.expect("traced run produces telemetry");
            let lat = t.metrics.request_latency_ns;
            println!(
                "{},{},{:.1},{:.3},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                version.label().replace(',', ";"),
                block,
                out.mbit_s,
                out.overhead_copy_factor,
                t.transport.spec_hits,
                t.transport.spec_misses,
                t.transport.wire_bytes_sent,
                t.transport.wire_bytes_recv,
                out.copies.bytes(CopyLayer::Marshal),
                out.copies.bytes(CopyLayer::Demarshal),
                out.copies.bytes(CopyLayer::SocketSend),
                out.copies.bytes(CopyLayer::SocketRecv),
                out.copies.bytes(CopyLayer::KernelFrag),
                out.copies.bytes(CopyLayer::KernelDefrag),
                out.copies.bytes(CopyLayer::DepositFallback),
                lat.quantile(0.50),
                lat.quantile(0.99),
            );
        }
    }
}
