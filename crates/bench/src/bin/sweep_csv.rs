//! Emit the full modeled figure sweep as CSV (for plotting or regression
//! tracking): all six configurations of Figures 5/6 across the paper's
//! block sizes on the calibrated P-II/GbE testbed.
//!
//! ```text
//! cargo run -p zc-bench --bin sweep_csv --release > sweep.csv
//! cargo run -p zc-bench --bin sweep_csv --release -- --modern   # 2003 desktop
//! ```

use zc_simnet::{run_sweep, LinkSpec, MachineSpec, FIGURE_CONFIGS};

fn main() {
    let modern = std::env::args().any(|a| a == "--modern");
    let machine = if modern {
        MachineSpec::modern_2003()
    } else {
        MachineSpec::pentium_ii_400()
    };
    let sweep = run_sweep(
        machine,
        LinkSpec::gigabit_ethernet(),
        &zc_simnet::paper_block_sizes(),
        &FIGURE_CONFIGS,
    );
    print!("{}", sweep.to_csv());
}
