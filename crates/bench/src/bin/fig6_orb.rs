//! Experiment E3 — **Figure 6 (right)**: the ORB comparison — standard vs
//! zero-copy MICO over both TCP stacks.
//!
//! Paper anchors: "for the zero-copy version of the ORB the large
//! overheads of CORBA are gone and the performance of the optimized
//! zero-copy ORB nearly matches the raw TCP-socket version"; the winning
//! combination (zero-copy ORB over zero-copy TCP) reaches ≈ 550 Mbit/s —
//! ten times the ≈ 50 Mbit/s of the original ORB over the standard stack.
//!
//! `--json` switches every section to the shared JSON format.

use zc_bench::report::series_json;
use zc_bench::{
    full_flag, json_flag, measured_block_sizes, measured_series_traced, modeled_series,
    print_telemetry, trace_flag,
};
use zc_ttcp::{format_series_table, run_modeled, TtcpVersion};

fn main() {
    let traced = trace_flag();
    let json = json_flag();
    let sizes = zc_simnet::paper_block_sizes();
    let modeled = [
        modeled_series(TtcpVersion::CorbaStd, &sizes),
        modeled_series(TtcpVersion::CorbaStdOverZcTcp, &sizes),
        modeled_series(TtcpVersion::CorbaZcOverTcp, &sizes),
        modeled_series(TtcpVersion::CorbaZc, &sizes),
    ];
    let title_m = "Figure 6 (right) — ORB variants over both stacks (modeled, P-II 400 / GbE)";
    if json {
        println!("{}", series_json(title_m, &sizes, &modeled));
    } else {
        println!("{}", format_series_table(title_m, &sizes, &modeled));
        let big = 16 << 20;
        let slow = run_modeled(TtcpVersion::CorbaStd, big);
        let fast = run_modeled(TtcpVersion::CorbaZc, big);
        println!(
            "modeled improvement at 16M blocks: {slow:.0} → {fast:.0} Mbit/s ({:.1}×; paper: 50 → 550, 10×)\n",
            fast / slow
        );
    }

    let msizes = measured_block_sizes(full_flag());
    let (s1, _) = measured_series_traced(TtcpVersion::CorbaStd, &msizes, traced);
    let (s2, _) = measured_series_traced(TtcpVersion::CorbaStdOverZcTcp, &msizes, traced);
    let (s3, _) = measured_series_traced(TtcpVersion::CorbaZcOverTcp, &msizes, traced);
    let (s4, telemetry) = measured_series_traced(TtcpVersion::CorbaZc, &msizes, traced);
    let title_h = "Figure 6 (right) — same configurations executed on this host";
    if json {
        println!("{}", series_json(title_h, &msizes, &[s1, s2, s3, s4]));
    } else {
        println!(
            "{}",
            format_series_table(title_h, &msizes, &[s1, s2, s3, s4])
        );
    }
    if let Some(t) = telemetry {
        print_telemetry(
            "telemetry of the last measured all-zero-copy run (disable with --no-trace)",
            &t,
            json,
        );
    }
}
