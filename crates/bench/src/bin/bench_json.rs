//! `bench_json` — one trajectory point of the continuous benchmark:
//! regenerate the sweeps, emit a schema-versioned `BENCH_*.json`, compare
//! against the newest prior snapshot and print a regression verdict.
//!
//! ```text
//! cargo run -p zc-bench --bin bench_json --release                # full point
//! cargo run -p zc-bench --bin bench_json -- --smoke               # CI-sized run
//! cargo run -p zc-bench --bin bench_json -- --advisory            # never fail the exit code
//! cargo run -p zc-bench --bin bench_json -- --out BENCH_PR5.json  # choose the file
//! cargo run -p zc-bench --bin bench_json -- --baseline old.json   # explicit baseline
//! ```
//!
//! Gates (see `zc_bench::trajectory`): a matching measured-goodput point
//! dropping more than 10 %, or a matching breakdown stage's p99 growing
//! more than 25 %, fails the run (exit 1) unless `--advisory`.

use std::path::PathBuf;

use zc_bench::trajectory::{unix_ms, GoodputPoint, LatencyPoint};
use zc_bench::{
    compare, find_baseline, overload_sweep, parse_json, run_breakdown, OverloadParams,
    TrajectorySnapshot,
};
use zc_ttcp::{run_latency, run_measured, run_modeled, TtcpParams, TtcpTransport, TtcpVersion};

fn arg_value(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let advisory = std::env::args().any(|a| a == "--advisory");
    let out_path = PathBuf::from(arg_value("--out").unwrap_or_else(|| "BENCH_PR9.json".into()));
    let label = out_path
        .file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.strip_prefix("BENCH_"))
        .unwrap_or("PR8")
        .to_string();

    // ---- goodput sweep: every version, sim transport, modeled + measured ----
    let sizes: &[usize] = if smoke {
        &[64 << 10, 1 << 20]
    } else {
        &[4 << 10, 64 << 10, 1 << 20, 4 << 20]
    };
    let mut goodput = Vec::new();
    for version in TtcpVersion::ALL {
        for &block in sizes {
            let total = if smoke {
                (block * 8).clamp(2 << 20, 16 << 20)
            } else {
                zc_bench::measured_total(block)
            };
            let mut p = TtcpParams::new(version, block, total);
            p.traced = true;
            let out = run_measured(&p);
            let t = out.telemetry.expect("traced run produces telemetry");
            goodput.push(GoodputPoint {
                version,
                transport: "sim",
                block_bytes: block,
                modeled_mbit_s: run_modeled(version, block),
                measured_mbit_s: out.mbit_s,
                overhead_copy_factor: out.overhead_copy_factor,
                spec_hit_rate: t.spec_hit_rate(),
            });
        }
    }

    // ---- latency points ----
    let rounds = if smoke { 60 } else { 200 };
    let mut latency = Vec::new();
    for version in [
        TtcpVersion::RawTcp,
        TtcpVersion::ZcTcp,
        TtcpVersion::CorbaStd,
        TtcpVersion::CorbaZc,
    ] {
        for &size in &[4usize << 10, 64 << 10] {
            latency.push(LatencyPoint {
                version,
                msg_bytes: size,
                stats: run_latency(version, size, rounds, rounds / 10 + 1),
            });
        }
    }

    // ---- §5.2 breakdown ----
    let (bd_block, bd_total) = if smoke {
        (256 << 10, 4 << 20)
    } else {
        (1 << 20, 16 << 20)
    };
    let breakdown = run_breakdown(bd_block, bd_total, TtcpTransport::Sim);

    // ---- overload curve: goodput vs offered load, seed vs admission ----
    let overload_params = if smoke {
        OverloadParams::smoke(42)
    } else {
        OverloadParams::full(42)
    };
    let overload = overload_sweep(&overload_params, |line| println!("overload: {line}"));

    let snapshot = TrajectorySnapshot {
        label,
        smoke,
        generated_unix_ms: unix_ms(),
        goodput,
        latency,
        breakdown,
        overload: Some(overload),
    };
    let json = snapshot.to_json();

    // The emitted document must parse with our own reader (schema validity).
    let current = parse_json(&json).unwrap_or_else(|e| {
        eprintln!("emitted JSON failed self-parse: {e}");
        std::process::exit(2);
    });
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out_path.display());
        std::process::exit(2);
    });
    println!("wrote {}", out_path.display());

    // ---- baseline comparison ----
    let baseline_path = arg_value("--baseline").map(PathBuf::from).or_else(|| {
        let dir = out_path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        find_baseline(&dir, &out_path)
    });
    let Some(baseline_path) = baseline_path else {
        println!("no prior BENCH_*.json found; this point starts the trajectory");
        return;
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            std::process::exit(2);
        }
    };
    let baseline = match parse_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "baseline {} is not valid JSON: {e}",
                baseline_path.display()
            );
            std::process::exit(2);
        }
    };
    println!("baseline: {}", baseline_path.display());
    let verdict = compare(&current, &baseline);
    print!("{}", verdict.render());
    if !verdict.passed() && !advisory {
        std::process::exit(1);
    }
    if !verdict.passed() {
        println!("(advisory mode: regressions reported, exit code suppressed)");
    }
}
