//! Experiment E2 — **Figure 6 (left)**: raw TCP over the conventional
//! stack vs the zero-copy socket interface.
//!
//! Paper observations: the zero-copy stack wins across the board, with a
//! large small-message gain from the cheaper read()/write() calls and
//! "very good throughput figures for transfers as small as a single
//! memory page".
//!
//! `--json` switches every section to the shared JSON format.

use zc_bench::report::series_json;
use zc_bench::{
    full_flag, json_flag, measured_block_sizes, measured_series_traced, modeled_series,
    print_telemetry, trace_flag,
};
use zc_ttcp::{format_series_table, TtcpVersion};

fn main() {
    let traced = trace_flag();
    let json = json_flag();
    let sizes = zc_simnet::paper_block_sizes();
    let modeled = [
        modeled_series(TtcpVersion::RawTcp, &sizes),
        modeled_series(TtcpVersion::ZcTcp, &sizes),
    ];
    let title_m =
        "Figure 6 (left) — raw TCP: copying vs zero-copy sockets (modeled, P-II 400 / GbE)";
    if json {
        println!("{}", series_json(title_m, &sizes, &modeled));
    } else {
        println!("{}", format_series_table(title_m, &sizes, &modeled));
    }

    let msizes = measured_block_sizes(full_flag());
    let (raw, _) = measured_series_traced(TtcpVersion::RawTcp, &msizes, traced);
    let (zc, telemetry) = measured_series_traced(TtcpVersion::ZcTcp, &msizes, traced);
    let title_h = "Figure 6 (left) — same configurations executed on this host";
    if json {
        println!("{}", series_json(title_h, &msizes, &[raw, zc]));
    } else {
        println!("{}", format_series_table(title_h, &msizes, &[raw, zc]));
    }
    if let Some(t) = telemetry {
        print_telemetry(
            "telemetry of the last measured zero-copy run (disable with --no-trace)",
            &t,
            json,
        );
    }
}
