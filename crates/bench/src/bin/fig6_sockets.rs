//! Experiment E2 — **Figure 6 (left)**: raw TCP over the conventional
//! stack vs the zero-copy socket interface.
//!
//! Paper observations: the zero-copy stack wins across the board, with a
//! large small-message gain from the cheaper read()/write() calls and
//! "very good throughput figures for transfers as small as a single
//! memory page".

use zc_bench::{
    full_flag, measured_block_sizes, measured_series_traced, modeled_series, trace_flag,
};
use zc_ttcp::{format_series_table, TtcpVersion};

fn main() {
    let traced = trace_flag();
    let sizes = zc_simnet::paper_block_sizes();
    println!(
        "{}",
        format_series_table(
            "Figure 6 (left) — raw TCP: copying vs zero-copy sockets (modeled, P-II 400 / GbE)",
            &sizes,
            &[
                modeled_series(TtcpVersion::RawTcp, &sizes),
                modeled_series(TtcpVersion::ZcTcp, &sizes),
            ],
        )
    );

    let msizes = measured_block_sizes(full_flag());
    let (raw, _) = measured_series_traced(TtcpVersion::RawTcp, &msizes, traced);
    let (zc, telemetry) = measured_series_traced(TtcpVersion::ZcTcp, &msizes, traced);
    println!(
        "{}",
        format_series_table(
            "Figure 6 (left) — same configurations executed on this host",
            &msizes,
            &[raw, zc],
        )
    );
    if let Some(t) = telemetry {
        println!("\ntelemetry of the last measured zero-copy run (disable with --no-trace):");
        print!("{}", t.text_table());
    }
}
