//! Experiment E2 — **Figure 6 (left)**: raw TCP over the conventional
//! stack vs the zero-copy socket interface.
//!
//! Paper observations: the zero-copy stack wins across the board, with a
//! large small-message gain from the cheaper read()/write() calls and
//! "very good throughput figures for transfers as small as a single
//! memory page".

use zc_bench::{full_flag, measured_block_sizes, measured_series, modeled_series};
use zc_ttcp::{format_series_table, TtcpVersion};

fn main() {
    let sizes = zc_simnet::paper_block_sizes();
    println!(
        "{}",
        format_series_table(
            "Figure 6 (left) — raw TCP: copying vs zero-copy sockets (modeled, P-II 400 / GbE)",
            &sizes,
            &[
                modeled_series(TtcpVersion::RawTcp, &sizes),
                modeled_series(TtcpVersion::ZcTcp, &sizes),
            ],
        )
    );

    let msizes = measured_block_sizes(full_flag());
    println!(
        "{}",
        format_series_table(
            "Figure 6 (left) — same configurations executed on this host",
            &msizes,
            &[
                measured_series(TtcpVersion::RawTcp, &msizes),
                measured_series(TtcpVersion::ZcTcp, &msizes),
            ],
        )
    );
}
