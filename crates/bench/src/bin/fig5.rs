//! Experiment E1 — **Figure 5**: TTCP bandwidths for unoptimized sockets
//! and unoptimized CORBA, block sizes 4 KiB … 16 MiB.
//!
//! Paper anchors: raw TCP saturates ≈ 330 Mbit/s; CORBA saturates
//! ≈ 50 Mbit/s ("would not even use a Fast Ethernet to its limit").
//!
//! `--json` switches every section to the shared JSON format.

use zc_bench::report::series_json;
use zc_bench::{
    full_flag, json_flag, measured_block_sizes, measured_series_traced, modeled_series,
    print_telemetry, trace_flag,
};
use zc_ttcp::{format_series_table, TtcpVersion};

fn main() {
    let traced = trace_flag();
    let json = json_flag();
    let sizes = zc_simnet::paper_block_sizes();
    let modeled = [
        modeled_series(TtcpVersion::RawTcp, &sizes),
        modeled_series(TtcpVersion::CorbaStd, &sizes),
    ];
    let title_m = "Figure 5 — unoptimized sockets vs unoptimized CORBA (modeled, P-II 400 / GbE)";
    if json {
        println!("{}", series_json(title_m, &sizes, &modeled));
    } else {
        println!("{}", format_series_table(title_m, &sizes, &modeled));
    }

    let msizes = measured_block_sizes(full_flag());
    let (raw, _) = measured_series_traced(TtcpVersion::RawTcp, &msizes, traced);
    let (std, telemetry) = measured_series_traced(TtcpVersion::CorbaStd, &msizes, traced);
    let title_h = "Figure 5 — same configurations executed on this host (real copies)";
    if json {
        println!("{}", series_json(title_h, &msizes, &[raw, std]));
    } else {
        println!("{}", format_series_table(title_h, &msizes, &[raw, std]));
        println!("paper anchors: raw TCP ≈ 330 Mbit/s, CORBA ≈ 50 Mbit/s at saturation");
    }
    if let Some(t) = telemetry {
        print_telemetry(
            "telemetry of the last measured CORBA run (disable with --no-trace)",
            &t,
            json,
        );
    }
}
