//! Experiment E1 — **Figure 5**: TTCP bandwidths for unoptimized sockets
//! and unoptimized CORBA, block sizes 4 KiB … 16 MiB.
//!
//! Paper anchors: raw TCP saturates ≈ 330 Mbit/s; CORBA saturates
//! ≈ 50 Mbit/s ("would not even use a Fast Ethernet to its limit").

use zc_bench::{
    full_flag, measured_block_sizes, measured_series_traced, modeled_series, trace_flag,
};
use zc_ttcp::{format_series_table, TtcpVersion};

fn main() {
    let traced = trace_flag();
    let sizes = zc_simnet::paper_block_sizes();
    println!(
        "{}",
        format_series_table(
            "Figure 5 — unoptimized sockets vs unoptimized CORBA (modeled, P-II 400 / GbE)",
            &sizes,
            &[
                modeled_series(TtcpVersion::RawTcp, &sizes),
                modeled_series(TtcpVersion::CorbaStd, &sizes),
            ],
        )
    );

    let msizes = measured_block_sizes(full_flag());
    let (raw, _) = measured_series_traced(TtcpVersion::RawTcp, &msizes, traced);
    let (std, telemetry) = measured_series_traced(TtcpVersion::CorbaStd, &msizes, traced);
    println!(
        "{}",
        format_series_table(
            "Figure 5 — same configurations executed on this host (real copies)",
            &msizes,
            &[raw, std],
        )
    );
    println!("paper anchors: raw TCP ≈ 330 Mbit/s, CORBA ≈ 50 Mbit/s at saturation");
    if let Some(t) = telemetry {
        println!("\ntelemetry of the last measured CORBA run (disable with --no-trace):");
        print!("{}", t.text_table());
    }
}
