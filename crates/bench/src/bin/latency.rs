//! Round-trip latency percentiles per TTCP version — the per-request view
//! that complements the bandwidth figures (the paper's related work [18]
//! measured exactly this for contemporary ORBs).
//!
//! ```text
//! cargo run -p zc-bench --bin latency --release [-- --rounds N] [--json]
//! ```

use zc_bench::json_flag;
use zc_bench::report::latency_json;
use zc_ttcp::{run_latency, TtcpVersion};

fn main() {
    let rounds = std::env::args()
        .skip_while(|a| a != "--rounds")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let json = json_flag();

    if !json {
        println!("## round-trip latency on this host ({rounds} rounds per cell)\n");
    }
    for &size in &[0usize, 4 << 10, 64 << 10, 1 << 20] {
        if !json {
            println!("message size {} bytes:", size);
        }
        for v in [
            TtcpVersion::RawTcp,
            TtcpVersion::ZcTcp,
            TtcpVersion::CorbaStd,
            TtcpVersion::CorbaZc,
        ] {
            let s = run_latency(v, size, rounds, rounds / 10 + 1);
            if json {
                println!("{}", latency_json(v, size, &s));
            } else {
                println!("  {:<26} {}", v.label(), s);
            }
        }
        if !json {
            println!();
        }
    }
    if !json {
        println!(
            "expected shape: zero-copy variants win by a margin that grows with\n\
             message size (per-byte copies sit on the round-trip critical path);\n\
             at size 0 the gap reflects per-request costs only."
        );
    }
}
