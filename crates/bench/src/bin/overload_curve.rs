//! `overload_curve` — the goodput-vs-offered-load experiment on its own:
//! probe closed-loop capacity, then sweep offered-load multipliers in
//! both server modes (seed = unlimited admission, admission = bounded
//! dispatch budget) and report whether the admission curve plateaus where
//! the seed curve collapses.
//!
//! ```text
//! cargo run -p zc-bench --bin overload_curve --release             # full sweep
//! cargo run -p zc-bench --bin overload_curve -- --smoke            # CI-sized
//! cargo run -p zc-bench --bin overload_curve -- --json             # JSON to stdout
//! cargo run -p zc-bench --bin overload_curve -- --out curve.json   # JSON to a file
//! cargo run -p zc-bench --bin overload_curve -- --seed 7           # new arrivals
//! ```
//!
//! Exit code 1 when the admission curve fails the plateau check (goodput
//! at the highest offered load below half its peak in smoke mode, below
//! 80 % otherwise), when the sweep never shed, or when the reserved
//! `_ZcTelemetry` lane went dark during overload.

use std::path::PathBuf;

use zc_bench::overload::OverloadMode;
use zc_bench::trajectory::{OVERLOAD_PLATEAU_GATE, OVERLOAD_PLATEAU_GATE_SMOKE};
use zc_bench::{overload_sweep, OverloadCurve, OverloadParams};

fn arg_value(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let out = arg_value("--out").map(PathBuf::from);
    let seed = arg_value("--seed")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);

    let params = if smoke {
        OverloadParams::smoke(seed)
    } else {
        OverloadParams::full(seed)
    };
    let curve = overload_sweep(&params, |line| eprintln!("{line}"));

    if json || out.is_some() {
        let doc = curve.to_json();
        match &out {
            Some(path) => {
                std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
                    eprintln!("cannot write {}: {e}", path.display());
                    std::process::exit(2);
                });
                eprintln!("wrote {}", path.display());
            }
            None => println!("{doc}"),
        }
    }
    if !json {
        println!("{}", OverloadCurve::csv_header());
        for p in &curve.points {
            println!("{}", p.to_csv_row());
        }
    }

    let gate = if smoke {
        OVERLOAD_PLATEAU_GATE_SMOKE
    } else {
        OVERLOAD_PLATEAU_GATE
    };
    let adm = curve.plateau_ratio(OverloadMode::Admission);
    let seed_ratio = curve.plateau_ratio(OverloadMode::Seed);
    eprintln!(
        "plateau: admission {adm:.2} (gate {gate:.2}), seed {seed_ratio:.2}; \
         sheds {}, telemetry_alive {}",
        curve.total_sheds(),
        curve.telemetry_alive()
    );
    let mut failed = false;
    if adm < gate {
        eprintln!("FAIL: admission goodput collapsed past saturation");
        failed = true;
    }
    if curve.total_sheds() == 0 {
        eprintln!("FAIL: the admission gate never shed — budgets not binding");
        failed = true;
    }
    if !curve.telemetry_alive() {
        eprintln!("FAIL: the reserved _ZcTelemetry lane went dark under overload");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
