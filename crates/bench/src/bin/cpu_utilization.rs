//! Experiment E6 — the §6 claim: "For newer machines we can achieve the
//! full communication bandwidth of Gigabit Ethernet with a CPU utilization
//! of just 30% versus 100% with the original stack."

use zc_simnet::{cpu_utilization, predict, LinkSpec, MachineSpec, OrbMode, Scenario, SocketMode};

fn row(machine: MachineSpec, socket: SocketMode, orb: OrbMode) {
    let scn = Scenario {
        machine,
        link: LinkSpec::gigabit_ethernet(),
        socket,
        orb,
        block_bytes: 16 << 20,
    };
    let mbit = predict(&scn);
    let (s, r) = cpu_utilization(&scn);
    println!(
        "  {:<22} {:>8.0} Mbit/s   sender {:>5.1} %   receiver {:>5.1} %",
        scn.label(),
        mbit,
        s * 100.0,
        r * 100.0
    );
}

fn main() {
    println!("## E6 — CPU utilization at 16 MiB blocks over GbE\n");
    for machine in [MachineSpec::pentium_ii_400(), MachineSpec::modern_2003()] {
        println!("{}:", machine.name);
        row(machine, SocketMode::Copying, OrbMode::None);
        row(machine, SocketMode::ZeroCopy, OrbMode::None);
        row(machine, SocketMode::Copying, OrbMode::Standard);
        row(machine, SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb);
        println!();
    }
    println!(
        "paper claim: on the newer machine the zero-copy stack reaches full GbE\n\
         bandwidth at ≈ 30 % CPU; the conventional stack needs ≈ 100 %."
    );
}
