//! Experiment E6 — the §6 claim: "For newer machines we can achieve the
//! full communication bandwidth of Gigabit Ethernet with a CPU utilization
//! of just 30% versus 100% with the original stack."
//!
//! `--json` emits one JSON object per row in the shared format.

use zc_bench::{json_flag, report::json_escape};
use zc_simnet::{cpu_utilization, predict, LinkSpec, MachineSpec, OrbMode, Scenario, SocketMode};

fn row(machine: MachineSpec, socket: SocketMode, orb: OrbMode, json: bool) {
    let scn = Scenario {
        machine,
        link: LinkSpec::gigabit_ethernet(),
        socket,
        orb,
        block_bytes: 16 << 20,
    };
    let mbit = predict(&scn);
    let (s, r) = cpu_utilization(&scn);
    if json {
        println!(
            "{{\"machine\":\"{}\",\"config\":\"{}\",\"modeled_mbit_s\":{:.1},\
             \"sender_cpu\":{:.3},\"receiver_cpu\":{:.3}}}",
            json_escape(machine.name),
            json_escape(&scn.label()),
            mbit,
            s,
            r
        );
    } else {
        println!(
            "  {:<22} {:>8.0} Mbit/s   sender {:>5.1} %   receiver {:>5.1} %",
            scn.label(),
            mbit,
            s * 100.0,
            r * 100.0
        );
    }
}

fn main() {
    let json = json_flag();
    if !json {
        println!("## E6 — CPU utilization at 16 MiB blocks over GbE\n");
    }
    for machine in [MachineSpec::pentium_ii_400(), MachineSpec::modern_2003()] {
        if !json {
            println!("{}:", machine.name);
        }
        row(machine, SocketMode::Copying, OrbMode::None, json);
        row(machine, SocketMode::ZeroCopy, OrbMode::None, json);
        row(machine, SocketMode::Copying, OrbMode::Standard, json);
        row(machine, SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb, json);
        if !json {
            println!();
        }
    }
    if !json {
        println!(
            "paper claim: on the newer machine the zero-copy stack reaches full GbE\n\
             bandwidth at ≈ 30 % CPU; the conventional stack needs ≈ 100 %."
        );
    }
}
