//! Experiment E5 — the §5.4 application: the distributed MPEG transcoding
//! farm, standard vs zero-copy data path.
//!
//! "We already showed the performance achievement of a factor of 10 for an
//! optimized ORB … This entire performance gain is posed to our
//! application. The resulting … application provides MPEG-4 encoding in
//! real-time for full HDTV resolution and full frame rate."
//!
//! The measured farm runs a reduced geometry by default (`--hdtv` runs the
//! full 1920×1088 frames; substantial compute). The real-time analysis for
//! HDTV is additionally evaluated on the calibrated testbed model, where
//! the communication budget is the paper's.

use zc_mpeg::{EncoderConfig, FarmParams, PayloadMode, TranscodeFarm, VideoFormat};
use zc_ttcp::{run_modeled, TtcpVersion};

fn main() {
    let hdtv = std::env::args().any(|a| a == "--hdtv");
    let format = if hdtv {
        VideoFormat::HDTV_1080
    } else {
        VideoFormat::new(320, 192)
    };
    let frames = if hdtv { 16 } else { 48 };

    println!("## E5 — distributed MPEG2→MPEG4 transcoding farm\n");
    println!(
        "geometry {}×{} ({:.2} MB/frame), {} frames, 4 workers\n",
        format.width,
        format.height,
        format.frame_bytes() as f64 / 1e6,
        frames
    );

    let mut results = Vec::new();
    for payload in [PayloadMode::Standard, PayloadMode::ZeroCopy] {
        let params = FarmParams {
            workers: 4,
            frames,
            format,
            payload,
            encoder: EncoderConfig::default(),
            verify: false,
            passthrough: false,
            seed: 0x1D,
        };
        let out = TranscodeFarm::run(&params);
        println!(
            "{:<28} {:>7.2} fps   input {:>8.1} Mbit/s   out/in ratio {:.2}",
            format!("{payload:?} payload:"),
            out.fps,
            out.input_mbit_s,
            out.bytes_out as f64 / out.bytes_in as f64
        );
        results.push(out.fps);
    }
    println!(
        "\nmeasured farm speedup (communication + encode): {:.2}×",
        results[1] / results[0]
    );

    // Distribution-only view: the worker skips the DCT, so the ORB data
    // path is the whole cost — this is the regime where the paper's
    // communication gain shows directly, even on a fast host.
    println!("\ndistribution-only (workers skip the encode compute):");
    let mut dist = Vec::new();
    for payload in [PayloadMode::Standard, PayloadMode::ZeroCopy] {
        let params = FarmParams {
            workers: 4,
            frames: frames * 4,
            format,
            payload,
            encoder: EncoderConfig::default(),
            verify: false,
            passthrough: true,
            seed: 0x1D,
        };
        let out = TranscodeFarm::run(&params);
        println!(
            "{:<28} {:>7.2} fps   input {:>8.1} Mbit/s",
            format!("{payload:?} payload:"),
            out.fps,
            out.input_mbit_s
        );
        dist.push(out.fps);
    }
    println!(
        "measured distribution speedup: {:.2}× (paper's ORB gain: ≈ 10×)",
        dist[1] / dist[0]
    );

    // GOP-parallel mode: whole groups-of-pictures per worker (I+P frames
    // encoded locally), the way production parallel encoders split work.
    println!("\nGOP-parallel (12-frame GOPs, I+P coding, whole GOPs per worker):");
    for payload in [PayloadMode::Standard, PayloadMode::ZeroCopy] {
        let params = FarmParams {
            workers: 4,
            frames,
            format,
            payload,
            encoder: EncoderConfig::default(),
            verify: false,
            passthrough: false,
            seed: 0x1D,
        };
        let (out, streams) = TranscodeFarm::run_gop(&params, 12);
        let compressed: usize = streams.iter().map(|s| s.len()).sum();
        println!(
            "{:<28} {:>7.2} fps   input {:>8.1} Mbit/s   compressed to {:.1}%",
            format!("{payload:?} payload:"),
            out.fps,
            out.input_mbit_s,
            100.0 * compressed as f64 / out.bytes_in as f64
        );
    }

    // ---- modeled real-time analysis on the paper's testbed ----
    println!("\nreal-time HDTV feasibility on the 2003 testbed (model):");
    let frame_bytes = VideoFormat::HDTV_1080.frame_bytes();
    let need_mbit = frame_bytes as f64 * 25.0 * 8.0 / 1e6;
    let std_link = run_modeled(TtcpVersion::CorbaStd, frame_bytes);
    let zc_link = run_modeled(TtcpVersion::CorbaZc, frame_bytes);
    println!("  HDTV 25 fps needs {need_mbit:.0} Mbit/s of frame distribution");
    println!(
        "  standard ORB moves {std_link:.0} Mbit/s  → {:.1} fps — {}",
        std_link * 1e6 / 8.0 / frame_bytes as f64,
        if std_link >= need_mbit {
            "real-time"
        } else {
            "NOT real-time"
        }
    );
    let zc_fps = zc_link * 1e6 / 8.0 / frame_bytes as f64;
    println!(
        "  zero-copy ORB moves {zc_link:.0} Mbit/s → {zc_fps:.1} fps per link; with ≥ 2 worker links the cluster sustains 25 fps — real-time, as the paper demonstrates"
    );
    println!(
        "  ORB gain carried to the application: {:.1}× (paper: ≈ 10×)",
        zc_link / std_link
    );
}
