//! Experiment E4 — the §5.2 instrumentation: *where* the standard ORB's
//! time goes.
//!
//! "We instrumented the ORB source code to pinpoint the sources of this
//! overhead. The test shows that the highest cost incurs due to data
//! copying and data inspection."
//!
//! Two views: the modeled per-byte budget decomposition on the paper's
//! testbed, and the measured per-layer copy accounting of a real 1 MiB
//! request/reply on this host.

use zc_buffers::CopyLayer;
use zc_simnet::{block_costs, OrbMode, Scenario, SocketMode};
use zc_ttcp::{run_measured, TtcpParams, TtcpVersion};

fn main() {
    println!("## E4 — standard-ORB overhead breakdown\n");

    // ---- modeled per-byte budget on the P-II testbed ----
    let scn = Scenario::on_testbed(SocketMode::Copying, OrbMode::Standard, 1 << 20);
    let c = block_costs(&scn);
    let m = scn.machine;
    let marshal = m.marshal_s_per_byte();
    let copies = 2.0 * m.copy_s_per_byte();
    let frame = c.recv_cpu_per_byte - marshal - copies;
    let total = c.recv_cpu_per_byte;
    println!("modeled receiver per-byte budget (P-II 400, standard ORB / standard stack):");
    println!(
        "  {:<38} {:>8.1} ns/B  ({:>4.1} %)",
        "marshal loop (data copying+inspection)",
        marshal * 1e9,
        100.0 * marshal / total
    );
    println!(
        "  {:<38} {:>8.1} ns/B  ({:>4.1} %)",
        "kernel copies (socket + defrag)",
        copies * 1e9,
        100.0 * copies / total
    );
    println!(
        "  {:<38} {:>8.1} ns/B  ({:>4.1} %)",
        "per-frame protocol/interrupt",
        frame * 1e9,
        100.0 * frame / total
    );
    println!(
        "  {:<38} {:>8.1} µs/req (amortized; demux+alloc, minor for bulk)",
        "per-request ORB work", m.orb_request_us
    );

    // ---- measured copy accounting on this host ----
    println!("\nmeasured per-layer copies for 16 × 1 MiB requests on this host:");
    let p = TtcpParams::new(TtcpVersion::CorbaStd, 1 << 20, 16 << 20);
    let out = run_measured(&p);
    print!("{}", out.copies.report());
    println!(
        "\n=> every payload byte is copied {:.2}× between application and wire",
        out.overhead_copy_factor
    );

    let zc = run_measured(&TtcpParams::new(TtcpVersion::CorbaZc, 1 << 20, 16 << 20));
    println!(
        "   the all-zero-copy configuration copies {:.4}× (deposit fallback bytes: {})",
        zc.overhead_copy_factor,
        zc.copies.bytes(CopyLayer::DepositFallback)
    );
}
