//! Experiment E4 — the §5.2 instrumentation: *where* the standard ORB's
//! time goes.
//!
//! "We instrumented the ORB source code to pinpoint the sources of this
//! overhead. The test shows that the highest cost incurs due to data
//! copying and data inspection."
//!
//! The shared reporter (`zc_bench::report`) joins, per configuration
//! (standard / ZC-marshal-only / all-ZC), the measured request-span stage
//! latencies, the copy-meter bytes and the modeled P-II per-block budget.
//! `--json` emits the same breakdown as one JSON object; `--full` uses
//! paper-scale 1 MiB blocks over 16 MiB instead of the quick default;
//! `--tcp` measures over real loopback TCP instead of the simulated
//! kernel stacks (the span layer works identically over both).

use zc_bench::{json_flag, render_breakdown_json, render_breakdown_text, run_breakdown};
use zc_ttcp::TtcpTransport;

fn main() {
    let (block, total) = if zc_bench::full_flag() {
        (1 << 20, 16 << 20)
    } else {
        (256 << 10, 4 << 20)
    };
    let transport = if std::env::args().any(|a| a == "--tcp") {
        TtcpTransport::Tcp
    } else {
        TtcpTransport::Sim
    };
    let b = run_breakdown(block, total, transport);
    if json_flag() {
        println!("{}", render_breakdown_json(&b));
    } else {
        print!("{}", render_breakdown_text(&b));
        println!(
            "\n=> copy-bound stages (CDR marshal, socket copies) carry the standard\n\
             column and shrink to ~0 in the all-ZC column; the wire and the fixed\n\
             per-request work are what remains."
        );
    }
}
