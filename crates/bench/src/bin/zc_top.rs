//! `zc-top` — a terminal dashboard over the in-band `_ZcTelemetry` object.
//!
//! Polls a live server's reserved management object over plain GIOP and
//! renders goodput, windowed load rates, copy-meter deltas, stage p99s,
//! breaker/degrade gauges and pool/queue watermarks as a refreshing frame.
//!
//! ```text
//! cargo run -p zc-bench --bin zc-top -- --connect 127.0.0.1:47117
//! cargo run -p zc-bench --bin zc-top -- --connect 127.0.0.1:47117 --once --json
//! ```
//!
//! Flags:
//! * `--connect HOST:PORT` (required) — the server to poll.
//! * `--interval-ms N` — poll interval (default 1000).
//! * `--frames N` — stop after N frames (default: run until killed).
//! * `--once` — take two closely-spaced polls, emit one summary, exit.
//! * `--json` — machine output (`zcorba-top/v1`), one object per frame.
//! * `--keys` — print the `--once --json` schema's required keys, one per
//!   line, and exit (no server needed); CI asserts against this list.
//!
//! Exit codes: 0 ok, 2 usage, 3 connect/poll failure.

use std::io::Write as _;
use std::time::{Duration, Instant};

use zc_bench::top::{
    delta, render_frame, render_once_json, TopDelta, TopSample, REQUIRED_JSON_KEYS,
};
use zc_orb::{Orb, TelemetryClient};

fn arg_value(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn poll(client: &TelemetryClient) -> Result<TopSample, String> {
    let text = client
        .snapshot_json()
        .map_err(|e| format!("snapshot_json poll failed: {e}"))?;
    TopSample::parse(&text)
}

fn main() {
    // `--keys` needs no server: print the `--once --json` schema contract
    // (one key per line) for scripts and CI to assert against.
    if std::env::args().any(|a| a == "--keys") {
        for key in REQUIRED_JSON_KEYS {
            println!("{key}");
        }
        return;
    }
    let Some(endpoint) = arg_value("--connect") else {
        eprintln!(
            "usage: zc-top --connect HOST:PORT [--interval-ms N] [--frames N] [--once] [--json]"
        );
        std::process::exit(2);
    };
    let Some((host, port)) = endpoint.rsplit_once(':') else {
        eprintln!("zc-top: --connect wants HOST:PORT, got {endpoint:?}");
        std::process::exit(2);
    };
    let Ok(port) = port.parse::<u16>() else {
        eprintln!("zc-top: bad port in {endpoint:?}");
        std::process::exit(2);
    };
    let once = std::env::args().any(|a| a == "--once");
    let json = std::env::args().any(|a| a == "--json");
    let interval = Duration::from_millis(
        arg_value("--interval-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000),
    );
    let frames: u64 = arg_value("--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let orb = Orb::builder().tcp().build();
    let client = match TelemetryClient::connect(&orb, host, port) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("zc-top: cannot connect to {endpoint}: {e}");
            std::process::exit(3);
        }
    };

    let run = || -> Result<(), String> {
        if once {
            // Two closely-spaced polls so rates/deltas are live, not
            // lifetime averages.
            let first = poll(&client)?;
            let t0 = Instant::now();
            std::thread::sleep(Duration::from_millis(250));
            let second = poll(&client)?;
            let d = delta(&first, &second, t0.elapsed().as_secs_f64());
            if json {
                println!("{}", render_once_json(&second, &d, &endpoint));
            } else {
                print!("{}", render_frame(&second, Some(&d), &endpoint));
            }
            return Ok(());
        }
        let mut prev: Option<(TopSample, Instant)> = None;
        let mut n = 0u64;
        loop {
            let sample = poll(&client)?;
            let now = Instant::now();
            let d: Option<TopDelta> = prev
                .as_ref()
                .map(|(p, t)| delta(p, &sample, now.duration_since(*t).as_secs_f64()));
            if json {
                println!(
                    "{}",
                    render_once_json(&sample, &d.unwrap_or_default(), &endpoint)
                );
            } else {
                // Clear + home, then the frame: a cheap full-screen refresh.
                print!(
                    "\x1b[2J\x1b[H{}",
                    render_frame(&sample, d.as_ref(), &endpoint)
                );
                let _ = std::io::stdout().flush();
            }
            prev = Some((sample, now));
            n += 1;
            if frames != 0 && n >= frames {
                return Ok(());
            }
            std::thread::sleep(interval);
        }
    };

    if let Err(e) = run() {
        eprintln!("zc-top: {e}");
        std::process::exit(3);
    }
}
