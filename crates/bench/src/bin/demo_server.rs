//! `demo_server` — a self-loading TCP demo ORB for exercising `zc-top`.
//!
//! Boots a real TCP ORB with telemetry enabled, registers a bulk-transfer
//! sink, and (optionally) saturates it with its own loopback client
//! threads so the introspection plane has live traffic to report.
//!
//! ```text
//! cargo run -p zc-bench --bin demo_server -- --port 47117 --load 2 --duration-secs 30
//! # then, in another terminal:
//! cargo run -p zc-bench --bin zc-top -- --connect 127.0.0.1:47117
//! ```
//!
//! Prints `zcorba demo server listening on HOST:PORT` once the acceptor is
//! up — scripts wait for that line before polling. `--duration-secs 0`
//! (the default) serves until killed.
//!
//! `--admit-requests N` (with an optional `--admit-bytes B`, default
//! `N × block`) bounds the dispatch queue: excess loopback load is shed
//! with `TRANSIENT` and shows up in zc-top's `sheds_total` while the
//! `_ZcTelemetry` lane keeps answering — the CI overload-smoke job drives
//! exactly this. Load threads count sheds and keep going; only hard
//! failures stop them.
//!
//! `--spool DIR` drains the flight recorder into durable segment files
//! under `DIR` (see `zc_trace::SpoolConfig`) and additionally runs a small
//! in-process *journey demo*: a two-replica object group is booted on the
//! same shared telemetry, the primary is killed mid-stream, and an
//! idempotent caller fails over — so the spooled segments always contain
//! at least one multi-attempt journey for `zc-flame` to reconstruct. The
//! CI trace-spool smoke job drives exactly this.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zc_giop::Ior;
use zc_orb::{AdmissionConfig, ObjectAdapterExt, Orb, OrbError, OrbResult, Servant, ServerRequest};

const BULK_REPO_ID: &str = "IDL:zcorba/bench/BulkSink:1.0";
const PONG_REPO_ID: &str = "IDL:zcorba/bench/Pong:1.0";

/// Accepts zero-copy octet blocks and acknowledges their length — the
/// minimal bulk-data servant, so wire bytes and deposit traffic dominate.
struct BulkSink;

impl Servant for BulkSink {
    fn repo_id(&self) -> &'static str {
        BULK_REPO_ID
    }

    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "push" => {
                let data: zc_cdr::ZcOctetSeq = req.arg()?;
                req.result(&(data.len() as u32))
            }
            other => req.bad_operation(other),
        }
    }
}

/// The journey demo's replica servant: a trivial idempotent `ping` plus a
/// `nap` stall used to poison a connection to a killed primary.
struct Pong;

impl Servant for Pong {
    fn repo_id(&self) -> &'static str {
        PONG_REPO_ID
    }

    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "ping" => {
                let n: u32 = req.arg()?;
                req.result(&n)
            }
            "nap" => {
                let ms: u32 = req.arg()?;
                std::thread::sleep(Duration::from_millis(ms as u64));
                req.result(&ms)
            }
            other => req.bad_operation(other),
        }
    }
}

/// Boot a two-replica Pong group on `telemetry`, kill the primary
/// mid-stream, and drive an idempotent caller across the failover. Every
/// event lands in the shared recorder, so the spool (owned by the main
/// server ORB) captures a complete multi-attempt journey.
fn run_journey_demo(telemetry: &Arc<zc_trace::Telemetry>) {
    let mut servers = Vec::new();
    let mut orbs = Vec::new();
    let mut iors = Vec::new();
    for _ in 0..2 {
        let orb = Orb::builder()
            .tcp()
            .telemetry(Arc::clone(telemetry))
            .build();
        orb.adapter().register("pong", Arc::new(Pong));
        let server = orb.serve(0).expect("bind journey replica");
        iors.push(server.ior_for("pong", PONG_REPO_ID).expect("pong ior"));
        servers.push(server);
        orbs.push(orb);
    }
    let group = Ior::merge_group(&iors).expect("journey group ior");
    let client = Orb::builder()
        .tcp()
        .telemetry(Arc::clone(telemetry))
        .build();
    let obj = match client.resolve(&group) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("journey demo: resolve failed: {e}");
            return;
        }
    };
    let ping = |n: u32| {
        obj.request("ping")
            .arg(&n)
            .expect("marshal")
            .idempotent()
            .invoke()
            .and_then(|r| r.result::<u32>())
    };
    for n in 0..3 {
        let _ = ping(n);
    }
    // Kill the primary mid-stream: stop its acceptor, then poison the
    // still-open connection with a timed-out nap (real TCP has no fault
    // injection; the stall plays the dead peer). The next idempotent ping
    // reconnects, is refused, and rotates to the backup — a journey whose
    // second attempt carries a nonzero cause tag.
    servers.remove(0).shutdown();
    let _ = obj
        .request("nap")
        .arg(&5_000u32)
        .expect("marshal")
        .idempotent()
        .invoke_timeout(Duration::from_millis(50));
    let mut recovered = false;
    for n in 0..3 {
        recovered |= ping(n).is_ok();
    }
    for s in servers {
        s.shutdown();
    }
    if recovered {
        println!("zcorba journey demo complete (failover exercised)");
    } else {
        eprintln!("journey demo: failover never recovered");
    }
}

fn arg_value(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn arg_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    arg_value(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let port: u16 = arg_num("--port", 0);
    let load_threads: usize = arg_num("--load", 2);
    let block_kib: usize = arg_num("--block-kib", 256);
    let duration_secs: u64 = arg_num("--duration-secs", 0);
    let admit_requests: u64 = arg_num("--admit-requests", 0);
    let admit_bytes: u64 = arg_num(
        "--admit-bytes",
        admit_requests.saturating_mul((block_kib as u64) << 10),
    );

    let spool_dir = arg_value("--spool");

    let telemetry = zc_trace::Telemetry::with_capacity(4096);
    let mut builder = Orb::builder().tcp().telemetry(Arc::clone(&telemetry));
    if admit_requests > 0 {
        builder = builder.admission(AdmissionConfig::bounded(admit_requests, admit_bytes));
    }
    if let Some(dir) = &spool_dir {
        builder = builder.trace_spool(zc_trace::SpoolConfig::new(dir));
    }
    let server_orb = builder.build();
    server_orb.adapter().register("bulk", Arc::new(BulkSink));
    let server = server_orb.serve(port).expect("bind demo server");
    let (host, port) = (server.host().to_string(), server.port());
    println!("zcorba demo server listening on {host}:{port}");
    let _ = std::io::stdout().flush();

    let stop = Arc::new(AtomicBool::new(false));
    let shed_seen = Arc::new(AtomicU64::new(0));
    let ior = server.ior_for("bulk", BULK_REPO_ID).expect("bulk ior");
    let mut workers = Vec::new();
    for i in 0..load_threads {
        let stop = Arc::clone(&stop);
        let shed_seen = Arc::clone(&shed_seen);
        let ior = ior.clone();
        // The loopback load clients share the server's telemetry, so one
        // zc-top poll sees the whole request lifecycle — client marshal
        // stages and reply latencies alongside the server-side counters.
        let telemetry = Arc::clone(&telemetry);
        workers.push(
            std::thread::Builder::new()
                .name(format!("demo-load-{i}"))
                .spawn(move || {
                    let client = Orb::builder().tcp().telemetry(telemetry).build();
                    let obj = match client.resolve(&ior) {
                        Ok(o) => o,
                        Err(e) => {
                            eprintln!("load thread {i}: resolve failed: {e}");
                            return;
                        }
                    };
                    let payload = zc_cdr::ZcOctetSeq::with_length(block_kib << 10);
                    while !stop.load(Ordering::Relaxed) {
                        let sent = obj
                            .request("push")
                            .arg(&payload)
                            .expect("marshal")
                            .invoke()
                            .and_then(|r| r.result::<u32>());
                        match sent {
                            Ok(n) => debug_assert_eq!(n as usize, payload.len()),
                            // Shed with completed = NO: the server is
                            // protecting itself, not failing. Count it and
                            // keep offering load — that pressure is the
                            // point of the overload demo.
                            Err(OrbError::System(ex)) if zc_orb::admission::is_shed(&ex) => {
                                shed_seen.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("load thread {i}: push failed: {e}");
                                break;
                            }
                        }
                    }
                })
                .expect("spawn load thread"),
        );
    }

    let deadline = (duration_secs > 0).then(|| Instant::now() + Duration::from_secs(duration_secs));
    loop {
        std::thread::sleep(Duration::from_millis(200));
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }

    // With a spool configured, guarantee the retained segments hold at
    // least one multi-attempt journey regardless of how much external load
    // ran: the demo goes last, after the load threads stop, so rotation
    // can no longer prune its events before the final drain.
    if spool_dir.is_some() {
        run_journey_demo(&telemetry);
    }

    server.shutdown();
    let sheds = shed_seen.load(Ordering::Relaxed);
    if sheds > 0 {
        println!("zcorba demo server shed {sheds} requests (admission control)");
    }
    println!("zcorba demo server done");
}
