//! Ablations A1–A4: the design arguments of DESIGN.md, measured on this
//! host's operational stack.
//!
//! * **A1** — separation of control- and data transfers off: deposits ride
//!   inside the GIOP control message. Buffering copies return (§3.2).
//! * **A2** — page alignment violated: speculative defragmentation can
//!   never land the block, so the driver falls back to copying.
//! * **A3** — speculation success-rate sweep: the probabilistic fallback
//!   of [10] degrades gracefully.
//! * **A4** — deposits disabled entirely (marshal *bypass* only): the copy
//!   moves layers instead of disappearing — "many previous attempts just
//!   move copies between software layers".

use std::sync::Arc;
use std::time::Instant;

use zc_buffers::{CopyLayer, CopyMeter, ZcBytes};
use zc_cdr::ZcOctetSeq;
use zc_orb::{ObjectAdapterExt, Orb, OrbResult, Servant, ServerRequest};
use zc_transport::{SimConfig, SimNetwork};

const BLOCK: usize = 1 << 20;
const ROUNDS: usize = 24;

struct Echo;
impl Servant for Echo {
    fn repo_id(&self) -> &'static str {
        "IDL:zcorba/Echo:1.0"
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "echo" => {
                let d: ZcOctetSeq = req.arg()?;
                req.result(&d)
            }
            other => req.bad_operation(other),
        }
    }
}

struct Outcome {
    label: String,
    mbit: f64,
    overhead_factor: f64,
    fallback_bytes: u64,
}

fn run(
    label: &str,
    cfg: SimConfig,
    build: impl Fn(zc_orb::OrbBuilder) -> zc_orb::OrbBuilder,
    payload: ZcBytes,
) -> Outcome {
    let net = SimNetwork::new(cfg);
    let meter = CopyMeter::new_shared();
    let server_orb = build(Orb::builder().sim(net.clone()).meter(Arc::clone(&meter))).build();
    server_orb.adapter().register("echo", Arc::new(Echo));
    let server = server_orb.serve(0).unwrap();
    let client = build(Orb::builder().sim(net).meter(Arc::clone(&meter))).build();
    let ior = server.ior_for("echo", "IDL:zcorba/Echo:1.0").unwrap();
    let obj = client.resolve(&ior).unwrap();

    // warm-up
    obj.request("echo")
        .arg(&ZcOctetSeq::with_length(0))
        .unwrap()
        .invoke()
        .unwrap();

    let before = meter.snapshot();
    let start = Instant::now();
    for _ in 0..ROUNDS {
        let reply = obj
            .request("echo")
            .arg(&ZcOctetSeq::from_zc(payload.clone()))
            .unwrap()
            .invoke()
            .unwrap();
        let back: ZcOctetSeq = reply.result().unwrap();
        assert_eq!(back.len(), payload.len());
    }
    let wall = start.elapsed();
    let delta = meter.snapshot().since(&before);
    // each round moves the payload out and back
    let payload_bytes = (2 * ROUNDS * payload.len()) as f64;
    let out = Outcome {
        label: label.to_string(),
        mbit: payload_bytes * 8.0 / wall.as_secs_f64() / 1e6,
        overhead_factor: delta.overhead_bytes() as f64 / payload_bytes,
        fallback_bytes: delta.bytes(CopyLayer::DepositFallback),
    };
    server.shutdown();
    out
}

fn print(o: &Outcome) {
    println!(
        "  {:<44} {:>9.0} Mbit/s   {:>5.2} copies/byte   fallback {:>12} B",
        o.label, o.mbit, o.overhead_factor, o.fallback_bytes
    );
}

fn main() {
    println!("## Ablations A1–A4 — 1 MiB echo ×{ROUNDS}, measured on this host\n");

    let aligned = ZcBytes::zeroed(BLOCK);

    print(&run(
        "full design (deposit + separation, aligned)",
        SimConfig::zero_copy(),
        |b| b,
        aligned.clone(),
    ));

    // A1: couple data into the control messages
    print(&run(
        "A1: control/data separation OFF",
        SimConfig::zero_copy(),
        |b| b.separate_data(false),
        aligned.clone(),
    ));

    // A2: break page alignment — speculation can never land
    let whole = ZcBytes::zeroed(BLOCK + zc_buffers::PAGE_SIZE);
    let misaligned = whole.slice(1..BLOCK + 1);
    print(&run(
        "A2: page alignment violated",
        SimConfig::zero_copy(),
        |b| b,
        misaligned,
    ));

    // A3: speculation sweep
    for p in [1.0, 0.9, 0.75, 0.5] {
        print(&run(
            &format!("A3: speculation success p = {p:.2}"),
            SimConfig::zero_copy_with_speculation(p),
            |b| b,
            aligned.clone(),
        ));
    }

    // A4: marshal bypass only — no deposits at all
    print(&run(
        "A4: deposits OFF (marshal bypass only)",
        SimConfig::zero_copy(),
        |b| b.deposit_enabled(false),
        aligned.clone(),
    ));

    println!(
        "\nreading: only the full design drives copies/byte to ~0; every ablation\n\
         re-introduces per-byte copying somewhere, which is the paper's argument\n\
         for strict zero-copy end to end."
    );
}
