//! `zc-flame` — offline critical-path analyzer over trace-spool segments.
//!
//! ```text
//! cargo run -p zc-bench --bin zc_flame -- --dir /tmp/zc-spool
//! cargo run -p zc-bench --bin zc_flame -- --dir /tmp/zc-spool --json --out flame.json
//! ```
//!
//! Reads every `spool-*.zcs` segment under `--dir` (oldest first, torn
//! tails tolerated — the segments are untrusted input), reconstructs
//! request journeys across their attempts, and renders either a text
//! flamegraph with per-stage/per-cause aggregates (the default) or the
//! `zcorba-flame/v1` machine summary (`--json`). `--top N` bounds the
//! per-journey detail (longest critical path first, default 10).

use std::path::PathBuf;
use std::process::ExitCode;

use zc_bench::flame::{analyze_spool_dir, render_json, render_text};

fn arg_value(name: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != name).nth(1)
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() -> ExitCode {
    let Some(dir) = arg_value("--dir") else {
        eprintln!("usage: zc_flame --dir SPOOL_DIR [--json] [--out FILE] [--top N]");
        return ExitCode::FAILURE;
    };
    let top: usize = arg_value("--top")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    let analysis = match analyze_spool_dir(&PathBuf::from(&dir)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("zc_flame: {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let rendered = if arg_flag("--json") {
        render_json(&analysis, top)
    } else {
        render_text(&analysis, top)
    };

    match arg_value("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered.as_bytes()) {
                eprintln!("zc_flame: write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            // write_all, not println!: a downstream `| head` closing the
            // pipe early must end the program quietly, not panic it.
            use std::io::Write as _;
            let mut out = std::io::stdout().lock();
            let _ = out.write_all(rendered.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }
    ExitCode::SUCCESS
}
