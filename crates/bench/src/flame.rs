//! `zc-flame` — offline journey reconstruction and critical-path analysis
//! over durable trace-spool segments.
//!
//! The flight recorder answers "what just happened"; the spool answers
//! "what happened to that run" after the process is gone. This module is
//! the reader side: it loads every segment of a spool directory
//! (tolerating torn tails — the segments are untrusted input, see
//! `zc_trace::read_spool_segment`), joins `Attempt` events to their stage
//! timelines on the per-send trace id, groups attempts into journeys on
//! the journey id, and computes each journey's critical path — the §5.2
//! per-stage decomposition extended across retries, failovers and sheds.
//!
//! Output comes in two shapes: a text flamegraph per journey (plus
//! per-stage and per-cause aggregate percentiles), and a machine summary
//! under the [`FLAME_SCHEMA`] schema for CI and the bench trajectory.

use std::fmt::Write as _;
use std::path::Path;

use zc_trace::{
    read_spool_segment, span_timelines, spool_segments, unpack_attempt, EventKind, JourneyCause,
    SpanTimeline, SpoolError, Stage, TraceEvent,
};

/// Schema tag of the `--json` machine summary.
pub const FLAME_SCHEMA: &str = "zcorba-flame/v1";

/// One attempt of a journey: the causal child span.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The attempt's per-send trace id (join key to its stage timeline).
    pub trace_id: u64,
    /// Why this attempt exists.
    pub cause: JourneyCause,
    /// 0-based ordinal within the journey (saturated to 255 on the wire).
    pub ordinal: u32,
    /// Timestamp of the attempt event (trace clock).
    pub ts_ns: u64,
    /// The attempt's joined stage timeline, when its stage events made it
    /// into the spool window.
    pub timeline: Option<SpanTimeline>,
}

impl Attempt {
    /// The attempt's critical path: the sum of its disjoint stage legs
    /// (zero when no stage events survived).
    pub fn critical_path_ns(&self) -> u64 {
        self.timeline
            .as_ref()
            .map_or(0, SpanTimeline::critical_path_ns)
    }
}

/// One reconstructed logical request: every attempt sharing a journey id,
/// in ordinal order.
#[derive(Debug, Clone)]
pub struct Journey {
    /// The journey id (low 48 bits, as carried in the attempt payload).
    pub journey_id: u64,
    /// Attempts in ordinal order.
    pub attempts: Vec<Attempt>,
}

impl Journey {
    /// Whether the whole causal chain survived into the spool window:
    /// ordinals are contiguous from 0 and the first attempt is a journey
    /// opener (`initial` or `degrade-probe`), not a recovery.
    pub fn is_complete(&self) -> bool {
        self.attempts
            .iter()
            .enumerate()
            .all(|(i, a)| a.ordinal == i as u32)
            && self.attempts.first().is_some_and(|a| {
                matches!(a.cause, JourneyCause::Initial | JourneyCause::DegradeProbe)
            })
    }

    /// Whether the journey recovered across attempts: complete, and at
    /// least one attempt was produced by a recovery path (retry, failover
    /// or shed-rotate).
    pub fn is_recovered(&self) -> bool {
        self.is_complete()
            && self.attempts.iter().any(|a| {
                matches!(
                    a.cause,
                    JourneyCause::Retry | JourneyCause::Failover | JourneyCause::ShedRotate
                )
            })
    }

    /// The journey's critical path: attempts are strictly sequential (the
    /// next begins only after the previous failed), so their critical
    /// paths sum.
    pub fn critical_path_ns(&self) -> u64 {
        self.attempts.iter().map(Attempt::critical_path_ns).sum()
    }
}

/// What a spool-directory load saw, besides the events themselves.
#[derive(Debug, Default, Clone)]
pub struct LoadStats {
    /// Segment files read.
    pub segments: usize,
    /// Segments whose tail was torn or corrupt (valid prefix still used).
    pub truncated_segments: usize,
    /// Segments that were not readable at all (bad magic/version/io).
    pub unreadable_segments: usize,
    /// Events skipped inside valid records (unknown layer/kind bytes).
    pub skipped_events: u64,
    /// Total events loaded.
    pub events: usize,
}

/// Load every segment of a spool directory, oldest first, tolerating torn
/// tails and skipping unreadable files (they are counted, not fatal — an
/// operator pointing zc-flame at a live or damaged spool still gets the
/// valid prefix). Errors only when the directory holds no readable
/// segment at all.
pub fn load_spool_dir(dir: &Path) -> Result<(Vec<TraceEvent>, LoadStats), SpoolError> {
    let mut events = Vec::new();
    let mut stats = LoadStats::default();
    let mut first_err = None;
    for seg in spool_segments(dir) {
        match read_spool_segment(&seg) {
            Ok(read) => {
                stats.segments += 1;
                stats.truncated_segments += read.truncated as usize;
                stats.skipped_events += read.skipped_events;
                events.extend(read.events);
            }
            Err(e) => {
                stats.unreadable_segments += 1;
                first_err.get_or_insert(e);
            }
        }
    }
    if stats.segments == 0 {
        return Err(first_err.unwrap_or_else(|| {
            SpoolError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no spool segments in {}", dir.display()),
            ))
        }));
    }
    stats.events = events.len();
    Ok((events, stats))
}

/// Group `Attempt` events into journeys and join each attempt to its stage
/// timeline on the trace id. Client and server both record the attempt
/// (so a one-sided spool still reconstructs); duplicates collapse on
/// `(journey, trace_id)`. Journeys are ordered by id, attempts by ordinal
/// (ties broken by timestamp: the wire saturates ordinals at 255).
pub fn reconstruct_journeys(events: &[TraceEvent]) -> Vec<Journey> {
    let timelines = span_timelines(events);
    let mut journeys: Vec<Journey> = Vec::new();
    for ev in events {
        if ev.kind != EventKind::Attempt {
            continue;
        }
        // Untrusted payload: an unknown cause byte drops the event.
        let Some((cause, ordinal, journey_id)) = unpack_attempt(ev.payload) else {
            continue;
        };
        if journey_id == 0 {
            continue;
        }
        let j = match journeys.iter().position(|j| j.journey_id == journey_id) {
            Some(i) => &mut journeys[i],
            None => {
                journeys.push(Journey {
                    journey_id,
                    attempts: Vec::new(),
                });
                journeys.last_mut().expect("just pushed")
            }
        };
        // The other endpoint mirrors the same attempt (same trace id, same
        // ordinal): collapse it. Attempts aborted before the wire carry
        // trace id 0 — distinct ordinals keep them apart.
        if j.attempts
            .iter()
            .any(|a| a.trace_id == ev.trace_id && a.ordinal == ordinal)
        {
            continue;
        }
        let timeline = timelines
            .iter()
            .find(|t| t.trace_id == ev.trace_id)
            .cloned();
        j.attempts.push(Attempt {
            trace_id: ev.trace_id,
            cause,
            ordinal,
            ts_ns: ev.ts_ns,
            timeline,
        });
    }
    for j in &mut journeys {
        j.attempts.sort_by_key(|a| (a.ordinal, a.ts_ns, a.trace_id));
    }
    journeys.sort_unstable_by_key(|j| j.journey_id);
    journeys
}

/// The full offline analysis of one spool directory.
#[derive(Debug)]
pub struct FlameAnalysis {
    /// Reconstructed journeys, by id.
    pub journeys: Vec<Journey>,
    /// Load accounting.
    pub stats: LoadStats,
}

/// Load a spool directory and reconstruct its journeys.
pub fn analyze_spool_dir(dir: &Path) -> Result<FlameAnalysis, SpoolError> {
    let (events, stats) = load_spool_dir(dir)?;
    Ok(FlameAnalysis {
        journeys: reconstruct_journeys(&events),
        stats,
    })
}

/// Percentile (nearest-rank) of a sorted slice; 0 when empty.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-stage duration samples across every attempt timeline, sorted.
fn stage_samples(journeys: &[Journey]) -> Vec<(Stage, Vec<u64>)> {
    let mut per_stage: Vec<(Stage, Vec<u64>)> =
        Stage::ALL.into_iter().map(|s| (s, Vec::new())).collect();
    for j in journeys {
        for a in &j.attempts {
            let Some(tl) = &a.timeline else { continue };
            for (stage, samples) in &mut per_stage {
                if let Some(s) = tl.get(*stage) {
                    samples.push(s.dur_ns);
                }
            }
        }
    }
    for (_, samples) in &mut per_stage {
        samples.sort_unstable();
    }
    per_stage.retain(|(_, samples)| !samples.is_empty());
    per_stage
}

/// Per-cause attempt counts and sorted critical-path samples.
fn cause_samples(journeys: &[Journey]) -> Vec<(JourneyCause, Vec<u64>)> {
    let mut per_cause: Vec<(JourneyCause, Vec<u64>)> = JourneyCause::ALL
        .into_iter()
        .map(|c| (c, Vec::new()))
        .collect();
    for j in journeys {
        for a in &j.attempts {
            let slot = &mut per_cause[a.cause as usize].1;
            slot.push(a.critical_path_ns());
        }
    }
    for (_, samples) in &mut per_cause {
        samples.sort_unstable();
    }
    per_cause.retain(|(_, samples)| !samples.is_empty());
    per_cause
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

const BAR_WIDTH: usize = 32;

fn bar(dur: u64, max: u64) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = ((dur as f64 / max as f64) * BAR_WIDTH as f64).round() as usize;
    let filled = filled.clamp(usize::from(dur > 0), BAR_WIDTH);
    "█".repeat(filled)
}

/// Render the per-journey text flamegraph: every attempt as a child span
/// with its cause tag, every stage leg as a proportional bar. `top`
/// bounds how many journeys are rendered (longest critical path first);
/// the header always counts all of them.
pub fn render_text(analysis: &FlameAnalysis, top: usize) -> String {
    let mut out = String::new();
    let st = &analysis.stats;
    let complete = analysis.journeys.iter().filter(|j| j.is_complete()).count();
    let recovered = analysis
        .journeys
        .iter()
        .filter(|j| j.is_recovered())
        .count();
    let attempts: usize = analysis.journeys.iter().map(|j| j.attempts.len()).sum();
    let _ = writeln!(
        out,
        "zc-flame · {} events from {} segment(s) ({} truncated, {} unreadable, {} skipped events)",
        st.events, st.segments, st.truncated_segments, st.unreadable_segments, st.skipped_events
    );
    let _ = writeln!(
        out,
        "journeys {} ({complete} complete, {recovered} recovered) · attempts {attempts}",
        analysis.journeys.len()
    );

    // Longest critical paths first: the journeys worth staring at.
    let mut by_cost: Vec<&Journey> = analysis.journeys.iter().collect();
    by_cost.sort_by_key(|j| std::cmp::Reverse(j.critical_path_ns()));
    let shown = by_cost.len().min(top);
    if shown < by_cost.len() {
        let _ = writeln!(
            out,
            "showing the {shown} longest of {} journeys (--top to change)",
            by_cost.len()
        );
    }
    for j in &by_cost[..shown] {
        let _ = writeln!(
            out,
            "\njourney {} · {} attempt(s) · critical path {}{}",
            j.journey_id,
            j.attempts.len(),
            fmt_ns(j.critical_path_ns()),
            if j.is_complete() {
                ""
            } else {
                " · INCOMPLETE"
            },
        );
        let max_leg = j
            .attempts
            .iter()
            .filter_map(|a| a.timeline.as_ref())
            .flat_map(|tl| Stage::ALL.into_iter().filter_map(|s| tl.get(s)))
            .map(|s| s.dur_ns)
            .max()
            .unwrap_or(0);
        for a in &j.attempts {
            let _ = writeln!(
                out,
                "  attempt {} [{}] trace {} · {}",
                a.ordinal,
                a.cause.name(),
                a.trace_id,
                fmt_ns(a.critical_path_ns()),
            );
            let Some(tl) = &a.timeline else {
                let _ = writeln!(out, "    (no stage events in the spool window)");
                continue;
            };
            for stage in Stage::ALL {
                if let Some(s) = tl.get(stage) {
                    let _ = writeln!(
                        out,
                        "    {:<16}{:>12}  {}",
                        stage.name(),
                        fmt_ns(s.dur_ns),
                        bar(s.dur_ns, max_leg)
                    );
                }
            }
        }
    }

    let stages = stage_samples(&analysis.journeys);
    if !stages.is_empty() {
        let _ = writeln!(out, "\nper-stage aggregate (across all attempts)");
        let _ = writeln!(
            out,
            "  {:<16}{:>8}{:>12}{:>12}{:>12}",
            "stage", "n", "p50", "p90", "p99"
        );
        for (stage, samples) in &stages {
            let _ = writeln!(
                out,
                "  {:<16}{:>8}{:>12}{:>12}{:>12}",
                stage.name(),
                samples.len(),
                fmt_ns(percentile(samples, 50.0)),
                fmt_ns(percentile(samples, 90.0)),
                fmt_ns(percentile(samples, 99.0)),
            );
        }
    }
    let causes = cause_samples(&analysis.journeys);
    if !causes.is_empty() {
        let _ = writeln!(out, "\nper-cause attempts (critical path)");
        let _ = writeln!(out, "  {:<16}{:>8}{:>12}{:>12}", "cause", "n", "p50", "p99");
        for (cause, samples) in &causes {
            let _ = writeln!(
                out,
                "  {:<16}{:>8}{:>12}{:>12}",
                cause.name(),
                samples.len(),
                fmt_ns(percentile(samples, 50.0)),
                fmt_ns(percentile(samples, 99.0)),
            );
        }
    }
    out
}

/// Render the machine summary (schema [`FLAME_SCHEMA`]). `top` bounds the
/// per-journey detail array (longest critical path first); the scalar
/// totals always cover everything.
pub fn render_json(analysis: &FlameAnalysis, top: usize) -> String {
    let st = &analysis.stats;
    let complete = analysis.journeys.iter().filter(|j| j.is_complete()).count();
    let recovered = analysis
        .journeys
        .iter()
        .filter(|j| j.is_recovered())
        .count();
    let multi = analysis
        .journeys
        .iter()
        .filter(|j| j.attempts.len() > 1)
        .count();
    let attempts: usize = analysis.journeys.iter().map(|j| j.attempts.len()).sum();
    let mut out = String::from("{");
    let _ = write!(out, "\"schema\":\"{FLAME_SCHEMA}\"");
    let _ = write!(out, ",\"events\":{}", st.events);
    let _ = write!(out, ",\"segments\":{}", st.segments);
    let _ = write!(out, ",\"truncated_segments\":{}", st.truncated_segments);
    let _ = write!(out, ",\"unreadable_segments\":{}", st.unreadable_segments);
    let _ = write!(out, ",\"skipped_events\":{}", st.skipped_events);
    let _ = write!(out, ",\"journeys_total\":{}", analysis.journeys.len());
    let _ = write!(out, ",\"journeys_complete\":{complete}");
    let _ = write!(out, ",\"journeys_recovered\":{recovered}");
    let _ = write!(out, ",\"multi_attempt_journeys\":{multi}");
    let _ = write!(out, ",\"attempts_total\":{attempts}");

    let _ = write!(out, ",\"cause_attempts\":{{");
    let mut first = true;
    for (cause, samples) in cause_samples(&analysis.journeys) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", cause.name(), samples.len());
    }
    out.push('}');

    for (key, p) in [("stage_p50_ns", 50.0), ("stage_p99_ns", 99.0)] {
        let _ = write!(out, ",\"{key}\":{{");
        let mut first = true;
        for (stage, samples) in stage_samples(&analysis.journeys) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", stage.name(), percentile(&samples, p));
        }
        out.push('}');
    }

    let mut by_cost: Vec<&Journey> = analysis.journeys.iter().collect();
    by_cost.sort_by_key(|j| std::cmp::Reverse(j.critical_path_ns()));
    let shown = by_cost.len().min(top);
    let _ = write!(out, ",\"journeys\":[");
    for (i, j) in by_cost[..shown].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"journey_id\":{},\"complete\":{},\"recovered\":{},\"critical_path_ns\":{},\"attempts\":[",
            j.journey_id,
            j.is_complete(),
            j.is_recovered(),
            j.critical_path_ns()
        );
        for (k, a) in j.attempts.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"ordinal\":{},\"cause\":\"{}\",\"trace_id\":{},\"critical_path_ns\":{},\"stages\":{{",
                a.ordinal,
                a.cause.name(),
                a.trace_id,
                a.critical_path_ns()
            );
            if let Some(tl) = &a.timeline {
                let mut first = true;
                for stage in Stage::ALL {
                    if let Some(s) = tl.get(stage) {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(out, "\"{}\":{}", stage.name(), s.dur_ns);
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zc_trace::{pack_attempt, pack_stage, TraceLayer, JOURNEY_ID_MASK};

    fn attempt_ev(trace_id: u64, cause: JourneyCause, ordinal: u32, journey: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 10 * trace_id,
            conn_id: 1,
            trace_id,
            layer: TraceLayer::Orb,
            kind: EventKind::Attempt,
            payload: pack_attempt(cause, ordinal, journey),
        }
    }

    fn stage_ev(trace_id: u64, stage: Stage, dur: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 10 * trace_id + 1,
            conn_id: 1,
            trace_id,
            layer: stage.layer(),
            kind: EventKind::Stage,
            payload: pack_stage(stage, dur),
        }
    }

    #[test]
    fn reconstructs_failover_journey() {
        let events = vec![
            attempt_ev(101, JourneyCause::Initial, 0, 9),
            stage_ev(101, Stage::ClientMarshal, 100),
            stage_ev(101, Stage::Wire, 400),
            // the server's mirror of the same attempt collapses
            attempt_ev(101, JourneyCause::Initial, 0, 9),
            attempt_ev(102, JourneyCause::Failover, 1, 9),
            stage_ev(102, Stage::ClientMarshal, 50),
            stage_ev(102, Stage::ServerDispatch, 200),
            // a different journey
            attempt_ev(201, JourneyCause::Initial, 0, 10),
        ];
        let journeys = reconstruct_journeys(&events);
        assert_eq!(journeys.len(), 2);
        let j = &journeys[0];
        assert_eq!(j.journey_id, 9);
        assert_eq!(j.attempts.len(), 2);
        assert_eq!(j.attempts[0].cause, JourneyCause::Initial);
        assert_eq!(j.attempts[1].cause, JourneyCause::Failover);
        assert_eq!(j.attempts[1].ordinal, 1);
        assert!(j.is_complete());
        assert!(j.is_recovered());
        assert_eq!(j.critical_path_ns(), 100 + 400 + 50 + 200);
        assert!(journeys[1].is_complete());
        assert!(!journeys[1].is_recovered());
    }

    #[test]
    fn ring_evicted_opener_marks_journey_incomplete() {
        // Only the failover attempt survived the ring: ordinal 1 without 0.
        let events = vec![attempt_ev(102, JourneyCause::Failover, 1, 9)];
        let journeys = reconstruct_journeys(&events);
        assert_eq!(journeys.len(), 1);
        assert!(!journeys[0].is_complete());
        assert!(!journeys[0].is_recovered());
    }

    #[test]
    fn unknown_cause_and_zero_journey_are_dropped() {
        let mut bad = attempt_ev(101, JourneyCause::Initial, 0, 9);
        bad.payload = 0xFFu64 << 56 | 9; // unknown cause byte
        let zero = attempt_ev(102, JourneyCause::Initial, 0, 0);
        assert!(reconstruct_journeys(&[bad, zero]).is_empty());
    }

    #[test]
    fn journey_ids_mask_to_48_bits() {
        let ev = attempt_ev(101, JourneyCause::Initial, 0, u64::MAX);
        let journeys = reconstruct_journeys(&[ev]);
        assert_eq!(journeys[0].journey_id, JOURNEY_ID_MASK);
    }

    #[test]
    fn json_summary_has_schema_and_counts() {
        let events = vec![
            attempt_ev(101, JourneyCause::Initial, 0, 9),
            stage_ev(101, Stage::Wire, 400),
            attempt_ev(102, JourneyCause::Failover, 1, 9),
        ];
        let analysis = FlameAnalysis {
            journeys: reconstruct_journeys(&events),
            stats: LoadStats {
                segments: 1,
                events: events.len(),
                ..LoadStats::default()
            },
        };
        let json = render_json(&analysis, 10);
        let parsed = crate::parse_json(&json).expect("flame json parses");
        assert_eq!(
            parsed.get("schema").and_then(|j| j.as_str()),
            Some(FLAME_SCHEMA)
        );
        assert_eq!(
            parsed.get("journeys_total").and_then(|j| j.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            parsed.get("journeys_recovered").and_then(|j| j.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            parsed.get("attempts_total").and_then(|j| j.as_f64()),
            Some(2.0)
        );
        let text = render_text(&analysis, 10);
        assert!(text.contains("journey 9"));
        assert!(text.contains("[failover]"));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}
