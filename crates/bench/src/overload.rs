//! Open-loop overload experiment: goodput vs offered load through the
//! admission-controlled ORB.
//!
//! The point of admission control is invisible below saturation and
//! decisive past it, so the harness drives the server **open loop** (see
//! [`zc_simnet::workload`]): a Poisson arrival schedule is precomputed and
//! requests are *due* at fixed instants whether or not the server keeps
//! up. Each offered-load multiplier runs twice:
//!
//! * **seed** — admission unlimited, the pre-PR behaviour: past
//!   saturation every request is accepted, sojourn times grow linearly
//!   with time, and goodput (replies within the deadline, measured from
//!   the *scheduled* arrival) collapses;
//! * **admission** — a bounded dispatch budget sheds the excess with
//!   `TRANSIENT (completed = NO)` in microseconds, so admitted requests
//!   still meet the deadline and goodput plateaus at the budget.
//!
//! While the admission run is past saturation, a management poller pings
//! the reserved `_ZcTelemetry` object over its own connection — proving
//! the control plane's reserved lane stays responsive under a load that
//! sheds the data plane.
//!
//! Service times are emulated with `thread::sleep` (hot keys one unit,
//! cold keys two — the 80/20 skew of [`KeySkew`]) so the experiment
//! measures queueing and shedding, not host CPU contention.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zc_orb::{
    AdmissionConfig, ObjectAdapterExt, Orb, OrbError, OrbResult, RetryPolicy, Servant,
    ServerRequest, TelemetryClient,
};
use zc_simnet::{ArrivalSchedule, KeySkew, SeededRng};
use zc_trace::Telemetry;
use zc_transport::{SimConfig, SimNetwork};

/// Repository id of the overload servant.
pub const BUSY_BULK_REPO_ID: &str = "IDL:zcorba/bench/BusyBulk:1.0";

/// Object key of the overload servant.
pub const BUSY_BULK_KEY: &str = "busybulk";

/// Parameters of one overload sweep.
#[derive(Debug, Clone)]
pub struct OverloadParams {
    /// Seed for the arrival schedule and key sampler.
    pub seed: u64,
    /// Open-loop client workers (also the number of server connections,
    /// hence the server's maximum concurrency without admission control).
    pub workers: usize,
    /// Emulated service time of a hot-key request, microseconds. Cold
    /// keys take twice as long.
    pub hot_service_us: u64,
    /// Bulk payload per request (travels zero-copy).
    pub block_bytes: usize,
    /// Goodput deadline: a reply counts only if it lands within this many
    /// milliseconds of the request's *scheduled* arrival.
    pub deadline_ms: u64,
    /// Nominal duration of each offered-load point, seconds.
    pub point_duration_s: f64,
    /// Offered-load multipliers relative to the probed closed-loop
    /// capacity (1.0 = saturation).
    pub multipliers: Vec<f64>,
    /// Admission budget for the "admission" mode: concurrent dispatches.
    /// Must sit below `workers`, otherwise the connection count already
    /// bounds inflight and the gate never fires. The byte budget is
    /// derived as `admitted_requests × block_bytes`.
    pub admitted_requests: u64,
    /// Distinct keys for the 80/20 skew.
    pub keys: u64,
}

impl OverloadParams {
    /// CI-sized sweep: two points, sub-second each.
    pub fn smoke(seed: u64) -> OverloadParams {
        OverloadParams {
            seed,
            workers: 4,
            hot_service_us: 300,
            block_bytes: 16 << 10,
            deadline_ms: 25,
            point_duration_s: 0.25,
            multipliers: vec![0.5, 2.0],
            admitted_requests: 3,
            keys: 50,
        }
    }

    /// The full four-point curve of `BENCH_PR9.json`.
    pub fn full(seed: u64) -> OverloadParams {
        OverloadParams {
            seed,
            workers: 8,
            hot_service_us: 400,
            block_bytes: 16 << 10,
            deadline_ms: 25,
            point_duration_s: 0.6,
            multipliers: vec![0.5, 1.0, 1.5, 2.0],
            admitted_requests: 7,
            keys: 50,
        }
    }

    fn skew(&self) -> KeySkew {
        KeySkew::eighty_twenty(self.keys)
    }

    fn admission_config(&self) -> AdmissionConfig {
        AdmissionConfig::bounded(
            self.admitted_requests,
            self.admitted_requests * self.block_bytes as u64,
        )
    }
}

/// Which server configuration a point ran against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadMode {
    /// Pre-PR behaviour: unlimited admission.
    Seed,
    /// Bounded dispatch budget with brownout and a reserved control lane.
    Admission,
}

impl OverloadMode {
    /// Stable label used in JSON/CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            OverloadMode::Seed => "seed",
            OverloadMode::Admission => "admission",
        }
    }
}

/// Outcome of one (mode, offered-load) point.
#[derive(Debug, Clone)]
pub struct OverloadPoint {
    /// `"seed"` or `"admission"`.
    pub mode: &'static str,
    /// Offered load as a multiple of probed capacity.
    pub offered_x: f64,
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Requests issued (= schedule length).
    pub sent: u64,
    /// Replies that landed within the deadline of their scheduled arrival.
    pub ok_deadline: u64,
    /// Replies that landed, but late.
    pub late: u64,
    /// Requests shed by admission control (`TRANSIENT`, never dispatched).
    pub shed: u64,
    /// Requests that failed any other way.
    pub failed: u64,
    /// Goodput: deadline-met replies per second of wall time.
    pub goodput_rps: f64,
    /// 99th-percentile sojourn (scheduled arrival → reply) of completed
    /// requests, milliseconds.
    pub p99_sojourn_ms: f64,
    /// Server-side shed counter for this point.
    pub server_sheds: u64,
    /// Server-side brownout-shed counter for this point.
    pub server_brownouts: u64,
    /// Successful `_ZcTelemetry` pings during the point (admission mode).
    pub telemetry_pings: u64,
    /// Failed `_ZcTelemetry` pings during the point.
    pub telemetry_failures: u64,
}

/// A full goodput-vs-offered-load curve: both modes over all multipliers.
#[derive(Debug, Clone)]
pub struct OverloadCurve {
    /// Probed closed-loop capacity (requests per second, no admission).
    pub capacity_rps: f64,
    /// The deadline the goodput definition used, milliseconds.
    pub deadline_ms: u64,
    /// Bulk payload per request.
    pub block_bytes: usize,
    /// Client workers / server connections.
    pub workers: usize,
    /// All points, seed mode first, in multiplier order.
    pub points: Vec<OverloadPoint>,
}

impl OverloadCurve {
    /// Highest goodput any point of `mode` achieved.
    pub fn peak_goodput(&self, mode: OverloadMode) -> f64 {
        self.points
            .iter()
            .filter(|p| p.mode == mode.label())
            .map(|p| p.goodput_rps)
            .fold(0.0, f64::max)
    }

    /// Goodput at the highest offered multiplier of `mode`.
    pub fn goodput_at_max_offered(&self, mode: OverloadMode) -> f64 {
        self.points
            .iter()
            .filter(|p| p.mode == mode.label())
            .max_by(|a, b| a.offered_x.total_cmp(&b.offered_x))
            .map(|p| p.goodput_rps)
            .unwrap_or(0.0)
    }

    /// Post-saturation retention: goodput at the highest offered load as
    /// a fraction of the mode's peak (1.0 = perfect plateau, → 0 =
    /// collapse).
    pub fn plateau_ratio(&self, mode: OverloadMode) -> f64 {
        let peak = self.peak_goodput(mode);
        if peak <= 0.0 {
            return 0.0;
        }
        self.goodput_at_max_offered(mode) / peak
    }

    /// Total server-side sheds across admission-mode points.
    pub fn total_sheds(&self) -> u64 {
        self.points.iter().map(|p| p.server_sheds).sum()
    }

    /// Whether the reserved management lane answered throughout the
    /// admission-mode overload points.
    pub fn telemetry_alive(&self) -> bool {
        let admission: Vec<_> = self
            .points
            .iter()
            .filter(|p| p.mode == OverloadMode::Admission.label())
            .collect();
        !admission.is_empty()
            && admission.iter().any(|p| p.telemetry_pings > 0)
            && admission.iter().all(|p| p.telemetry_failures == 0)
    }

    /// JSON object (hand-rolled like the rest of the trajectory format —
    /// no serde in the tree).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"capacity_rps\": {:.1},\n  \"deadline_ms\": {},\n  \"block_bytes\": {},\n  \"workers\": {},\n",
            self.capacity_rps, self.deadline_ms, self.block_bytes, self.workers
        ));
        out.push_str(&format!(
            "  \"seed_plateau_ratio\": {:.4},\n  \"admission_plateau_ratio\": {:.4},\n",
            self.plateau_ratio(OverloadMode::Seed),
            self.plateau_ratio(OverloadMode::Admission)
        ));
        out.push_str(&format!(
            "  \"total_sheds\": {},\n  \"telemetry_alive\": {},\n",
            self.total_sheds(),
            self.telemetry_alive()
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"offered_x\": {:.2}, \"offered_rps\": {:.1}, \
                 \"sent\": {}, \"ok_deadline\": {}, \"late\": {}, \"shed\": {}, \"failed\": {}, \
                 \"goodput_rps\": {:.1}, \"p99_sojourn_ms\": {:.3}, \"server_sheds\": {}, \
                 \"server_brownouts\": {}, \"telemetry_pings\": {}, \"telemetry_failures\": {}}}{}\n",
                p.mode,
                p.offered_x,
                p.offered_rps,
                p.sent,
                p.ok_deadline,
                p.late,
                p.shed,
                p.failed,
                p.goodput_rps,
                p.p99_sojourn_ms,
                p.server_sheds,
                p.server_brownouts,
                p.telemetry_pings,
                p.telemetry_failures,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}");
        out
    }

    /// CSV header matching [`OverloadPoint::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "mode,offered_x,offered_rps,sent,ok_deadline,late,shed,failed,goodput_rps,p99_sojourn_ms"
    }
}

impl OverloadPoint {
    /// CSV row matching [`OverloadCurve::csv_header`].
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{:.2},{:.1},{},{},{},{},{},{:.1},{:.3}",
            self.mode,
            self.offered_x,
            self.offered_rps,
            self.sent,
            self.ok_deadline,
            self.late,
            self.shed,
            self.failed,
            self.goodput_rps,
            self.p99_sojourn_ms
        )
    }
}

/// The overload servant: a bulk sink whose service time depends on the
/// key (hot keys one service unit, cold keys two).
struct BusyBulk {
    hot_keys: u64,
    hot_us: u64,
}

impl Servant for BusyBulk {
    fn repo_id(&self) -> &'static str {
        BUSY_BULK_REPO_ID
    }
    fn dispatch(&self, op: &str, req: &mut ServerRequest<'_>) -> OrbResult<()> {
        match op {
            "work" => {
                let key: u64 = req.arg()?;
                let data: zc_cdr::ZcOctetSeq = req.arg()?;
                let us = if key < self.hot_keys {
                    self.hot_us
                } else {
                    self.hot_us * 2
                };
                std::thread::sleep(Duration::from_micros(us));
                req.result(&(data.len() as u64))
            }
            other => req.bad_operation(other),
        }
    }
}

struct Fixture {
    net: SimNetwork,
    telemetry: Arc<Telemetry>,
    server: zc_orb::ServerHandle,
    _server_orb: Orb,
}

fn fixture(params: &OverloadParams, admission: Option<AdmissionConfig>) -> Fixture {
    let net = SimNetwork::new(SimConfig::zero_copy());
    let telemetry = Telemetry::with_capacity(4096);
    let mut builder = Orb::builder()
        .sim(net.clone())
        .telemetry(Arc::clone(&telemetry));
    if let Some(cfg) = admission {
        builder = builder.admission(cfg);
    }
    let server_orb = builder.build();
    let skew = params.skew();
    server_orb.adapter().register(
        BUSY_BULK_KEY,
        Arc::new(BusyBulk {
            hot_keys: skew.hot_keys,
            hot_us: params.hot_service_us,
        }),
    );
    let server = server_orb.serve(0).expect("serve");
    Fixture {
        net,
        telemetry,
        server,
        _server_orb: server_orb,
    }
}

/// Closed-loop capacity probe: all workers issue back-to-back against an
/// unlimited server; the measured rate is the saturation point the sweep
/// multipliers are relative to.
pub fn probe_capacity(params: &OverloadParams) -> f64 {
    let fix = fixture(params, None);
    let ior = fix
        .server
        .ior_for(BUSY_BULK_KEY, BUSY_BULK_REPO_ID)
        .expect("ior");
    let client = Orb::builder()
        .sim(fix.net.clone())
        .retry(RetryPolicy::none())
        .build();
    let calls_per_worker = 100usize;
    let skew = params.skew();
    let start = Instant::now();
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..params.workers)
            .map(|w| {
                let client = &client;
                let ior = &ior;
                let skew = &skew;
                s.spawn(move || {
                    let obj = client.resolve_private(ior).expect("resolve");
                    let payload = zc_cdr::ZcOctetSeq::with_length(params.block_bytes);
                    let mut rng = SeededRng::new(params.seed ^ (w as u64 + 1));
                    let mut done = 0u64;
                    for _ in 0..calls_per_worker {
                        let key = skew.sample(&mut rng);
                        if invoke_work(&obj, key, &payload).is_ok() {
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    total as f64 / elapsed
}

fn invoke_work(obj: &zc_orb::ObjectRef, key: u64, payload: &zc_cdr::ZcOctetSeq) -> OrbResult<u64> {
    obj.request("work")
        .arg(&key)?
        .arg(payload)?
        .invoke()?
        .result()
}

struct WorkerTally {
    ok: u64,
    late: u64,
    shed: u64,
    failed: u64,
    sojourns_ns: Vec<u64>,
    finished_at: Instant,
}

/// Run one (mode, offered-load) point.
pub fn run_point(
    params: &OverloadParams,
    mode: OverloadMode,
    offered_x: f64,
    capacity_rps: f64,
) -> OverloadPoint {
    let admission = match mode {
        OverloadMode::Seed => None,
        OverloadMode::Admission => Some(params.admission_config()),
    };
    let fix = fixture(params, admission);
    let ior = fix
        .server
        .ior_for(BUSY_BULK_KEY, BUSY_BULK_REPO_ID)
        .expect("ior");
    let client = Orb::builder()
        .sim(fix.net.clone())
        .retry(RetryPolicy::none())
        .build();

    let offered_rps = (capacity_rps * offered_x).max(1.0);
    let count = ((offered_rps * params.point_duration_s) as usize).max(params.workers);
    // Decorrelate the schedule across points without Date/rand: fold the
    // multiplier into the seed.
    let point_seed =
        params.seed ^ ((offered_x * 1000.0) as u64) ^ ((mode.label().len() as u64) << 32);
    let schedule = ArrivalSchedule::poisson(point_seed, offered_rps, count);
    let skew = params.skew();
    let keys: Vec<u64> = {
        let mut rng = SeededRng::new(point_seed.wrapping_add(1));
        (0..count).map(|_| skew.sample(&mut rng)).collect()
    };

    let deadline = Duration::from_millis(params.deadline_ms);
    // Epoch far enough out that every worker has resolved its connection
    // before the first arrival is due.
    let epoch = Instant::now() + Duration::from_millis(50);
    let next = Arc::new(AtomicUsize::new(0));
    let stop_poller = Arc::new(AtomicBool::new(false));

    // Management-lane poller: only meaningful when the data plane sheds.
    let poller = if mode == OverloadMode::Admission {
        let host = fix.server.host().to_string();
        let port = fix.server.port();
        let client = client.clone();
        let stop = Arc::clone(&stop_poller);
        Some(std::thread::spawn(move || {
            let mut ok = 0u64;
            let mut failed = 0u64;
            match TelemetryClient::connect(&client, &host, port) {
                Ok(tc) => {
                    while !stop.load(Ordering::Relaxed) {
                        match tc.ping() {
                            Ok(1) => ok += 1,
                            _ => failed += 1,
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                Err(_) => failed += 1,
            }
            (ok, failed)
        }))
    } else {
        None
    };

    let tallies: Vec<WorkerTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..params.workers)
            .map(|_| {
                let client = &client;
                let ior = &ior;
                let schedule = &schedule;
                let keys = &keys;
                let next = Arc::clone(&next);
                s.spawn(move || {
                    let obj = client.resolve_private(ior).expect("resolve");
                    let payload = zc_cdr::ZcOctetSeq::with_length(params.block_bytes);
                    let mut t = WorkerTally {
                        ok: 0,
                        late: 0,
                        shed: 0,
                        failed: 0,
                        sojourns_ns: Vec::new(),
                        finished_at: Instant::now(),
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= schedule.len() {
                            break;
                        }
                        let due = epoch + Duration::from_nanos(schedule.arrivals_ns[i]);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let outcome = invoke_work(&obj, keys[i], &payload);
                        let end = Instant::now();
                        let sojourn = end.saturating_duration_since(due);
                        match outcome {
                            Ok(_) => {
                                t.sojourns_ns.push(sojourn.as_nanos() as u64);
                                if sojourn <= deadline {
                                    t.ok += 1;
                                } else {
                                    t.late += 1;
                                }
                            }
                            Err(OrbError::System(ex)) if zc_orb::admission::is_shed(&ex) => {
                                t.shed += 1;
                            }
                            Err(_) => t.failed += 1,
                        }
                    }
                    t.finished_at = Instant::now();
                    t
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    stop_poller.store(true, Ordering::Relaxed);
    let (telemetry_pings, telemetry_failures) =
        poller.map(|h| h.join().expect("poller")).unwrap_or((0, 0));

    let metrics = fix.telemetry.metrics();
    let server_sheds = metrics.sheds.get();
    let server_brownouts = metrics.brownout_sheds.get();

    let ok: u64 = tallies.iter().map(|t| t.ok).sum();
    let late: u64 = tallies.iter().map(|t| t.late).sum();
    let shed: u64 = tallies.iter().map(|t| t.shed).sum();
    let failed: u64 = tallies.iter().map(|t| t.failed).sum();
    let wall = tallies
        .iter()
        .map(|t| t.finished_at.saturating_duration_since(epoch))
        .max()
        .unwrap_or_default()
        .as_secs_f64()
        .max(1e-9);

    let mut sojourns: Vec<u64> = tallies.into_iter().flat_map(|t| t.sojourns_ns).collect();
    sojourns.sort_unstable();
    let p99_sojourn_ms = if sojourns.is_empty() {
        0.0
    } else {
        let idx = ((sojourns.len() as f64 * 0.99) as usize).min(sojourns.len() - 1);
        sojourns[idx] as f64 / 1e6
    };

    OverloadPoint {
        mode: mode.label(),
        offered_x,
        offered_rps,
        sent: count as u64,
        ok_deadline: ok,
        late,
        shed,
        failed,
        goodput_rps: ok as f64 / wall,
        p99_sojourn_ms,
        server_sheds,
        server_brownouts,
        telemetry_pings,
        telemetry_failures,
    }
}

/// Run the full sweep: probe capacity, then every multiplier in both
/// modes (seed first). `progress` receives one line per completed point.
pub fn run_sweep(params: &OverloadParams, mut progress: impl FnMut(&str)) -> OverloadCurve {
    let capacity_rps = probe_capacity(params);
    progress(&format!(
        "probed closed-loop capacity: {capacity_rps:.0} rps ({} workers)",
        params.workers
    ));
    let mut points = Vec::new();
    for mode in [OverloadMode::Seed, OverloadMode::Admission] {
        for &x in &params.multipliers {
            let p = run_point(params, mode, x, capacity_rps);
            progress(&format!(
                "{:>9} x{:.2}: offered {:.0} rps, goodput {:.0} rps ({} ok, {} late, {} shed, {} failed)",
                p.mode, p.offered_x, p.offered_rps, p.goodput_rps, p.ok_deadline, p.late, p.shed, p.failed
            ));
            points.push(p);
        }
    }
    OverloadCurve {
        capacity_rps,
        deadline_ms: params.deadline_ms,
        block_bytes: params.block_bytes,
        workers: params.workers,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// These tests measure wall-clock timing with sleeping workers, so
    /// running them concurrently (with each other or with the rest of the
    /// lib suite's heavier tests) skews every deadline — serialize them.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn capacity_probe_is_positive() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let mut p = OverloadParams::smoke(7);
        p.workers = 2;
        p.hot_service_us = 100;
        let cap = probe_capacity(&p);
        assert!(cap > 0.0, "capacity {cap}");
    }

    #[test]
    fn overload_point_sheds_under_admission_and_keeps_telemetry_alive() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let params = OverloadParams::smoke(11);
        // Past saturation with a bounded budget: sheds must appear, the
        // reserved lane must answer, and nothing may fail outright.
        let cap = probe_capacity(&params);
        let p = run_point(&params, OverloadMode::Admission, 2.0, cap);
        assert!(p.shed > 0, "no client-visible sheds: {p:?}");
        assert!(p.server_sheds > 0, "no server-side sheds: {p:?}");
        assert_eq!(p.failed, 0, "unexpected hard failures: {p:?}");
        assert!(p.telemetry_pings > 0, "management lane never answered");
        assert_eq!(p.telemetry_failures, 0, "management lane failed: {p:?}");
        assert_eq!(
            p.sent,
            p.ok_deadline + p.late + p.shed + p.failed,
            "classification must partition the schedule"
        );
    }

    #[test]
    fn admission_plateaus_where_seed_collapses() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let params = OverloadParams::smoke(23);
        let curve = run_sweep(&params, |_| {});
        // The admission curve must retain most of its peak past
        // saturation; the seed curve must retain clearly less. Thresholds
        // are looser than BENCH_PR8's (0.8) to keep CI unflaky.
        let adm = curve.plateau_ratio(OverloadMode::Admission);
        let seed = curve.plateau_ratio(OverloadMode::Seed);
        assert!(adm > 0.5, "admission plateau ratio {adm:.2}");
        assert!(
            seed < adm,
            "seed ({seed:.2}) should collapse harder than admission ({adm:.2})"
        );
        assert!(curve.total_sheds() > 0, "sweep never shed");
        assert!(curve.telemetry_alive(), "management lane went dark");
        // JSON renders and mentions both modes.
        let json = curve.to_json();
        assert!(json.contains("\"seed\"") && json.contains("\"admission\""));
        assert!(json.contains("telemetry_alive"));
    }
}
