//! The shared §5.2 reporter: one consistent rendering of the
//! stage-latency × copy-accounting breakdown, used by every harness
//! binary (text and `--json` views alike).
//!
//! "We instrumented the ORB source code to pinpoint the sources of this
//! overhead." — the breakdown joins three accounts of the same requests:
//!
//! 1. the **request-span stage clocks** (`zc_trace::Stage`) measured on
//!    this host;
//! 2. the **copy-meter bytes** per [`CopyLayer`];
//! 3. the **modeled stage budget** on the calibrated P-II testbed
//!    ([`zc_simnet::stage_budget`]).
//!
//! Columns are the paper's three ORB configurations: the standard ORB on
//! the standard stack, the zero-copy ORB on the standard stack ("ZC
//! marshal only" — the marshal loop is gone but the socket still copies),
//! and the all-zero-copy combination.

use std::fmt::Write as _;

use zc_buffers::{CopyLayer, CopySnapshot};
use zc_simnet::{stage_budget, Scenario, StageBudget};
use zc_trace::{HistogramSnapshot, Stage, StageSnapshots};
use zc_ttcp::{run_measured, LatencyStats, Series, TtcpParams, TtcpTransport, TtcpVersion};

/// The three §5.2 columns, in paper order.
pub const BREAKDOWN_CONFIGS: [(TtcpVersion, &str); 3] = [
    (TtcpVersion::CorbaStd, "standard"),
    (TtcpVersion::CorbaZcOverTcp, "zc-marshal-only"),
    (TtcpVersion::CorbaZc, "all-zc"),
];

/// Copy layers shown in the breakdown, in data-path order.
pub const BREAKDOWN_COPY_LAYERS: [CopyLayer; 7] = [
    CopyLayer::Marshal,
    CopyLayer::SocketSend,
    CopyLayer::KernelFrag,
    CopyLayer::KernelDefrag,
    CopyLayer::SocketRecv,
    CopyLayer::Demarshal,
    CopyLayer::DepositFallback,
];

/// One measured+modeled column of the breakdown table.
#[derive(Debug, Clone)]
pub struct BreakdownColumn {
    /// Which TTCP version this column ran.
    pub version: TtcpVersion,
    /// Short config name (`standard` / `zc-marshal-only` / `all-zc`).
    pub config: &'static str,
    /// Measured goodput on this host.
    pub mbit_s: f64,
    /// Overhead bytes copied per payload byte.
    pub overhead_copy_factor: f64,
    /// Receive-speculation hit rate (zero-copy stack only).
    pub spec_hit_rate: f64,
    /// Per-stage latency histograms from the request spans.
    pub stages: StageSnapshots,
    /// Data-block wire flight time.
    pub data_wire_ns: HistogramSnapshot,
    /// Copy-meter delta over the timed section.
    pub copies: CopySnapshot,
    /// Modeled per-stage seconds for one block on the paper testbed.
    pub modeled: StageBudget,
}

/// The full breakdown: three columns over one block size.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Payload bytes per request.
    pub block_bytes: usize,
    /// Total payload moved per column.
    pub total_bytes: usize,
    /// Substrate the measured runs used.
    pub transport: TtcpTransport,
    /// One column per configuration of [`BREAKDOWN_CONFIGS`].
    pub columns: Vec<BreakdownColumn>,
}

/// Run the three configurations traced and collect the joined breakdown.
pub fn run_breakdown(
    block_bytes: usize,
    total_bytes: usize,
    transport: TtcpTransport,
) -> Breakdown {
    let columns = BREAKDOWN_CONFIGS
        .iter()
        .map(|&(version, config)| {
            let mut p = TtcpParams::new(version, block_bytes, total_bytes);
            p.transport = transport;
            p.traced = true;
            let out = run_measured(&p);
            let t = out.telemetry.expect("traced run produces telemetry");
            let (socket, orb) = version.to_modes();
            BreakdownColumn {
                version,
                config,
                mbit_s: out.mbit_s,
                overhead_copy_factor: out.overhead_copy_factor,
                spec_hit_rate: t.spec_hit_rate(),
                stages: t.metrics.stage_ns,
                data_wire_ns: t.metrics.data_wire_ns,
                copies: out.copies,
                modeled: stage_budget(&Scenario::on_testbed(socket, orb, block_bytes)),
            }
        })
        .collect();
    Breakdown {
        block_bytes,
        total_bytes,
        transport,
        columns,
    }
}

fn transport_name(t: TtcpTransport) -> &'static str {
    match t {
        TtcpTransport::Sim => "sim",
        TtcpTransport::Tcp => "tcp",
    }
}

/// Render the breakdown as an aligned text table: stage rows (p50 µs per
/// request), then copy-meter bytes per payload byte, then the modeled
/// per-block budget.
pub fn render_breakdown_text(b: &Breakdown) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## §5.2 overhead breakdown — {} blocks, {} total, {} transport\n",
        zc_ttcp::report::human_size(b.block_bytes),
        zc_ttcp::report::human_size(b.total_bytes),
        transport_name(b.transport),
    );
    let _ = write!(out, "{:<24}", "");
    for c in &b.columns {
        let _ = write!(out, "{:>18}", c.config);
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "-- measured stage p50 (µs/request) --");
    for stage in Stage::ALL {
        if b.columns.iter().all(|c| c.stages.get(stage).count == 0) {
            continue;
        }
        let _ = write!(out, "{:<24}", stage.name());
        for c in &b.columns {
            let h = c.stages.get(stage);
            if h.count == 0 {
                let _ = write!(out, "{:>18}", "-");
            } else {
                let _ = write!(out, "{:>18.1}", h.quantile(0.5) as f64 / 1e3);
            }
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<24}", "data wire (p50 µs)");
    for c in &b.columns {
        if c.data_wire_ns.count == 0 {
            let _ = write!(out, "{:>18}", "-");
        } else {
            let _ = write!(out, "{:>18.1}", c.data_wire_ns.quantile(0.5) as f64 / 1e3);
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "-- copy-meter bytes per payload byte --");
    let payload = b.total_bytes as f64;
    for layer in BREAKDOWN_COPY_LAYERS {
        if b.columns.iter().all(|c| c.copies.bytes(layer) == 0) {
            continue;
        }
        let _ = write!(out, "{:<24}", layer.name());
        for c in &b.columns {
            let _ = write!(out, "{:>18.3}", c.copies.bytes(layer) as f64 / payload);
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "-- summary --");
    let _ = write!(out, "{:<24}", "goodput (Mbit/s)");
    for c in &b.columns {
        let _ = write!(out, "{:>18.1}", c.mbit_s);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<24}", "copy factor (×payload)");
    for c in &b.columns {
        let _ = write!(out, "{:>18.3}", c.overhead_copy_factor);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<24}", "spec hit rate");
    for c in &b.columns {
        let _ = write!(out, "{:>18.3}", c.spec_hit_rate);
    }
    let _ = writeln!(out);

    let _ = writeln!(out, "-- modeled per-block budget (ms, P-II 400 / GbE) --");
    for (name, pick) in MODELED_ROWS {
        let _ = write!(out, "{:<24}", name);
        for c in &b.columns {
            let _ = write!(out, "{:>18.3}", pick(&c.modeled) * 1e3);
        }
        let _ = writeln!(out);
    }
    out
}

type BudgetPick = fn(&StageBudget) -> f64;

/// The modeled rows, in causal order (names match the JSON keys).
pub const MODELED_ROWS: [(&str, BudgetPick); 7] = [
    ("marshal", |m| m.marshal_s),
    ("send-copy", |m| m.send_copy_s),
    ("wire", |m| m.wire_s),
    ("recv-copy", |m| m.recv_copy_s),
    ("demarshal", |m| m.demarshal_s),
    ("fixed", |m| m.fixed_s),
    ("total", |m| m.total()),
];

/// Render one breakdown column as a JSON object (used both by
/// `--json` binaries and the trajectory file).
pub fn breakdown_column_json(c: &BreakdownColumn, payload_bytes: usize) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"config\":\"{}\",\"version\":\"{}\",\"mbit_s\":{:.3},\
         \"overhead_copy_factor\":{:.4},\"spec_hit_rate\":{:.4},\"stages\":[",
        c.config,
        json_escape(c.version.label()),
        c.mbit_s,
        c.overhead_copy_factor,
        c.spec_hit_rate
    );
    let mut first = true;
    for (stage, h) in c.stages.iter() {
        if h.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"stage\":\"{}\",\"count\":{},\"mean_ns\":{:.0},\"p50_ns\":{},\"p99_ns\":{}}}",
            stage.name(),
            h.count,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99)
        );
    }
    out.push_str("],\"copy_bytes\":{");
    let mut first = true;
    for layer in BREAKDOWN_COPY_LAYERS {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", layer.name(), c.copies.bytes(layer));
    }
    let _ = write!(out, "}},\"payload_bytes\":{payload_bytes}");
    let w = &c.data_wire_ns;
    if w.count > 0 {
        let _ = write!(
            out,
            ",\"data_wire_ns\":{{\"count\":{},\"mean_ns\":{:.0},\"p50_ns\":{},\"p99_ns\":{}}}",
            w.count,
            w.mean(),
            w.quantile(0.5),
            w.quantile(0.99)
        );
    }
    if c.data_wire_ns.count != 0 {
        let _ = write!(
            out,
            ",\"data_wire_p50_ns\":{},\"data_wire_p99_ns\":{}",
            c.data_wire_ns.quantile(0.5),
            c.data_wire_ns.quantile(0.99)
        );
    }
    out.push_str(",\"modeled_ms\":{");
    let mut first = true;
    for (name, pick) in MODELED_ROWS {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{:.6}", name, pick(&c.modeled) * 1e3);
    }
    out.push_str("}}");
    out
}

/// Render the whole breakdown as one JSON object.
pub fn render_breakdown_json(b: &Breakdown) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"block_bytes\":{},\"total_bytes\":{},\"transport\":\"{}\",\"columns\":[",
        b.block_bytes,
        b.total_bytes,
        transport_name(b.transport)
    );
    for (i, c) in b.columns.iter().enumerate() {
        if i != 0 {
            out.push(',');
        }
        out.push_str(&breakdown_column_json(c, b.total_bytes));
    }
    out.push_str("]}");
    out
}

/// Render a figure series set as one JSON object (the `--json` view of
/// [`zc_ttcp::format_series_table`]).
pub fn series_json(title: &str, sizes: &[usize], series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"title\":\"{}\",\"block_bytes\":{:?},\"series\":[",
        json_escape(title),
        sizes
    );
    for (i, s) in series.iter().enumerate() {
        if i != 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"mbit_s\":[", json_escape(&s.name));
        for (j, v) in s.values.iter().enumerate() {
            if j != 0 {
                out.push(',');
            }
            let _ = write!(out, "{v:.3}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Render one latency measurement as a JSON object.
pub fn latency_json(version: TtcpVersion, msg_bytes: usize, s: &LatencyStats) -> String {
    format!(
        "{{\"version\":\"{}\",\"msg_bytes\":{},\"rounds\":{},\"min_us\":{:.2},\
         \"p50_us\":{:.2},\"p90_us\":{:.2},\"p99_us\":{:.2},\"max_us\":{:.2},\"mean_us\":{:.2}}}",
        json_escape(version.label()),
        msg_bytes,
        s.rounds,
        s.min_us,
        s.p50_us,
        s.p90_us,
        s.p99_us,
        s.max_us,
        s.mean_us
    )
}

/// Print a telemetry snapshot in the shared format: JSON lines under
/// `--json`, the aligned text table (with the request-span stage section)
/// otherwise.
pub fn print_telemetry(label: &str, t: &zc_trace::OrbTelemetry, json: bool) {
    if json {
        print!("{}", t.json_lines());
    } else {
        println!("\n{label}:");
        print!("{}", t.text_table());
    }
}

/// The common `--json` flag: every harness binary switches its report
/// format with it.
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Escape a string for embedding in JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shows_copy_stages_collapsing() {
        let b = run_breakdown(256 << 10, 2 << 20, TtcpTransport::Sim);
        assert_eq!(b.columns.len(), 3);
        let std_col = &b.columns[0];
        let zc_col = &b.columns[2];
        // CDR marshal bytes shrink to ~0 in the all-ZC column…
        assert!(std_col.copies.bytes(CopyLayer::Marshal) > 0);
        assert_eq!(zc_col.copies.bytes(CopyLayer::Marshal), 0);
        // …and the socket copies shrink to control-header dust (the bulk
        // payload crosses by reference; only small GIOP headers are copied).
        assert!(std_col.copies.bytes(CopyLayer::SocketSend) >= b.total_bytes as u64);
        assert!(zc_col.copies.bytes(CopyLayer::SocketSend) < (b.total_bytes / 100) as u64);
        // Stage clocks exist for both columns.
        assert!(std_col.stages.get(Stage::ClientMarshal).count > 0);
        assert!(zc_col.stages.get(Stage::ClientMarshal).count > 0);
        // Renderings carry the key sections.
        let text = render_breakdown_text(&b);
        assert!(text.contains("measured stage p50"));
        assert!(text.contains("copy-meter bytes"));
        assert!(text.contains("modeled per-block budget"));
        let json = render_breakdown_json(&b);
        assert!(json.contains("\"config\":\"standard\""));
        assert!(json.contains("\"config\":\"all-zc\""));
        assert!(json.contains("\"stage\":\"marshal\""));
        assert!(json.contains("\"modeled_ms\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn series_json_shape() {
        let s = series_json("T", &[1024, 2048], &[Series::new("raw", vec![1.0, 2.0])]);
        assert!(s.contains("\"title\":\"T\""));
        assert!(s.contains("\"mbit_s\":[1.000,2.000]"));
    }
}
