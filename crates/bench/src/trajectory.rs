//! The continuous benchmark trajectory: schema-versioned `BENCH_*.json`
//! snapshots plus regression gates against the newest prior snapshot.
//!
//! Every PR appends one point to the trajectory (e.g. `BENCH_PR4.json` at
//! the repo root, archived under `docs/results/`). The `bench_json` binary
//! regenerates the current point, discovers the newest prior `BENCH_*.json`
//! as a baseline and prints a verdict:
//!
//! * a **measured goodput** drop of more than 10 % on any matching
//!   (version, transport, block size) point fails the gate;
//! * a **p99 stage latency** growth of more than 25 % on any matching
//!   (config, stage) cell of the §5.2 breakdown fails the gate.
//!
//! The workspace deliberately carries no serde; the schema is flat enough
//! that a small recursive-descent JSON reader (below) covers everything the
//! comparison needs.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::report::{breakdown_column_json, json_escape, latency_json, Breakdown};
use zc_ttcp::{LatencyStats, TtcpVersion};

/// Schema identifier written into (and required from) every snapshot.
pub const SCHEMA: &str = "zcorba-bench/v1";

/// Goodput gate: fail when measured Mbit/s drops below `1 - 0.10` of the
/// baseline on any matching point.
pub const GOODPUT_DROP_GATE: f64 = 0.10;

/// Stage-latency gate: fail when p99 grows past `1 + 0.25` of baseline.
pub const STAGE_P99_GROWTH_GATE: f64 = 0.25;

/// Absolute slack under the stage gate: a cell only fails when the p99
/// also grew by more than this many nanoseconds. Sub-100µs stages on a
/// shared host flap by multiples of themselves between identical runs;
/// the relative gate alone would cry wolf on scheduling noise.
pub const STAGE_P99_ABS_SLACK_NS: f64 = 50_000.0;

/// Stage cells with fewer samples than this on either side are skipped by
/// the gate (smoke runs are noisy at the tail).
pub const MIN_STAGE_SAMPLES: u64 = 8;

/// Overload gate: the admission-mode goodput at the highest offered load
/// must retain at least this fraction of the mode's peak ("no collapse
/// past saturation"). Applies to the *current* snapshot only — the curve
/// is a property of the point, not a diff against the baseline.
pub const OVERLOAD_PLATEAU_GATE: f64 = 0.80;

/// Relaxed plateau gate for `--smoke` snapshots (two sub-second points on
/// a shared CI host flap more than the full sweep).
pub const OVERLOAD_PLATEAU_GATE_SMOKE: f64 = 0.50;

// ---------------------------------------------------------------------------
// Snapshot assembly and emission
// ---------------------------------------------------------------------------

/// One goodput point of the sweep.
#[derive(Debug, Clone)]
pub struct GoodputPoint {
    /// TTCP version label.
    pub version: TtcpVersion,
    /// Substrate name (`sim` / `tcp`).
    pub transport: &'static str,
    /// Payload bytes per block.
    pub block_bytes: usize,
    /// Calibrated-testbed prediction, Mbit/s.
    pub modeled_mbit_s: f64,
    /// Measured on this host, Mbit/s.
    pub measured_mbit_s: f64,
    /// Overhead bytes copied per payload byte.
    pub overhead_copy_factor: f64,
    /// Receive-speculation hit rate.
    pub spec_hit_rate: f64,
}

/// One latency measurement.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// TTCP version label.
    pub version: TtcpVersion,
    /// Message bytes per round trip.
    pub msg_bytes: usize,
    /// Percentile summary.
    pub stats: LatencyStats,
}

/// Everything one trajectory point records.
#[derive(Debug, Clone)]
pub struct TrajectorySnapshot {
    /// Short label of the point (e.g. `PR4`).
    pub label: String,
    /// Whether this was a `--smoke` (reduced) run.
    pub smoke: bool,
    /// Unix time of generation, milliseconds.
    pub generated_unix_ms: u128,
    /// Goodput sweep.
    pub goodput: Vec<GoodputPoint>,
    /// Latency points.
    pub latency: Vec<LatencyPoint>,
    /// The §5.2 breakdown (three configs over one block size).
    pub breakdown: Breakdown,
    /// The overload goodput-vs-offered-load curve (absent on points that
    /// predate admission control; `compare` treats a missing section as a
    /// note, not a failure).
    pub overload: Option<crate::overload::OverloadCurve>,
}

impl TrajectorySnapshot {
    /// Serialize to the `zcorba-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"label\": \"{}\",\n  \"smoke\": {},\n  \
             \"generated_unix_ms\": {},\n  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}, \"load1\": {:.2}}},\n",
            json_escape(&self.label),
            self.smoke,
            self.generated_unix_ms,
            std::env::consts::OS,
            std::env::consts::ARCH,
            std::thread::available_parallelism().map_or(0, |n| n.get()),
            host_load1(),
        );
        out.push_str("  \"goodput\": [\n");
        for (i, g) in self.goodput.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                goodput_json(g),
                if i + 1 == self.goodput.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"latency\": [\n");
        for (i, l) in self.latency.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                latency_json(l.version, l.msg_bytes, &l.stats),
                if i + 1 == self.latency.len() { "" } else { "," }
            );
        }
        let _ = write!(
            out,
            "  ],\n  \"breakdown\": {{\"block_bytes\": {}, \"total_bytes\": {}, \"columns\": [\n",
            self.breakdown.block_bytes, self.breakdown.total_bytes
        );
        for (i, c) in self.breakdown.columns.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                breakdown_column_json(c, self.breakdown.total_bytes),
                if i + 1 == self.breakdown.columns.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        out.push_str("  ]}");
        if let Some(curve) = &self.overload {
            // Re-indent the curve's own pretty-printed object two spaces
            // so the document stays readable.
            out.push_str(",\n  \"overload\": ");
            out.push_str(&curve.to_json().replace('\n', "\n  "));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Render one goodput point as a JSON object (shared by the trajectory
/// document and the `--json` sweep view).
pub fn goodput_json(g: &GoodputPoint) -> String {
    format!(
        "{{\"version\": \"{}\", \"transport\": \"{}\", \"block_bytes\": {}, \
         \"modeled_mbit_s\": {:.3}, \"measured_mbit_s\": {:.3}, \
         \"overhead_copy_factor\": {:.4}, \"spec_hit_rate\": {:.4}}}",
        json_escape(g.version.label()),
        g.transport,
        g.block_bytes,
        g.modeled_mbit_s,
        g.measured_mbit_s,
        g.overhead_copy_factor,
        g.spec_hit_rate,
    )
}

/// The host's 1-minute load average (`/proc/loadavg` first field); 0.0
/// where unavailable. Recorded into every snapshot's `host` section so a
/// later comparison can tell "this point was taken on a busy box" from a
/// real regression.
pub fn host_load1() -> f64 {
    std::fs::read_to_string("/proc/loadavg")
        .ok()
        .and_then(|s| s.split_whitespace().next().and_then(|f| f.parse().ok()))
        .unwrap_or(0.0)
}

/// Milliseconds since the Unix epoch (0 when the clock is unavailable).
pub fn unix_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (baseline side)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Only what the baseline comparison needs: no escape
/// decoding beyond the common sequences, numbers as `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline discovery and the regression gates
// ---------------------------------------------------------------------------

/// Find the newest prior `BENCH_*.json` in `dir`, excluding `exclude`
/// (the file about to be written). "Newest" is the highest numeric suffix
/// (`BENCH_PR10.json` beats `BENCH_PR4.json`); ties and unnumbered names
/// fall back to lexicographic order.
pub fn find_baseline(dir: &Path, exclude: &Path) -> Option<PathBuf> {
    let mut best: Option<(u64, String, PathBuf)> = None;
    let entries = std::fs::read_dir(dir).ok()?;
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        if path.file_name() == exclude.file_name() {
            continue;
        }
        let num = name
            .chars()
            .filter(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse::<u64>()
            .unwrap_or(0);
        let candidate = (num, name, path);
        best = match best {
            None => Some(candidate),
            Some(b) if (candidate.0, &candidate.1) > (b.0, &b.1) => Some(candidate),
            some => some,
        };
    }
    best.map(|(_, _, p)| p)
}

/// One regression found by the gates.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Which gate fired (`goodput` / `stage-p99`).
    pub gate: &'static str,
    /// The point that regressed, human readable.
    pub what: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Advisory only: the two snapshots came from mismatched hosts (os,
    /// arch, or cpu count differ), so an apparent host-sensitive
    /// regression cannot be trusted. Advisory cells are rendered and
    /// counted but do not fail the verdict.
    pub advisory: bool,
}

/// The verdict of comparing a current snapshot (as JSON) to a baseline.
#[derive(Debug, Clone, Default)]
pub struct Verdict {
    /// Points compared by the goodput gate.
    pub goodput_points: usize,
    /// Cells compared by the stage gate.
    pub stage_cells: usize,
    /// Every gate violation.
    pub regressions: Vec<Regression>,
    /// Non-fatal notes (schema mismatch, missing sections…).
    pub notes: Vec<String>,
}

impl Verdict {
    /// Whether all gates passed. Advisory regressions (host-mismatched
    /// comparisons) never fail the verdict; they are surfaced for a human.
    pub fn passed(&self) -> bool {
        self.regressions.iter().all(|r| r.advisory)
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "regression gates: {} goodput points, {} stage cells compared",
            self.goodput_points, self.stage_cells
        );
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "  {} [{}] {}: baseline {:.1} -> current {:.1}",
                if r.advisory { "ADVISORY" } else { "FAIL" },
                r.gate,
                r.what,
                r.baseline,
                r.current
            );
        }
        let advisories = self.regressions.iter().filter(|r| r.advisory).count();
        let _ = writeln!(
            out,
            "verdict: {}{}",
            if self.passed() { "PASS" } else { "FAIL" },
            if self.passed() && advisories > 0 {
                " (with host-mismatch advisories)"
            } else {
                ""
            }
        );
        out
    }
}

fn goodput_key(point: &Json) -> Option<(String, String, u64)> {
    Some((
        point.get("version")?.as_str()?.to_string(),
        point.get("transport")?.as_str()?.to_string(),
        point.get("block_bytes")?.as_f64()? as u64,
    ))
}

/// Compare two parsed `zcorba-bench/v1` documents and apply the gates.
pub fn compare(current: &Json, baseline: &Json) -> Verdict {
    let mut v = Verdict::default();
    for (doc, side) in [(current, "current"), (baseline, "baseline")] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => v.notes.push(format!(
                "{side} schema is {other:?}, expected {SCHEMA:?}; comparing best-effort"
            )),
        }
    }
    if current.get("smoke") != baseline.get("smoke") {
        v.notes.push(
            "smoke flag differs between current and baseline; absolute numbers may shift"
                .to_string(),
        );
    }
    // Host context: absolute throughput and latency only compare cleanly
    // between like machines. On a mismatch (os/arch/cpu count), gate
    // violations are demoted to advisory — reported, never fatal. Load
    // average is recorded for the human reading the advisory but does not
    // itself demote (every box has *some* load).
    let host = |doc: &Json, key: &str| {
        doc.get("host")
            .and_then(|h| h.get(key))
            .cloned()
            .unwrap_or(Json::Null)
    };
    let host_mismatch = ["os", "arch", "cpus"]
        .iter()
        .any(|k| host(current, k) != host(baseline, k));
    if host_mismatch {
        v.notes.push(format!(
            "host mismatch (os/arch/cpus differ; load1 current {:.2}, baseline {:.2}): \
             gate violations below are advisory",
            host(current, "load1").as_f64().unwrap_or(0.0),
            host(baseline, "load1").as_f64().unwrap_or(0.0),
        ));
    }

    // Gate 1: measured goodput per (version, transport, block) point.
    let cur_points = current.get("goodput").and_then(Json::as_arr).unwrap_or(&[]);
    let base_points = baseline
        .get("goodput")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for cp in cur_points {
        let Some(key) = goodput_key(cp) else { continue };
        let Some(bp) = base_points
            .iter()
            .find(|p| goodput_key(p).as_ref() == Some(&key))
        else {
            continue;
        };
        let (Some(cur), Some(base)) = (
            cp.get("measured_mbit_s").and_then(Json::as_f64),
            bp.get("measured_mbit_s").and_then(Json::as_f64),
        ) else {
            continue;
        };
        v.goodput_points += 1;
        if base > 0.0 && cur < base * (1.0 - GOODPUT_DROP_GATE) {
            v.regressions.push(Regression {
                gate: "goodput",
                what: format!("{} / {} / {} B", key.0, key.1, key.2),
                baseline: base,
                current: cur,
                advisory: host_mismatch,
            });
        }
    }

    // Gate 2: p99 stage latency per (config, stage) breakdown cell.
    fn columns(doc: &Json) -> &[Json] {
        doc.get("breakdown")
            .and_then(|b| b.get("columns"))
            .and_then(Json::as_arr)
            .unwrap_or(&[])
    }
    fn stages(col: &Json) -> &[Json] {
        col.get("stages").and_then(Json::as_arr).unwrap_or(&[])
    }
    for cc in columns(current) {
        let Some(config) = cc.get("config").and_then(Json::as_str) else {
            continue;
        };
        let Some(bc) = columns(baseline)
            .iter()
            .find(|c| c.get("config").and_then(Json::as_str) == Some(config))
        else {
            continue;
        };
        for cs in stages(cc) {
            let Some(stage) = cs.get("stage").and_then(Json::as_str) else {
                continue;
            };
            let Some(bs) = stages(bc)
                .iter()
                .find(|s| s.get("stage").and_then(Json::as_str) == Some(stage))
            else {
                continue;
            };
            let counts_ok = [cs, bs].iter().all(|s| {
                s.get("count")
                    .and_then(Json::as_f64)
                    .is_some_and(|c| c as u64 >= MIN_STAGE_SAMPLES)
            });
            if !counts_ok {
                continue;
            }
            let (Some(cur), Some(base)) = (
                cs.get("p99_ns").and_then(Json::as_f64),
                bs.get("p99_ns").and_then(Json::as_f64),
            ) else {
                continue;
            };
            v.stage_cells += 1;
            if base > 0.0
                && cur > base * (1.0 + STAGE_P99_GROWTH_GATE)
                && cur - base > STAGE_P99_ABS_SLACK_NS
            {
                v.regressions.push(Regression {
                    gate: "stage-p99",
                    what: format!("{config} / {stage}"),
                    baseline: base,
                    current: cur,
                    advisory: host_mismatch,
                });
            }
        }
    }

    // Gate 3: overload plateau on the current snapshot. Admission-mode
    // goodput past saturation must not collapse relative to its own peak.
    match current.get("overload") {
        None => v
            .notes
            .push("current snapshot has no overload section".to_string()),
        Some(section) => {
            let smoke = current.get("smoke") == Some(&Json::Bool(true));
            let gate = if smoke {
                OVERLOAD_PLATEAU_GATE_SMOKE
            } else {
                OVERLOAD_PLATEAU_GATE
            };
            if let Some(ratio) = section
                .get("admission_plateau_ratio")
                .and_then(Json::as_f64)
            {
                if ratio < gate {
                    v.regressions.push(Regression {
                        gate: "overload-plateau",
                        what: "admission goodput at max offered load / peak".to_string(),
                        baseline: gate,
                        current: ratio,
                        // A property of the current snapshot alone: host
                        // mismatch with the baseline is irrelevant.
                        advisory: false,
                    });
                }
            }
            if section
                .get("total_sheds")
                .and_then(Json::as_f64)
                .is_some_and(|s| s == 0.0)
            {
                v.notes
                    .push("overload sweep recorded zero sheds (gate never fired?)".to_string());
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_the_shapes_we_emit() {
        let doc = r#"{"schema": "zcorba-bench/v1", "smoke": true,
            "goodput": [{"version": "raw TCP", "transport": "sim",
                         "block_bytes": 65536, "measured_mbit_s": 120.5}],
            "breakdown": {"columns": [
              {"config": "standard",
               "stages": [{"stage": "marshal", "count": 16, "p99_ns": 1000}]}]},
            "esc": "a\"b\\cA"}"#;
        let j = parse_json(doc).unwrap();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(j.get("smoke"), Some(&Json::Bool(true)));
        let g = &j.get("goodput").unwrap().as_arr().unwrap()[0];
        assert_eq!(g.get("block_bytes").unwrap().as_f64(), Some(65536.0));
        assert_eq!(j.get("esc").unwrap().as_str(), Some("a\"b\\cA"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
        assert!(parse_json("\"open").is_err());
    }

    fn doc(goodput: f64, p99: f64) -> Json {
        let text = format!(
            r#"{{"schema": "zcorba-bench/v1", "smoke": false,
                "goodput": [{{"version": "CORBA std", "transport": "sim",
                              "block_bytes": 65536, "measured_mbit_s": {goodput}}}],
                "breakdown": {{"columns": [
                  {{"config": "standard",
                    "stages": [{{"stage": "marshal", "count": 100, "p99_ns": {p99}}}]}}]}}}}"#
        );
        parse_json(&text).unwrap()
    }

    #[test]
    fn gates_pass_within_tolerance() {
        let v = compare(&doc(95.0, 1100000.0), &doc(100.0, 1000000.0));
        assert_eq!(v.goodput_points, 1);
        assert_eq!(v.stage_cells, 1);
        assert!(v.passed(), "{}", v.render());
    }

    #[test]
    fn goodput_gate_fires_past_ten_percent() {
        let v = compare(&doc(89.0, 1000000.0), &doc(100.0, 1000000.0));
        assert!(!v.passed());
        assert_eq!(v.regressions[0].gate, "goodput");
    }

    #[test]
    fn stage_gate_fires_past_twentyfive_percent() {
        let v = compare(&doc(100.0, 1300000.0), &doc(100.0, 1000000.0));
        assert!(!v.passed());
        assert_eq!(v.regressions[0].gate, "stage-p99");
        assert!(v.render().contains("FAIL [stage-p99] standard / marshal"));
    }

    /// A real regression measured across different machines is demoted to
    /// advisory: reported in the render, but never fatal.
    #[test]
    fn host_mismatch_demotes_regressions_to_advisory() {
        fn with_host(mut d: Json, cpus: f64) -> Json {
            let Json::Obj(members) = &mut d else {
                unreachable!()
            };
            members.push((
                "host".to_string(),
                Json::Obj(vec![
                    ("os".to_string(), Json::Str("linux".to_string())),
                    ("arch".to_string(), Json::Str("x86_64".to_string())),
                    ("cpus".to_string(), Json::Num(cpus)),
                    ("load1".to_string(), Json::Num(7.5)),
                ]),
            ));
            d
        }
        // Same failure as goodput_gate_fires_past_ten_percent, but the
        // snapshots disagree on cpu count.
        let cur = with_host(doc(89.0, 1400000.0), 4.0);
        let base = with_host(doc(100.0, 1000000.0), 64.0);
        let v = compare(&cur, &base);
        assert_eq!(v.regressions.len(), 2, "{}", v.render());
        assert!(v.regressions.iter().all(|r| r.advisory));
        assert!(v.passed(), "advisory must not fail: {}", v.render());
        assert!(v.render().contains("ADVISORY [goodput]"), "{}", v.render());
        assert!(v.render().contains("host mismatch"), "{}", v.render());
        assert!(v.render().contains("PASS (with host-mismatch advisories)"));

        // Matching hosts: the same numbers fail for real.
        let v = compare(&with_host(doc(89.0, 1400000.0), 64.0), &base);
        assert!(!v.passed());
        assert!(v.regressions.iter().all(|r| !r.advisory));
    }

    #[test]
    fn snapshot_records_host_context() {
        let snap = TrajectorySnapshot {
            label: "TEST".to_string(),
            smoke: true,
            generated_unix_ms: 0,
            goodput: Vec::new(),
            latency: Vec::new(),
            breakdown: Breakdown {
                block_bytes: 0,
                total_bytes: 0,
                transport: zc_ttcp::TtcpTransport::Sim,
                columns: Vec::new(),
            },
            overload: None,
        };
        let j = parse_json(&snap.to_json()).unwrap();
        let host = j.get("host").expect("host section");
        assert!(host.get("cpus").and_then(Json::as_f64).is_some());
        assert!(
            host.get("load1").and_then(Json::as_f64).is_some(),
            "host section must record the 1-minute load average"
        );
    }

    #[test]
    fn low_sample_cells_are_skipped() {
        let a = parse_json(
            r#"{"schema": "zcorba-bench/v1", "smoke": false, "goodput": [],
                "breakdown": {"columns": [{"config": "standard",
                  "stages": [{"stage": "marshal", "count": 2, "p99_ns": 9000}]}]}}"#,
        )
        .unwrap();
        let v = compare(&a, &doc(100.0, 1000000.0));
        assert_eq!(v.stage_cells, 0);
        assert!(v.passed());
    }

    #[test]
    fn baseline_discovery_prefers_highest_number() {
        let dir = std::env::temp_dir().join("zc-bench-traj-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_PR4.json", "BENCH_PR10.json", "BENCH_PR7.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        std::fs::write(dir.join("not-a-bench.json"), "{}").unwrap();
        let found = find_baseline(&dir, &dir.join("BENCH_PR11.json")).unwrap();
        assert_eq!(
            found.file_name().unwrap().to_str().unwrap(),
            "BENCH_PR10.json"
        );
        // The file being written never baselines itself.
        let found = find_baseline(&dir, &dir.join("BENCH_PR10.json")).unwrap();
        assert_eq!(
            found.file_name().unwrap().to_str().unwrap(),
            "BENCH_PR7.json"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
