//! Closed-form pipeline model.
//!
//! A transfer of one block streams frames through three resources in
//! tandem: sender CPU → link → receiver CPU. In steady state the pipeline
//! runs at the pace of its slowest stage; fixed per-block work (syscalls,
//! ORB request handling, and — for the synchronous CORBA workloads — the
//! request/reply round trip) adds a latency term that dominates for small
//! blocks and amortizes away for large ones. That is precisely the rising,
//! saturating shape of the paper's Figures 5 and 6.

use crate::{OrbMode, Scenario, SocketMode};

/// The decomposed costs of moving one block in a scenario. All times in
/// seconds. Exposed so the experiment harnesses can print breakdowns
/// (the §5.2 instrumentation table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCosts {
    /// Sender CPU time proportional to bytes (copies + marshal + per-frame).
    pub send_cpu_per_byte: f64,
    /// Receiver CPU time proportional to bytes.
    pub recv_cpu_per_byte: f64,
    /// Wire time per byte (framing overhead included).
    pub wire_per_byte: f64,
    /// Fixed sender CPU per block (syscalls, request marshaling).
    pub send_cpu_fixed: f64,
    /// Fixed receiver CPU per block (dispatch, allocation).
    pub recv_cpu_fixed: f64,
    /// Fixed non-overlappable latency per block (RPC round trip); zero for
    /// streaming workloads.
    pub rpc_fixed: f64,
}

/// How many times each payload byte is copied on the send side.
pub fn send_copies(socket: SocketMode) -> f64 {
    match socket {
        // write() into the socket pool + fragmentation with header insert
        SocketMode::Copying => 2.0,
        SocketMode::ZeroCopy => 0.0,
    }
}

/// How many times each payload byte is copied on the receive side.
pub fn recv_copies(socket: SocketMode) -> f64 {
    match socket {
        // defragmentation/reassembly + read() into user space
        SocketMode::Copying => 2.0,
        SocketMode::ZeroCopy => 0.0,
    }
}

/// Decompose a scenario's costs.
pub fn block_costs(scn: &Scenario) -> BlockCosts {
    let m = &scn.machine;
    let l = &scn.link;

    let per_frame_send = m.send_frame_us * 1e-6 / l.mtu_payload as f64;
    let per_frame_recv = m.recv_frame_us * 1e-6 / l.mtu_payload as f64;
    let copy = m.copy_s_per_byte();

    let mut send_pb = send_copies(scn.socket) * copy + per_frame_send;
    let mut recv_pb = recv_copies(scn.socket) * copy + per_frame_recv;

    // The standard ORB marshals with its generic per-byte loop on both
    // sides — the paper's dominant overhead.
    if scn.orb == OrbMode::Standard {
        send_pb += m.marshal_s_per_byte();
        recv_pb += m.marshal_s_per_byte();
    }

    let syscall = match scn.socket {
        SocketMode::Copying => m.syscall_us,
        SocketMode::ZeroCopy => m.zc_syscall_us,
    } * 1e-6;

    let (send_fixed, recv_fixed, rpc_fixed) = match scn.orb {
        // Raw TTCP: one write()/read() pair per block, fully pipelined.
        OrbMode::None => (syscall, syscall, 0.0),
        // CORBA: request marshal + control message on the sender, demux +
        // dispatch on the receiver, plus a synchronous reply before the
        // next block can start (the RPC semantics of the CORBA TTCP).
        OrbMode::Standard | OrbMode::ZeroCopyOrb => {
            let orb = m.orb_request_us * 1e-6;
            (
                syscall * 2.0 + orb / 2.0,
                syscall * 2.0 + orb / 2.0,
                2.0 * l.latency_us * 1e-6 + orb / 2.0,
            )
        }
    };

    BlockCosts {
        send_cpu_per_byte: send_pb,
        recv_cpu_per_byte: recv_pb,
        wire_per_byte: l.wire_s_per_byte(),
        send_cpu_fixed: send_fixed,
        recv_cpu_fixed: recv_fixed,
        rpc_fixed,
    }
}

/// Modeled per-stage seconds for one block: the analytic counterpart of
/// the measured §5.2 breakdown table, in the request's causal order.
///
/// Note that [`StageBudget::total`] is *not* [`block_seconds`]: the
/// pipeline overlaps stages, so the serial sum here is the work that
/// exists to be overlapped, not the wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBudget {
    /// CDR marshal on the sender (per-byte loop of the standard ORB;
    /// zero when the ORB hands pages through untouched).
    pub marshal_s: f64,
    /// Send-side socket copies (user→kernel write plus driver
    /// fragmentation) and per-frame driver work.
    pub send_copy_s: f64,
    /// Bytes on the wire, framing overhead included.
    pub wire_s: f64,
    /// Receive-side socket copies (defragmentation plus kernel→user read)
    /// and per-frame driver work.
    pub recv_copy_s: f64,
    /// CDR demarshal on the receiver (standard ORB only).
    pub demarshal_s: f64,
    /// Fixed per-block work: syscalls, ORB request handling, and the
    /// synchronous RPC round trip where the workload has one.
    pub fixed_s: f64,
}

impl StageBudget {
    /// Serial sum of every stage (the "total overhead" column of the
    /// breakdown table).
    pub fn total(&self) -> f64 {
        self.marshal_s
            + self.send_copy_s
            + self.wire_s
            + self.recv_copy_s
            + self.demarshal_s
            + self.fixed_s
    }
}

/// Decompose a scenario into modeled per-stage seconds for one block.
pub fn stage_budget(scn: &Scenario) -> StageBudget {
    let m = &scn.machine;
    let l = &scn.link;
    let b = scn.block_bytes as f64;
    let c = block_costs(scn);

    let copy = m.copy_s_per_byte();
    let per_frame_send = m.send_frame_us * 1e-6 / l.mtu_payload as f64;
    let per_frame_recv = m.recv_frame_us * 1e-6 / l.mtu_payload as f64;

    let marshal_pb = if scn.orb == OrbMode::Standard {
        m.marshal_s_per_byte()
    } else {
        0.0
    };

    StageBudget {
        marshal_s: b * marshal_pb,
        send_copy_s: b * (send_copies(scn.socket) * copy + per_frame_send),
        wire_s: b * c.wire_per_byte,
        recv_copy_s: b * (recv_copies(scn.socket) * copy + per_frame_recv),
        demarshal_s: b * marshal_pb,
        fixed_s: c.send_cpu_fixed + c.recv_cpu_fixed + c.rpc_fixed,
    }
}

/// Wall-clock seconds for one block.
///
/// * Streaming workloads pipeline blocks back to back: the pace is the
///   slowest stage (fixed costs fold into that stage's budget).
/// * RPC workloads serialize: each block pays its fixed costs and the
///   round trip in full, plus a one-frame pipeline-fill term for the
///   non-bottleneck stages (a block's last frame must still drain through
///   the wire and the receiver before the reply can start back).
pub fn block_seconds(scn: &Scenario) -> f64 {
    let c = block_costs(scn);
    let b = scn.block_bytes as f64;
    if c.rpc_fixed == 0.0 {
        let send = c.send_cpu_fixed + b * c.send_cpu_per_byte;
        let recv = c.recv_cpu_fixed + b * c.recv_cpu_per_byte;
        let wire = b * c.wire_per_byte;
        send.max(recv).max(wire)
    } else {
        let max_pb = c
            .send_cpu_per_byte
            .max(c.recv_cpu_per_byte)
            .max(c.wire_per_byte);
        let sum_pb = c.send_cpu_per_byte + c.recv_cpu_per_byte + c.wire_per_byte;
        let fill_bytes = b.min(scn.link.mtu_payload as f64);
        c.send_cpu_fixed
            + c.recv_cpu_fixed
            + c.rpc_fixed
            + b * max_pb
            + fill_bytes * (sum_pb - max_pb)
    }
}

/// Predicted goodput in Mbit/s.
pub fn predict(scn: &Scenario) -> f64 {
    let t = block_seconds(scn);
    scn.block_bytes as f64 * 8.0 / t / 1e6
}

/// CPU utilization of (sender, receiver) at the achieved rate: the
/// fraction of wall-clock time each CPU is busy.
pub fn cpu_utilization(scn: &Scenario) -> (f64, f64) {
    let c = block_costs(scn);
    let b = scn.block_bytes as f64;
    let wall = block_seconds(scn);
    let send = c.send_cpu_fixed + b * c.send_cpu_per_byte;
    let recv = c.recv_cpu_fixed + b * c.recv_cpu_per_byte;
    ((send / wall).min(1.0), (recv / wall).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, MachineSpec};

    fn testbed(socket: SocketMode, orb: OrbMode, block: usize) -> Scenario {
        Scenario::on_testbed(socket, orb, block)
    }

    #[test]
    fn copies_per_mode() {
        assert_eq!(send_copies(SocketMode::Copying), 2.0);
        assert_eq!(recv_copies(SocketMode::Copying), 2.0);
        assert_eq!(send_copies(SocketMode::ZeroCopy), 0.0);
        assert_eq!(recv_copies(SocketMode::ZeroCopy), 0.0);
    }

    #[test]
    fn standard_orb_is_marshal_bound() {
        let scn = testbed(SocketMode::Copying, OrbMode::Standard, 16 << 20);
        let c = block_costs(&scn);
        let m = scn.machine.marshal_s_per_byte();
        assert!(
            m / c.recv_cpu_per_byte > 0.7,
            "marshal dominates the per-byte budget"
        );
    }

    #[test]
    fn zero_copy_orb_has_no_per_byte_orb_cost() {
        let std = block_costs(&testbed(SocketMode::ZeroCopy, OrbMode::Standard, 1 << 20));
        let zc = block_costs(&testbed(
            SocketMode::ZeroCopy,
            OrbMode::ZeroCopyOrb,
            1 << 20,
        ));
        assert!(zc.recv_cpu_per_byte < std.recv_cpu_per_byte / 5.0);
        assert_eq!(zc.rpc_fixed, std.rpc_fixed, "RPC semantics unchanged");
    }

    #[test]
    fn stage_budget_accounts_for_per_byte_work() {
        let std = stage_budget(&testbed(SocketMode::Copying, OrbMode::Standard, 1 << 20));
        assert!(std.marshal_s > 0.0);
        assert!(std.send_copy_s > 0.0);
        assert!(std.recv_copy_s > 0.0);
        assert!(std.demarshal_s > 0.0);
        assert!(std.fixed_s > 0.0);
        // The breakdown is consistent with the pipeline model's per-byte sums.
        let c = block_costs(&testbed(SocketMode::Copying, OrbMode::Standard, 1 << 20));
        let b = (1u64 << 20) as f64;
        let cpu_sum = std.marshal_s + std.send_copy_s + std.recv_copy_s + std.demarshal_s;
        let model_sum = b * (c.send_cpu_per_byte + c.recv_cpu_per_byte);
        assert!((cpu_sum - model_sum).abs() < 1e-9 * model_sum.max(1.0));
    }

    #[test]
    fn all_zc_stage_budget_collapses_copy_stages() {
        let zc = stage_budget(&testbed(
            SocketMode::ZeroCopy,
            OrbMode::ZeroCopyOrb,
            1 << 20,
        ));
        assert_eq!(zc.marshal_s, 0.0, "ZC ORB marshals by reference");
        assert_eq!(zc.demarshal_s, 0.0);
        let std = stage_budget(&testbed(SocketMode::Copying, OrbMode::ZeroCopyOrb, 1 << 20));
        assert!(
            zc.send_copy_s < std.send_copy_s / 2.0,
            "socket copies gone, only per-frame driver work remains"
        );
        assert_eq!(zc.wire_s, std.wire_s, "the wire itself is unchanged");
    }

    #[test]
    fn never_exceeds_link_goodput() {
        for socket in [SocketMode::Copying, SocketMode::ZeroCopy] {
            for orb in [OrbMode::None, OrbMode::Standard, OrbMode::ZeroCopyOrb] {
                for block in crate::paper_block_sizes() {
                    let scn = Scenario {
                        machine: MachineSpec::modern_2003(),
                        link: LinkSpec::gigabit_ethernet(),
                        socket,
                        orb,
                        block_bytes: block,
                    };
                    assert!(predict(&scn) <= scn.link.max_goodput_mbit() + 1e-6);
                }
            }
        }
    }

    #[test]
    fn fast_ethernet_aside() {
        // "The achieved bandwidths [of standard CORBA] would not even use a
        // Fast Ethernet to its limit."
        let scn = testbed(SocketMode::Copying, OrbMode::Standard, 16 << 20);
        assert!(predict(&scn) < LinkSpec::fast_ethernet().max_goodput_mbit());
    }

    #[test]
    fn utilization_bounded_and_sensible() {
        let (s, r) = cpu_utilization(&testbed(SocketMode::Copying, OrbMode::None, 16 << 20));
        assert!((0.0..=1.0).contains(&s));
        assert!(
            (0.99..=1.0).contains(&r),
            "copying receiver is the bottleneck: {r}"
        );
        let (s2, r2) = cpu_utilization(&testbed(SocketMode::ZeroCopy, OrbMode::None, 16 << 20));
        assert!(s2 < s);
        assert!(
            r2 >= 0.9,
            "P-II is still CPU-bound even with zero copies: {r2}"
        );
    }
}
