//! Open-loop workload generation: seeded arrival processes and hot-key
//! skew for overload experiments.
//!
//! Saturation behavior can only be measured **open loop**: a closed-loop
//! client (issue, wait, issue) self-throttles exactly when the server
//! slows down, so offered load can never exceed capacity and the collapse
//! region is unreachable. Here the arrival schedule is precomputed from a
//! seeded pseudo-random process — requests are *due* at fixed instants
//! regardless of how the server is doing, and a late server accumulates a
//! backlog instead of slowing the generator.
//!
//! Everything is deterministic from the seed (xorshift64*, no RNG
//! dependency), so a goodput-vs-offered-load curve is reproducible
//! run-to-run and machine-to-machine modulo scheduling noise.

/// A tiny deterministic generator (xorshift64*). Statistical quality is
/// plenty for arrival jitter and key skew; the point is reproducibility
/// without a dependency.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Seed the generator (0 is remapped — xorshift has a zero fixpoint).
    pub fn new(seed: u64) -> SeededRng {
        SeededRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw value.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)` (n = 0 yields 0).
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// An open-loop arrival schedule: request number `i` is due
/// `arrivals_ns[i]` nanoseconds after the epoch the driver picks.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    /// Monotone arrival offsets, nanoseconds from the run epoch.
    pub arrivals_ns: Vec<u64>,
    /// The rate the schedule was built for (requests per second).
    pub offered_rps: f64,
}

impl ArrivalSchedule {
    /// A Poisson process at `offered_rps` with `count` arrivals:
    /// exponential gaps via inverse-transform sampling. This is the
    /// classic open-loop arrival model — bursts happen naturally, which
    /// is exactly what exposes queue-collapse behavior.
    pub fn poisson(seed: u64, offered_rps: f64, count: usize) -> ArrivalSchedule {
        assert!(offered_rps > 0.0, "offered load must be positive");
        let mut rng = SeededRng::new(seed);
        let mean_gap_ns = 1e9 / offered_rps;
        let mut t = 0.0f64;
        let mut arrivals_ns = Vec::with_capacity(count);
        for _ in 0..count {
            // Exponential gap: -ln(U) * mean. Clamp U away from 0.
            let u = rng.next_f64().max(1e-12);
            t += -u.ln() * mean_gap_ns;
            arrivals_ns.push(t as u64);
        }
        ArrivalSchedule {
            arrivals_ns,
            offered_rps,
        }
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.arrivals_ns.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals_ns.is_empty()
    }

    /// Nominal duration of the schedule (last arrival offset).
    pub fn span_ns(&self) -> u64 {
        self.arrivals_ns.last().copied().unwrap_or(0)
    }
}

/// Hot-key skew: an 80/20-style sampler over `keys` distinct keys.
///
/// A `hot_fraction` of the probability mass lands on the first
/// `hot_keys` keys (the "hot set"); the rest spreads uniformly over the
/// remainder. With `hot_fraction = 0.8` and `hot_keys = keys / 5` this is
/// the classic 80/20 rule.
#[derive(Debug, Clone)]
pub struct KeySkew {
    /// Total distinct keys.
    pub keys: u64,
    /// Size of the hot set (first `hot_keys` key indices).
    pub hot_keys: u64,
    /// Probability mass on the hot set (0.0–1.0).
    pub hot_fraction: f64,
}

impl KeySkew {
    /// The classic 80/20 skew over `keys` keys.
    pub fn eighty_twenty(keys: u64) -> KeySkew {
        KeySkew {
            keys,
            hot_keys: (keys / 5).max(1),
            hot_fraction: 0.8,
        }
    }

    /// Sample a key index in `[0, keys)`.
    pub fn sample(&self, rng: &mut SeededRng) -> u64 {
        if self.keys <= 1 {
            return 0;
        }
        let hot = self.hot_keys.min(self.keys);
        if rng.next_f64() < self.hot_fraction {
            rng.next_below(hot)
        } else {
            let cold = self.keys - hot;
            if cold == 0 {
                rng.next_below(hot)
            } else {
                hot + rng.next_below(cold)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_nonzero() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = SeededRng::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed is remapped off the fixpoint");
    }

    #[test]
    fn poisson_schedule_matches_offered_rate() {
        let sched = ArrivalSchedule::poisson(7, 10_000.0, 50_000);
        assert_eq!(sched.len(), 50_000);
        // Monotone arrivals.
        assert!(sched.arrivals_ns.windows(2).all(|w| w[0] <= w[1]));
        // Empirical rate within 5% of nominal over 50k samples.
        let rate = sched.len() as f64 / (sched.span_ns() as f64 / 1e9);
        assert!(
            (rate / 10_000.0 - 1.0).abs() < 0.05,
            "empirical rate {rate:.0} rps vs nominal 10000"
        );
    }

    #[test]
    fn poisson_is_seed_deterministic() {
        let a = ArrivalSchedule::poisson(11, 5000.0, 1000);
        let b = ArrivalSchedule::poisson(11, 5000.0, 1000);
        assert_eq!(a.arrivals_ns, b.arrivals_ns);
        let c = ArrivalSchedule::poisson(12, 5000.0, 1000);
        assert_ne!(a.arrivals_ns, c.arrivals_ns);
    }

    #[test]
    fn skew_concentrates_on_the_hot_set() {
        let skew = KeySkew::eighty_twenty(100);
        assert_eq!(skew.hot_keys, 20);
        let mut rng = SeededRng::new(3);
        let mut hot_hits = 0u64;
        const N: u64 = 100_000;
        for _ in 0..N {
            let k = skew.sample(&mut rng);
            assert!(k < 100);
            if k < skew.hot_keys {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / N as f64;
        // 80% nominal on the hot set, plus the uniform spill-over is 0:
        // cold mass goes to [20,100) only. Expect ≈ 0.80.
        assert!((0.77..=0.83).contains(&frac), "hot fraction {frac:.3}");
    }

    #[test]
    fn skew_degenerate_cases_stay_in_range() {
        let mut rng = SeededRng::new(5);
        let one = KeySkew::eighty_twenty(1);
        assert_eq!(one.sample(&mut rng), 0);
        let all_hot = KeySkew {
            keys: 4,
            hot_keys: 4,
            hot_fraction: 0.5,
        };
        for _ in 0..100 {
            assert!(all_hot.sample(&mut rng) < 4);
        }
    }
}
