//! Frame-granular discrete-event simulation of the transfer pipeline.
//!
//! Models the same three-resource tandem (sender CPU → link → receiver
//! CPU) as the analytic formula, but executes it frame by frame on an
//! event calendar: each frame occupies each resource for its service time,
//! resources serve in FIFO order, and RPC workloads insert a reply
//! turnaround between blocks. Because service times are deterministic the
//! two evaluators must agree asymptotically — the cross-validation test in
//! `lib.rs` checks they do — but the DES additionally yields correct
//! small-N transients and can host extensions (jitter, drops) the formula
//! cannot.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::analytic::block_costs;
use crate::{OrbMode, Scenario};

/// The three pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    SenderCpu = 0,
    Link = 1,
    ReceiverCpu = 2,
}

/// An event: a frame finishing service at a stage.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    frame: usize,
    stage: Stage,
}

// Order events by time for the BinaryHeap (min-heap via Reverse).
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
            .then_with(|| self.frame.cmp(&other.frame))
            .then_with(|| (self.stage as u8).cmp(&(other.stage as u8)))
    }
}

/// Simulate transferring `blocks` consecutive blocks; returns goodput in
/// Mbit/s.
pub fn simulate(scn: &Scenario, blocks: usize) -> f64 {
    assert!(blocks > 0);
    let c = block_costs(scn);
    let mtu = scn.link.mtu_payload;
    let frames_per_block = scn.link.frames_for(scn.block_bytes);

    // Per-frame service times. Fixed per-block costs attach to the block's
    // first frame (sender) / last frame (receiver).
    let frame_bytes = |i: usize| -> f64 {
        let rem = scn.block_bytes - (i * mtu).min(scn.block_bytes);
        rem.min(mtu) as f64
    };

    let rpc = scn.orb != OrbMode::None;

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    // Next instant each resource becomes free.
    let mut free = [0.0f64; 3];
    let mut makespan = 0.0f64;

    // The sender may only start block b+1 after (RPC) the reply for block
    // b arrives; `block_gate[b]` is that release time.
    let mut gate = 0.0f64;

    for block in 0..blocks {
        let mut last_recv_done = 0.0f64;
        for f in 0..frames_per_block {
            let bytes = frame_bytes(f);
            // --- sender CPU ---
            let mut send_service = bytes * c.send_cpu_per_byte;
            if f == 0 {
                send_service += c.send_cpu_fixed;
            }
            let start = free[Stage::SenderCpu as usize].max(gate);
            let send_done = start + send_service;
            free[Stage::SenderCpu as usize] = send_done;

            // --- link ---
            let link_service = bytes * c.wire_per_byte;
            let link_start = free[Stage::Link as usize].max(send_done);
            let link_done = link_start + link_service;
            free[Stage::Link as usize] = link_done;

            // --- receiver CPU ---
            let mut recv_service = bytes * c.recv_cpu_per_byte;
            if f == frames_per_block - 1 {
                recv_service += c.recv_cpu_fixed;
            }
            let recv_start = free[Stage::ReceiverCpu as usize].max(link_done);
            let recv_done = recv_start + recv_service;
            free[Stage::ReceiverCpu as usize] = recv_done;
            last_recv_done = recv_done;

            heap.push(Reverse(Event {
                time: recv_done,
                frame: block * frames_per_block + f,
                stage: Stage::ReceiverCpu,
            }));
        }
        if rpc {
            // Reply (tiny control message) travels back; next block gated.
            gate = last_recv_done + c.rpc_fixed;
        }
        makespan = makespan.max(last_recv_done);
    }

    // Drain the calendar to find the true makespan (defensive: identical
    // to `makespan` for this deterministic pipeline, but the calendar is
    // the extensible part of the simulator).
    while let Some(Reverse(ev)) = heap.pop() {
        makespan = makespan.max(ev.time);
    }

    let total_bytes = (scn.block_bytes * blocks) as f64;
    total_bytes * 8.0 / makespan / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OrbMode, Scenario, SocketMode};

    #[test]
    fn single_block_matches_analytic_latency() {
        let scn = Scenario::on_testbed(SocketMode::Copying, OrbMode::Standard, 1 << 20);
        let one = simulate(&scn, 1);
        let analytic = crate::predict(&scn);
        // One RPC block: DES ≈ analytic (same fixed + bottleneck structure,
        // DES adds pipeline fill, so it can only be slightly slower).
        assert!(one <= analytic * 1.02, "des {one} vs analytic {analytic}");
        assert!(one >= analytic * 0.8);
    }

    #[test]
    fn streaming_pipeline_overlaps_blocks() {
        let scn = Scenario::on_testbed(SocketMode::Copying, OrbMode::None, 1 << 20);
        let one = simulate(&scn, 1);
        let many = simulate(&scn, 32);
        assert!(
            many > one,
            "steady state ({many:.0}) beats single-block latency ({one:.0})"
        );
    }

    #[test]
    fn rpc_does_not_overlap_blocks() {
        let scn = Scenario::on_testbed(SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb, 4096);
        let one = simulate(&scn, 1);
        let many = simulate(&scn, 32);
        // small blocks + RPC: throughput cannot improve much with N
        assert!((many / one) < 1.3, "one={one:.1} many={many:.1}");
    }

    #[test]
    fn zero_length_blocks_do_not_crash() {
        let scn = Scenario::on_testbed(SocketMode::Copying, OrbMode::None, 0);
        // zero payload → zero goodput, finite time
        let v = simulate(&scn, 3);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn event_ordering_is_total() {
        let a = Event {
            time: 1.0,
            frame: 0,
            stage: Stage::Link,
        };
        let b = Event {
            time: 1.0,
            frame: 1,
            stage: Stage::SenderCpu,
        };
        assert!(a < b);
        let c = Event {
            time: 0.5,
            frame: 9,
            stage: Stage::ReceiverCpu,
        };
        assert!(c < a);
    }
}
