//! Parameter sweeps and CSV export: the figure data as data.
//!
//! The harness binaries print human tables; this module produces the same
//! series programmatically (for plotting, regression tracking, or spread-
//! sheet import) and renders RFC-4180-style CSV.

use crate::{predict, LinkSpec, MachineSpec, OrbMode, Scenario, SocketMode};

/// One named configuration of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Column label.
    pub name: &'static str,
    /// Socket layer.
    pub socket: SocketMode,
    /// Middleware layer.
    pub orb: OrbMode,
}

/// The six configurations of Figures 5 and 6 combined.
pub const FIGURE_CONFIGS: [SweepConfig; 6] = [
    SweepConfig {
        name: "raw_tcp",
        socket: SocketMode::Copying,
        orb: OrbMode::None,
    },
    SweepConfig {
        name: "zc_tcp",
        socket: SocketMode::ZeroCopy,
        orb: OrbMode::None,
    },
    SweepConfig {
        name: "orb_std_tcp",
        socket: SocketMode::Copying,
        orb: OrbMode::Standard,
    },
    SweepConfig {
        name: "orb_std_zc_tcp",
        socket: SocketMode::ZeroCopy,
        orb: OrbMode::Standard,
    },
    SweepConfig {
        name: "orb_zc_tcp",
        socket: SocketMode::Copying,
        orb: OrbMode::ZeroCopyOrb,
    },
    SweepConfig {
        name: "orb_zc_zc_tcp",
        socket: SocketMode::ZeroCopy,
        orb: OrbMode::ZeroCopyOrb,
    },
];

/// A completed sweep: block sizes × configurations → Mbit/s.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Block sizes (rows).
    pub block_sizes: Vec<usize>,
    /// Configurations (columns).
    pub configs: Vec<SweepConfig>,
    /// `values[row][col]` in Mbit/s.
    pub values: Vec<Vec<f64>>,
}

/// Run the analytic model over `block_sizes × configs` on one machine/link.
pub fn run_sweep(
    machine: MachineSpec,
    link: LinkSpec,
    block_sizes: &[usize],
    configs: &[SweepConfig],
) -> Sweep {
    let values = block_sizes
        .iter()
        .map(|&block_bytes| {
            configs
                .iter()
                .map(|c| {
                    predict(&Scenario {
                        machine,
                        link,
                        socket: c.socket,
                        orb: c.orb,
                        block_bytes,
                    })
                })
                .collect()
        })
        .collect();
    Sweep {
        block_sizes: block_sizes.to_vec(),
        configs: configs.to_vec(),
        values,
    }
}

/// The full paper sweep on the calibrated testbed.
pub fn paper_sweep() -> Sweep {
    run_sweep(
        MachineSpec::pentium_ii_400(),
        LinkSpec::gigabit_ethernet(),
        &crate::paper_block_sizes(),
        &FIGURE_CONFIGS,
    )
}

impl Sweep {
    /// Render as CSV: `block_bytes,cfg1,cfg2,…` header then one row per
    /// block size, values with one decimal.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("block_bytes");
        for c in &self.configs {
            out.push(',');
            out.push_str(c.name);
        }
        out.push('\n');
        for (row, &block) in self.block_sizes.iter().enumerate() {
            out.push_str(&block.to_string());
            for v in &self.values[row] {
                out.push_str(&format!(",{v:.1}"));
            }
            out.push('\n');
        }
        out
    }

    /// Column index by configuration name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.configs.iter().position(|c| c.name == name)
    }

    /// The saturation (largest-block) value of a named configuration.
    pub fn saturation(&self, name: &str) -> Option<f64> {
        let col = self.column(name)?;
        self.values.last().map(|row| row[col])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_shape() {
        let s = paper_sweep();
        assert_eq!(s.block_sizes.len(), 13);
        assert_eq!(s.configs.len(), 6);
        assert_eq!(s.values.len(), 13);
        assert!(s.values.iter().all(|r| r.len() == 6));
    }

    #[test]
    fn saturations_match_anchors() {
        let s = paper_sweep();
        let std = s.saturation("orb_std_tcp").unwrap();
        let zc = s.saturation("orb_zc_zc_tcp").unwrap();
        let raw = s.saturation("raw_tcp").unwrap();
        assert!((38.0..62.0).contains(&std));
        assert!((480.0..640.0).contains(&zc));
        assert!((280.0..380.0).contains(&raw));
    }

    #[test]
    fn csv_well_formed() {
        let s = paper_sweep();
        let csv = s.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 7);
        assert!(header.starts_with("block_bytes,raw_tcp,"));
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), 7, "{line}");
            let first: usize = line.split(',').next().unwrap().parse().unwrap();
            assert!(first >= 4096);
            rows += 1;
        }
        assert_eq!(rows, 13);
    }

    #[test]
    fn column_lookup() {
        let s = paper_sweep();
        assert_eq!(s.column("raw_tcp"), Some(0));
        assert_eq!(s.column("nope"), None);
    }
}
