//! Interconnect models.

/// A full-duplex point-to-point link (through a store-and-forward switch).
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Name for reports.
    pub name: &'static str,
    /// Signalling rate in Mbit/s.
    pub rate_mbit: f64,
    /// Payload bytes per frame (MTU minus IP/TCP headers).
    pub mtu_payload: usize,
    /// Non-payload bytes per frame on the wire: Ethernet header + FCS +
    /// preamble + inter-frame gap + IP/TCP headers.
    pub frame_overhead_bytes: usize,
    /// One-way latency (propagation + switch), µs.
    pub latency_us: f64,
}

impl LinkSpec {
    /// The paper's Gigabit Ethernet (Cabletron SmartSwitch 8600, fiber).
    pub fn gigabit_ethernet() -> LinkSpec {
        LinkSpec {
            name: "GbE",
            rate_mbit: 1000.0,
            mtu_payload: 1460,
            // 14 eth + 4 fcs + 8 preamble + 12 IFG + 20 IP + 20 TCP
            frame_overhead_bytes: 78,
            latency_us: 30.0,
        }
    }

    /// Classic Fast Ethernet, for the paper's aside that unoptimized CORBA
    /// "would not even use a Fast Ethernet to its limit".
    pub fn fast_ethernet() -> LinkSpec {
        LinkSpec {
            rate_mbit: 100.0,
            name: "FE",
            ..LinkSpec::gigabit_ethernet()
        }
    }

    /// Seconds on the wire per *payload* byte, including framing overhead.
    pub fn wire_s_per_byte(&self) -> f64 {
        let bytes_per_payload_byte =
            (self.mtu_payload + self.frame_overhead_bytes) as f64 / self.mtu_payload as f64;
        bytes_per_payload_byte * 8.0 / (self.rate_mbit * 1e6)
    }

    /// Frames needed for a block of `bytes`.
    pub fn frames_for(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.mtu_payload)
        }
    }

    /// The maximum goodput of the link in Mbit/s (payload only).
    pub fn max_goodput_mbit(&self) -> f64 {
        8.0 / self.wire_s_per_byte() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbe_goodput_below_line_rate() {
        let l = LinkSpec::gigabit_ethernet();
        let g = l.max_goodput_mbit();
        assert!((920.0..960.0).contains(&g), "{g} Mbit/s");
    }

    #[test]
    fn frames_for_blocks() {
        let l = LinkSpec::gigabit_ethernet();
        assert_eq!(l.frames_for(0), 1);
        assert_eq!(l.frames_for(1), 1);
        assert_eq!(l.frames_for(1460), 1);
        assert_eq!(l.frames_for(1461), 2);
        assert_eq!(l.frames_for(16 << 20), (16 << 20) / 1460 + 1);
    }

    #[test]
    fn fast_ethernet_is_ten_times_slower() {
        let g = LinkSpec::gigabit_ethernet().max_goodput_mbit();
        let f = LinkSpec::fast_ethernet().max_goodput_mbit();
        assert!((g / f - 10.0).abs() < 0.2);
    }
}
