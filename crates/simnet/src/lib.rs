//! zc-simnet — a calibrated performance model of the paper's 2003 testbed.
//!
//! The experiments of §5 were run on 400 MHz Pentium-II PCs with GNIC-II
//! Gigabit Ethernet under Linux 2.2 — hardware we do not have. The
//! *mechanisms* (which copies happen where, what travels on which channel)
//! are reproduced operationally by `zc-transport`/`zc-orb`; this crate
//! reproduces the *absolute numbers* of Figures 5 and 6 from first
//! principles: a machine is characterized by its memory-copy bandwidth,
//! per-frame protocol/interrupt cost and syscall costs; a configuration is
//! characterized by how many times each payload byte is copied and whether
//! the workload streams (TTCP over raw sockets) or runs synchronous
//! request/reply rounds (TTCP over CORBA).
//!
//! Two evaluators are provided and cross-validated against each other:
//!
//! * [`analytic::predict`] — closed-form pipeline-bottleneck model;
//! * [`des`] — a discrete-event simulation of the sender-CPU → link →
//!   receiver-CPU tandem queue at frame granularity.
//!
//! Calibration (see `machine::pentium_ii_400`) reproduces the paper's
//! anchors: raw TCP ≈ 330 Mbit/s, standard MICO ≈ 50 Mbit/s, the all
//! zero-copy combination ≈ 550 Mbit/s, and a ~10× ORB speedup — plus the
//! §6 claim that a "newer" machine reaches full GbE bandwidth at ~30 % CPU
//! with the zero-copy stack versus ~100 % with the conventional one.

pub mod analytic;
pub mod des;
pub mod link;
pub mod machine;
pub mod sweep;
pub mod workload;

pub use analytic::{block_costs, cpu_utilization, predict, stage_budget, BlockCosts, StageBudget};
pub use des::simulate;
pub use link::LinkSpec;
pub use machine::MachineSpec;
pub use sweep::{paper_sweep, run_sweep, Sweep, SweepConfig, FIGURE_CONFIGS};
pub use workload::{ArrivalSchedule, KeySkew, SeededRng};

/// Kernel socket layer variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketMode {
    /// Conventional stack: user/kernel copy + fragmentation copy per side.
    Copying,
    /// Zero-copy sockets with speculative defragmentation: no payload
    /// copies, cheaper syscalls; per-frame protocol work remains.
    ZeroCopy,
}

/// Middleware on top of the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrbMode {
    /// Raw TTCP: no middleware, streaming writes.
    None,
    /// Standard CORBA: per-byte marshal/demarshal through MICO's generic
    /// copy-and-inspect loop, synchronous request/reply per block.
    Standard,
    /// The zero-copy ORB: no per-byte work, synchronous request/reply with
    /// separated control and data transfers.
    ZeroCopyOrb,
}

/// One experimental configuration: a machine pair, a link, a stack and a
/// block size.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Host model (both ends identical, as in the paper's cluster).
    pub machine: MachineSpec,
    /// Interconnect model.
    pub link: LinkSpec,
    /// Socket layer.
    pub socket: SocketMode,
    /// Middleware layer.
    pub orb: OrbMode,
    /// TTCP block size in bytes.
    pub block_bytes: usize,
}

impl Scenario {
    /// Convenience constructor on the paper's testbed.
    pub fn on_testbed(socket: SocketMode, orb: OrbMode, block_bytes: usize) -> Scenario {
        Scenario {
            machine: MachineSpec::pentium_ii_400(),
            link: LinkSpec::gigabit_ethernet(),
            socket,
            orb,
            block_bytes,
        }
    }

    /// Short label used by report tables.
    pub fn label(&self) -> String {
        let sock = match self.socket {
            SocketMode::Copying => "tcp",
            SocketMode::ZeroCopy => "zc-tcp",
        };
        match self.orb {
            OrbMode::None => format!("raw/{sock}"),
            OrbMode::Standard => format!("orb-std/{sock}"),
            OrbMode::ZeroCopyOrb => format!("orb-zc/{sock}"),
        }
    }
}

/// The TTCP block sizes of the paper: 4 KiB to 16 MiB, by powers of two
/// (all 4 KiB aligned, as the zero-copy sockets require).
pub fn paper_block_sizes() -> Vec<usize> {
    (12..=24).map(|p| 1usize << p).collect()
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    fn mbit(socket: SocketMode, orb: OrbMode, block: usize) -> f64 {
        predict(&Scenario::on_testbed(socket, orb, block))
    }

    const BIG: usize = 16 << 20;

    #[test]
    fn anchor_raw_tcp_copying() {
        let v = mbit(SocketMode::Copying, OrbMode::None, BIG);
        assert!(
            (280.0..=380.0).contains(&v),
            "raw/tcp = {v} Mbit/s, paper ≈ 330"
        );
    }

    #[test]
    fn anchor_standard_corba() {
        let v = mbit(SocketMode::Copying, OrbMode::Standard, BIG);
        assert!(
            (38.0..=62.0).contains(&v),
            "orb-std/tcp = {v} Mbit/s, paper ≈ 50"
        );
    }

    #[test]
    fn anchor_all_zero_copy() {
        let v = mbit(SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb, BIG);
        assert!(
            (480.0..=640.0).contains(&v),
            "orb-zc/zc-tcp = {v} Mbit/s, paper ≈ 550"
        );
    }

    #[test]
    fn anchor_tenfold_improvement() {
        let slow = mbit(SocketMode::Copying, OrbMode::Standard, BIG);
        let fast = mbit(SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb, BIG);
        let factor = fast / slow;
        assert!(
            (8.0..=14.0).contains(&factor),
            "improvement factor {factor:.1}, paper ≈ 10×"
        );
    }

    #[test]
    fn zc_orb_nearly_matches_raw_sockets() {
        // Fig 6 right: "the performance of the optimized zero-copy ORB
        // nearly matches the raw TCP-socket version of TTCP".
        for socket in [SocketMode::Copying, SocketMode::ZeroCopy] {
            let raw = mbit(socket, OrbMode::None, BIG);
            let orb = mbit(socket, OrbMode::ZeroCopyOrb, BIG);
            assert!(
                orb <= raw && orb / raw > 0.85,
                "{socket:?}: orb-zc {orb:.0} vs raw {raw:.0}"
            );
        }
    }

    #[test]
    fn zc_sockets_good_even_at_one_page() {
        // Fig 6 left: "very good throughput figures for transfers as small
        // as a single memory page".
        let small = mbit(SocketMode::ZeroCopy, OrbMode::None, 4096);
        let large = mbit(SocketMode::ZeroCopy, OrbMode::None, BIG);
        assert!(small > 0.6 * large, "4 KiB: {small:.0}, 16 MiB: {large:.0}");
        let copy_small = mbit(SocketMode::Copying, OrbMode::None, 4096);
        assert!(small > 1.5 * copy_small, "zc gains most at small blocks");
    }

    #[test]
    fn ordering_of_all_six_configurations() {
        // who-wins ordering at large blocks, per Figures 5 and 6
        let raw_zc = mbit(SocketMode::ZeroCopy, OrbMode::None, BIG);
        let orb_zc_zc = mbit(SocketMode::ZeroCopy, OrbMode::ZeroCopyOrb, BIG);
        let raw_copy = mbit(SocketMode::Copying, OrbMode::None, BIG);
        let orb_zc_copy = mbit(SocketMode::Copying, OrbMode::ZeroCopyOrb, BIG);
        let orb_std_copy = mbit(SocketMode::Copying, OrbMode::Standard, BIG);
        let orb_std_zc = mbit(SocketMode::ZeroCopy, OrbMode::Standard, BIG);
        assert!(raw_zc >= orb_zc_zc);
        assert!(orb_zc_zc > raw_copy);
        assert!(raw_copy >= orb_zc_copy);
        assert!(orb_zc_copy > orb_std_zc);
        assert!(orb_std_zc > orb_std_copy * 0.9); // std ORB is marshal-bound either way
        assert!(orb_std_copy < 65.0);
    }

    #[test]
    fn bandwidth_monotone_in_block_size() {
        for socket in [SocketMode::Copying, SocketMode::ZeroCopy] {
            for orb in [OrbMode::None, OrbMode::Standard, OrbMode::ZeroCopyOrb] {
                let mut prev = 0.0;
                for b in paper_block_sizes() {
                    let v = mbit(socket, orb, b);
                    assert!(
                        v >= prev * 0.999,
                        "{socket:?}/{orb:?}: {v} < {prev} at block {b}"
                    );
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn modern_machine_reaches_wire_speed_at_low_utilization() {
        // §6: "For newer machines we can achieve the full communication
        // bandwidth of Gigabit Ethernet with a CPU utilization of just 30%
        // versus 100% with the original stack."
        let zc = Scenario {
            machine: MachineSpec::modern_2003(),
            link: LinkSpec::gigabit_ethernet(),
            socket: SocketMode::ZeroCopy,
            orb: OrbMode::ZeroCopyOrb,
            block_bytes: BIG,
        };
        let v = predict(&zc);
        assert!(v > 850.0, "modern zc should saturate GbE, got {v:.0}");
        let (_, recv_util) = cpu_utilization(&zc);
        assert!(
            (0.15..=0.45).contains(&recv_util),
            "zc receiver utilization {recv_util:.2}, paper ≈ 0.3"
        );

        let copy = Scenario {
            socket: SocketMode::Copying,
            orb: OrbMode::None,
            ..zc
        };
        let (_, copy_util) = cpu_utilization(&copy);
        assert!(
            copy_util > 0.8,
            "copying receiver utilization {copy_util:.2}, paper ≈ 1.0"
        );
    }

    #[test]
    fn des_agrees_with_analytic() {
        for socket in [SocketMode::Copying, SocketMode::ZeroCopy] {
            for orb in [OrbMode::None, OrbMode::Standard, OrbMode::ZeroCopyOrb] {
                for block in [4096, 1 << 18, 16 << 20] {
                    let scn = Scenario::on_testbed(socket, orb, block);
                    let a = predict(&scn);
                    let d = simulate(&scn, 24);
                    let ratio = d / a;
                    assert!(
                        (0.85..=1.15).contains(&ratio),
                        "{}@{block}: des {d:.1} vs analytic {a:.1}",
                        scn.label()
                    );
                }
            }
        }
    }
}
