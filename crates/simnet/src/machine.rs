//! Host machine models.

/// Performance characteristics of one cluster node.
///
/// All times in microseconds, bandwidths in MB/s (10⁶ bytes), frequencies
/// in MHz. The defaults are calibrated against the measured anchors the
/// paper reports (see the crate-level docs); each parameter is nonetheless
/// a physically meaningful quantity, not a fudge factor:
///
/// * `copy_bw_mb` — sustained `memcpy` bandwidth. A 400 MHz P-II with
///   100 MHz SDRAM manages on the order of 150–200 MB/s.
/// * `marshal_cycles_per_byte` — MICO's generic marshaling loop ("a very
///   general unoptimized copy loop that is able to handle all different
///   data types", §5.2) costs tens of cycles per byte: virtual dispatch,
///   bounds logic and a byte store.
/// * `recv_frame_us` / `send_frame_us` — per-Ethernet-frame protocol and
///   interrupt work. On the receive side this includes the interrupt path,
///   which is why the P-II cannot saturate GbE even with zero copies.
/// * `syscall_us` / `zc_syscall_us` — cost of a socket call; the zero-copy
///   API's page-flipping call is considerably cheaper per byte moved
///   ("a big improvement in the overhead of the read() and write() system
///   calls", §5.3).
/// * `orb_request_us` — per-request ORB work: demultiplexing, allocation,
///   dispatch (minor for bulk transfers, §2.1, but it is what bounds
///   small-block CORBA throughput).
#[derive(Debug, Clone, Copy)]
pub struct MachineSpec {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// CPU clock in MHz.
    pub cpu_mhz: f64,
    /// Sustained memory-copy bandwidth, MB/s.
    pub copy_bw_mb: f64,
    /// MICO-style generic marshal cost, CPU cycles per byte.
    pub marshal_cycles_per_byte: f64,
    /// Per-frame receive-side protocol + interrupt cost, µs.
    pub recv_frame_us: f64,
    /// Per-frame send-side driver cost, µs.
    pub send_frame_us: f64,
    /// Conventional socket call overhead, µs.
    pub syscall_us: f64,
    /// Zero-copy socket call overhead, µs.
    pub zc_syscall_us: f64,
    /// Per-request ORB overhead (demux, allocation, dispatch), µs.
    pub orb_request_us: f64,
}

impl MachineSpec {
    /// The paper's testbed node: 400 MHz Pentium II, Linux 2.2, GNIC-II.
    pub fn pentium_ii_400() -> MachineSpec {
        MachineSpec {
            name: "PentiumII-400/Linux2.2",
            cpu_mhz: 400.0,
            copy_bw_mb: 190.0,
            marshal_cycles_per_byte: 60.0,
            recv_frame_us: 21.0,
            send_frame_us: 8.0,
            syscall_us: 15.0,
            zc_syscall_us: 3.0,
            orb_request_us: 300.0,
        }
    }

    /// A "newer machine" of the paper's conclusion (≈2003 desktop):
    /// 2.4 GHz CPU, faster memory, interrupt coalescing NIC.
    pub fn modern_2003() -> MachineSpec {
        MachineSpec {
            name: "P4-2400/Linux2.4",
            cpu_mhz: 2400.0,
            copy_bw_mb: 330.0,
            marshal_cycles_per_byte: 60.0,
            recv_frame_us: 3.4,
            send_frame_us: 1.2,
            syscall_us: 2.0,
            zc_syscall_us: 0.8,
            orb_request_us: 40.0,
        }
    }

    /// Seconds to copy one byte once.
    pub fn copy_s_per_byte(&self) -> f64 {
        1.0 / (self.copy_bw_mb * 1e6)
    }

    /// Seconds of generic-marshal work per byte.
    pub fn marshal_s_per_byte(&self) -> f64 {
        self.marshal_cycles_per_byte / (self.cpu_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_byte_costs_are_sane() {
        let m = MachineSpec::pentium_ii_400();
        // one memcpy traversal ~ 5.3 ns/B on the P-II
        let c = m.copy_s_per_byte() * 1e9;
        assert!((4.0..8.0).contains(&c), "{c} ns/B");
        // generic marshal ~ 150 ns/B — the dominant CORBA cost
        let g = m.marshal_s_per_byte() * 1e9;
        assert!((100.0..250.0).contains(&g), "{g} ns/B");
        assert!(g > 10.0 * c, "marshal loop is an order slower than memcpy");
    }

    #[test]
    fn modern_machine_is_uniformly_faster() {
        let old = MachineSpec::pentium_ii_400();
        let new = MachineSpec::modern_2003();
        assert!(new.copy_s_per_byte() < old.copy_s_per_byte());
        assert!(new.marshal_s_per_byte() < old.marshal_s_per_byte());
        assert!(new.recv_frame_us < old.recv_frame_us);
        assert!(new.syscall_us < old.syscall_us);
    }
}
