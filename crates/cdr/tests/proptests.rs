//! Property-based tests for the CDR engine: round-trips under arbitrary
//! values and byte orders, alignment invariants, and decoder robustness
//! against arbitrary byte soup.

use proptest::prelude::*;

use zc_buffers::CopyMeter;
use zc_cdr::{ByteOrder, CdrDecoder, CdrEncoder, CdrMarshal, OctetSeq, ZcOctetSeq};

fn orders() -> impl Strategy<Value = ByteOrder> {
    prop_oneof![Just(ByteOrder::Big), Just(ByteOrder::Little)]
}

fn roundtrip<T: CdrMarshal + PartialEq + std::fmt::Debug>(v: &T, order: ByteOrder) {
    let mut e = CdrEncoder::new(order);
    v.marshal(&mut e).unwrap();
    let bytes = e.finish_stream();
    let mut d = CdrDecoder::new(&bytes, order);
    let back = T::demarshal(&mut d).unwrap();
    assert_eq!(&back, v);
    assert_eq!(d.remaining(), 0);
}

proptest! {
    #[test]
    fn prop_u32_roundtrip(v: u32, order in orders()) {
        roundtrip(&v, order);
    }

    #[test]
    fn prop_i64_roundtrip(v: i64, order in orders()) {
        roundtrip(&v, order);
    }

    #[test]
    fn prop_f64_roundtrip(v: f64, order in orders()) {
        // NaN != NaN, so compare bit patterns.
        let mut e = CdrEncoder::new(order);
        v.marshal(&mut e).unwrap();
        let bytes = e.finish_stream();
        let mut d = CdrDecoder::new(&bytes, order);
        let back = f64::demarshal(&mut d).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn prop_string_roundtrip(s in "\\PC*", order in orders()) {
        roundtrip(&s, order);
    }

    #[test]
    fn prop_vec_i32_roundtrip(v in proptest::collection::vec(any::<i32>(), 0..200), order in orders()) {
        roundtrip(&v, order);
    }

    #[test]
    fn prop_vec_string_roundtrip(v in proptest::collection::vec("[a-zA-Z0-9 ]{0,20}", 0..30), order in orders()) {
        roundtrip(&v, order);
    }

    #[test]
    fn prop_octet_seq_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..5000), order in orders()) {
        roundtrip(&OctetSeq(data), order);
    }

    /// Interleaving values of different alignments must still round-trip:
    /// this exercises the padding logic exhaustively.
    #[test]
    fn prop_mixed_alignment_roundtrip(
        a: u8, b: u64, c: u16, d: f64, e_: i32, s in "[a-z]{0,12}", order in orders()
    ) {
        let mut enc = CdrEncoder::new(order);
        a.marshal(&mut enc).unwrap();
        b.marshal(&mut enc).unwrap();
        c.marshal(&mut enc).unwrap();
        d.marshal(&mut enc).unwrap();
        e_.marshal(&mut enc).unwrap();
        s.marshal(&mut enc).unwrap();
        let bytes = enc.finish_stream();
        let mut dec = CdrDecoder::new(&bytes, order);
        prop_assert_eq!(u8::demarshal(&mut dec).unwrap(), a);
        prop_assert_eq!(u64::demarshal(&mut dec).unwrap(), b);
        prop_assert_eq!(u16::demarshal(&mut dec).unwrap(), c);
        prop_assert_eq!(f64::demarshal(&mut dec).unwrap().to_bits(), d.to_bits());
        prop_assert_eq!(i32::demarshal(&mut dec).unwrap(), e_);
        prop_assert_eq!(String::demarshal(&mut dec).unwrap(), s);
        prop_assert_eq!(dec.remaining(), 0);
    }

    /// The decoder must never panic on arbitrary input — errors only.
    #[test]
    fn prop_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256), order in orders()) {
        let mut d = CdrDecoder::new(&bytes, order);
        let _ = String::demarshal(&mut d);
        let mut d = CdrDecoder::new(&bytes, order);
        let _ = Vec::<i32>::demarshal(&mut d);
        let mut d = CdrDecoder::new(&bytes, order);
        let _ = OctetSeq::demarshal(&mut d);
        let mut d = CdrDecoder::new(&bytes, order);
        let _ = ZcOctetSeq::demarshal(&mut d);
        let mut d = CdrDecoder::new(&bytes, order);
        let _ = f64::demarshal(&mut d);
    }

    /// ZC round-trip through the deposit path preserves identity (shared
    /// storage) for arbitrary payload sizes, including page-boundary sizes.
    #[test]
    fn prop_zc_deposit_identity(len in 0usize..200_000) {
        let m = CopyMeter::new_shared();
        let seq = ZcOctetSeq::with_length(len);
        let mut e = CdrEncoder::native().with_meter(m.clone()).with_zc(true);
        seq.marshal(&mut e).unwrap();
        let (stream, deposits) = e.finish();
        let mut d = CdrDecoder::new(&stream, ByteOrder::native())
            .with_meter(m.clone())
            .with_deposits(deposits);
        let back = ZcOctetSeq::demarshal(&mut d).unwrap();
        prop_assert!(back.ptr_eq(&seq));
        prop_assert_eq!(m.snapshot().overhead_bytes(), 0);
    }

    /// On a non-ZC stream, ZcOctetSeq and OctetSeq are wire-identical.
    #[test]
    fn prop_zc_fallback_wire_equivalence(data in proptest::collection::vec(any::<u8>(), 0..3000), order in orders()) {
        let m = CopyMeter::new_shared();
        let mut e1 = CdrEncoder::new(order);
        OctetSeq(data.clone()).marshal(&mut e1).unwrap();
        let mut e2 = CdrEncoder::new(order);
        ZcOctetSeq::copy_from_slice(&data, &m).marshal(&mut e2).unwrap();
        prop_assert_eq!(e1.finish_stream(), e2.finish_stream());
    }
}

// ---------------------------------------------------------------------------
// Adversarial replay of the wire-taint pass's flagged sites: a lying length
// prefix must land as an error — never a panic — and must never drive an
// allocation anywhere near the announced size. A counting global allocator
// measures the peak live-byte delta across each hostile decode.
// ---------------------------------------------------------------------------

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

/// Mirrors `zc_giop::MAX_GIOP_MESSAGE` (this crate cannot depend on giop
/// without a cycle): no decode of a lying length may allocate past it.
/// Hostile announced lengths reach into the gigabytes, so the margin
/// between "bug" and "pass" is wide even with other tests running.
const PEAK_CAP: usize = 64 << 20;

/// Run `f` with the peak counter rebased to the current live total and
/// return `(result, peak delta in bytes)`. A gate serializes measuring
/// sections against each other; concurrently running non-measuring tests
/// can only add kilobyte-scale noise, far under [`PEAK_CAP`].
fn measured_peak<R>(f: impl FnOnce() -> R) -> (R, usize) {
    static GATE: Mutex<()> = Mutex::new(());
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let r = f();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(base);
    (r, peak)
}

fn length_prefix(announced: u32, order: ByteOrder) -> Vec<u8> {
    match order {
        ByteOrder::Big => announced.to_be_bytes().to_vec(),
        ByteOrder::Little => announced.to_le_bytes().to_vec(),
    }
}

proptest! {
    /// Every length-prefixed decode entrypoint the taint pass flags —
    /// `read_string`, `read_octet_seq` (owned and borrowed),
    /// `read_encapsulation`, and sequence demarshal — must reject a length
    /// field larger than the bytes behind it, without panicking and
    /// without allocating toward the announced size.
    #[test]
    fn prop_hostile_length_prefix_errors_bounded(
        announced in 64u32..u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..48),
        order in orders(),
    ) {
        let mut bytes = length_prefix(announced, order);
        bytes.extend_from_slice(&tail);
        // announced >= 64 > tail.len(), so every decode must fail.
        let (all_err, peak) = measured_peak(|| {
            CdrDecoder::new(&bytes, order).read_string().is_err()
                && CdrDecoder::new(&bytes, order).read_octet_seq().is_err()
                && CdrDecoder::new(&bytes, order).read_octet_seq_borrowed().is_err()
                && CdrDecoder::new(&bytes, order)
                    .read_encapsulation(|inner| inner.read_u32())
                    .is_err()
                && Vec::<i32>::demarshal(&mut CdrDecoder::new(&bytes, order)).is_err()
                && String::demarshal(&mut CdrDecoder::new(&bytes, order)).is_err()
        });
        prop_assert!(
            all_err,
            "a lying length of {} over {} payload bytes must error",
            announced, tail.len()
        );
        prop_assert!(peak <= PEAK_CAP, "hostile length drove a {peak} byte peak");
    }

    /// Mutating a ZC stream (descriptor indices, announced deposit
    /// lengths, the inline tag) must never panic `take_deposit` or the
    /// demarshal path, and must never drive a large allocation.
    #[test]
    fn prop_zc_deposit_stream_mutation_errors_bounded(
        len in 1usize..4096,
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255u8), 1..6),
    ) {
        let m = CopyMeter::new_shared();
        let seq = ZcOctetSeq::with_length(len);
        let mut e = CdrEncoder::native().with_meter(m.clone()).with_zc(true);
        seq.marshal(&mut e).unwrap();
        let (mut stream, deposits) = e.finish();
        for &(idx, xor) in &flips {
            let p = idx % stream.len();
            stream[p] ^= xor;
        }
        let ((), peak) = measured_peak(|| {
            let mut d = CdrDecoder::new(&stream, ByteOrder::native())
                .with_meter(m.clone())
                .with_deposits(deposits);
            // A mutation may survive as a still-valid stream or land as any
            // decode error; the only unacceptable outcomes are a panic or a
            // length-field-sized allocation.
            let _ = ZcOctetSeq::demarshal(&mut d);
        });
        prop_assert!(peak <= PEAK_CAP, "mutated ZC stream drove a {peak} byte peak");
    }
}
