//! Decode-hardening tests: malformed wire input must surface as `CdrError`,
//! never as a panic. Covers truncated buffers and sequences, endianness
//! mismatches (a swapped length field reads as a huge count), misaligned and
//! truncated encapsulations, and hostile deposit descriptors — plus a
//! property test that feeds arbitrary bytes through the decode entry points.

use proptest::prelude::*;
use zc_cdr::{
    octet::ZcOctetSeq, ByteOrder, CdrDecoder, CdrEncoder, CdrError, CdrMarshal, OctetSeq,
    MAX_CDR_LENGTH,
};

fn dec(bytes: &[u8], order: ByteOrder) -> CdrDecoder<'_> {
    CdrDecoder::new(bytes, order)
}

// --- truncation -----------------------------------------------------------

#[test]
fn truncated_primitives_error_cleanly() {
    for order in [ByteOrder::Big, ByteOrder::Little] {
        assert!(matches!(
            dec(&[], order).read_octet(),
            Err(CdrError::OutOfBounds { .. })
        ));
        assert!(matches!(
            dec(&[1], order).read_u16(),
            Err(CdrError::OutOfBounds { .. })
        ));
        assert!(matches!(
            dec(&[1, 2, 3], order).read_u32(),
            Err(CdrError::OutOfBounds { .. })
        ));
        assert!(matches!(
            dec(&[0; 7], order).read_u64(),
            Err(CdrError::OutOfBounds { .. })
        ));
        assert!(matches!(
            dec(&[0; 7], order).read_f64(),
            Err(CdrError::OutOfBounds { .. })
        ));
    }
}

#[test]
fn truncated_octet_seq_errors_cleanly() {
    // Announces 100 bytes, supplies 3.
    let mut e = CdrEncoder::new(ByteOrder::Big);
    e.write_u32(100);
    e.write_raw(&[1, 2, 3]);
    let buf = e.finish_stream();
    let err = dec(&buf, ByteOrder::Big).read_octet_seq().unwrap_err();
    assert!(
        matches!(err, CdrError::OutOfBounds { need: 100, .. }),
        "{err}"
    );

    // The borrowed variant takes the same check.
    let err = dec(&buf, ByteOrder::Big)
        .read_octet_seq_borrowed()
        .unwrap_err();
    assert!(matches!(err, CdrError::OutOfBounds { .. }));
}

#[test]
fn length_overflow_rejected_before_allocation() {
    // A length just past MAX_CDR_LENGTH must be rejected by the limit check
    // (not by attempting a giant allocation).
    let mut e = CdrEncoder::new(ByteOrder::Big);
    e.write_u32((MAX_CDR_LENGTH + 1) as u32);
    let buf = e.finish_stream();
    let err = dec(&buf, ByteOrder::Big).read_octet_seq().unwrap_err();
    assert!(matches!(err, CdrError::LengthOverflow(_)), "{err}");
}

#[test]
fn truncated_string_and_missing_nul() {
    for order in [ByteOrder::Big, ByteOrder::Little] {
        // Zero length: even "" encodes as length 1 (the NUL).
        let mut e = CdrEncoder::new(order);
        e.write_u32(0);
        assert!(matches!(
            dec(&e.finish_stream(), order).read_string(),
            Err(CdrError::InvalidString)
        ));

        // Length present, terminator not NUL.
        let mut e = CdrEncoder::new(order);
        e.write_u32(3);
        e.write_raw(b"abc"); // no NUL
        assert!(matches!(
            dec(&e.finish_stream(), order).read_string(),
            Err(CdrError::InvalidString)
        ));

        // Invalid UTF-8 payload.
        let mut e = CdrEncoder::new(order);
        e.write_u32(3);
        e.write_raw(&[0xFF, 0xFE, 0x00]);
        assert!(matches!(
            dec(&e.finish_stream(), order).read_string(),
            Err(CdrError::InvalidString)
        ));
    }
}

// --- endianness mismatch --------------------------------------------------

#[test]
fn swapped_byte_order_is_an_error_not_a_panic() {
    // "hello" encoded little-endian: the length field 6 becomes 6 << 24 when
    // misread as big-endian — a huge count that must be caught by bounds or
    // limit checks.
    let mut e = CdrEncoder::new(ByteOrder::Little);
    e.write_string("hello");
    let buf = e.finish_stream();
    let err = dec(&buf, ByteOrder::Big).read_string().unwrap_err();
    assert!(
        matches!(
            err,
            CdrError::OutOfBounds { .. } | CdrError::LengthOverflow(_)
        ),
        "{err}"
    );

    // Same shape for sequences.
    let mut e = CdrEncoder::new(ByteOrder::Little);
    e.write_octet_seq(&[9; 16]);
    let buf = e.finish_stream();
    let err = dec(&buf, ByteOrder::Big).read_octet_seq().unwrap_err();
    assert!(
        matches!(
            err,
            CdrError::OutOfBounds { .. } | CdrError::LengthOverflow(_)
        ),
        "{err}"
    );
}

// --- alignment and encapsulations ----------------------------------------

#[test]
fn alignment_padding_past_end_errors() {
    // One octet consumed, then a u64 read wants 8-byte alignment + 8 bytes
    // that are not there.
    let buf = [1u8, 0, 0];
    let mut d = dec(&buf, ByteOrder::Big);
    d.read_octet().unwrap();
    assert!(matches!(d.read_u64(), Err(CdrError::OutOfBounds { .. })));
}

#[test]
fn truncated_encapsulation_errors() {
    // Announces an 8-byte encapsulation, supplies 2.
    let mut e = CdrEncoder::new(ByteOrder::Big);
    e.write_u32(8);
    e.write_raw(&[0, 1]);
    let buf = e.finish_stream();
    let err = dec(&buf, ByteOrder::Big)
        .read_encapsulation(|d| d.read_u32())
        .unwrap_err();
    assert!(matches!(err, CdrError::OutOfBounds { .. }), "{err}");
}

#[test]
fn empty_encapsulation_errors() {
    // Length 0 leaves no room for the byte-order flag octet.
    let mut e = CdrEncoder::new(ByteOrder::Big);
    e.write_u32(0);
    let buf = e.finish_stream();
    let err = dec(&buf, ByteOrder::Big)
        .read_encapsulation(|d| d.read_u32())
        .unwrap_err();
    assert!(matches!(err, CdrError::OutOfBounds { .. }), "{err}");
}

#[test]
fn misaligned_encapsulation_offset_errors() {
    // An encapsulation whose body stops mid-primitive: inner reads align
    // relative to the encapsulation origin and must fault at its edge.
    let mut e = CdrEncoder::new(ByteOrder::Big);
    e.write_encapsulation(|inner| {
        inner.write_u16(7); // flag octet + pad + u16 = 4 bytes total
    });
    let mut buf = e.finish_stream();
    let last = buf.len() - 1;
    buf.truncate(last); // chop one body byte; outer length now lies
    let err = dec(&buf, ByteOrder::Big)
        .read_encapsulation(|d| d.read_u16())
        .unwrap_err();
    assert!(matches!(err, CdrError::OutOfBounds { .. }), "{err}");
}

// --- deposit descriptors --------------------------------------------------

#[test]
fn hostile_deposit_descriptors_error() {
    use zc_buffers::ZcBytes;

    // Index beyond the deposit table.
    let mut d = dec(&[], ByteOrder::Big).with_deposits(vec![ZcBytes::zeroed(8)]);
    assert!(matches!(
        d.take_deposit(3, 8),
        Err(CdrError::BadDepositIndex(3))
    ));

    // Announced length disagrees with the deposited block.
    assert!(matches!(
        d.take_deposit(0, 99),
        Err(CdrError::DepositLengthMismatch { .. })
    ));

    // Double-take of the same block.
    assert!(d.take_deposit(0, 8).is_ok());
    assert!(matches!(
        d.take_deposit(0, 8),
        Err(CdrError::BadDepositIndex(0))
    ));
}

#[test]
fn zc_octet_seq_demarshal_rejects_bad_descriptor() {
    // A ZC-enabled decoder whose descriptor names a missing deposit slot.
    let mut e = CdrEncoder::new(ByteOrder::Big);
    e.write_u32(16); // announced payload length
    e.write_u32(5); // deposit index that does not exist
    let buf = e.finish_stream();
    let mut d = dec(&buf, ByteOrder::Big).with_deposits(vec![]);
    assert!(d.zc_enabled());
    let err = ZcOctetSeq::demarshal(&mut d).unwrap_err();
    assert!(matches!(err, CdrError::BadDepositIndex(5)), "{err}");
}

// --- no-panic property ----------------------------------------------------

proptest! {
    /// Arbitrary bytes through every decode entry point: any outcome is
    /// acceptable except a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..128), little in any::<bool>()) {
        let order = ByteOrder::from_flag(little);

        let _ = dec(&bytes, order).read_string();
        let _ = dec(&bytes, order).read_octet_seq();
        let _ = dec(&bytes, order).read_encapsulation(|d| d.read_u32());
        let _ = OctetSeq::demarshal(&mut dec(&bytes, order));
        let _ = ZcOctetSeq::demarshal(&mut dec(&bytes, order));

        // A mixed-primitive walk exercising alignment from every offset.
        let mut d = dec(&bytes, order);
        let _ = d.read_octet();
        let _ = d.read_u16();
        let _ = d.read_u32();
        let _ = d.read_u64();
        let _ = d.read_f32();
        let _ = d.read_bool();
    }
}
