//! CORBA Common Data Representation (CDR) marshaling for zcorba.
//!
//! CDR is the presentation layer of GIOP: primitives are aligned to their
//! natural size relative to the start of the message body, multi-byte values
//! follow the byte order announced in the message flags, strings carry an
//! explicit length and a terminating NUL, and sequences carry an element
//! count. This crate implements a faithful encoder/decoder pair plus the
//! type-identifier machinery (MICO's "TID") that the paper's optimization
//! keys off.
//!
//! Two sequence-of-octet types exist side by side, exactly as in the paper
//! (§4.3, where `ZC_Octet` is introduced "to compare an optimized stream
//! version to the standard stream version"):
//!
//! * [`octet::OctetSeq`] — the standard `sequence<octet>`: marshaling copies
//!   the payload into the CDR buffer (through the [`zc_buffers::CopyMeter`],
//!   so the cost is visible), demarshaling copies it back out.
//! * [`octet::ZcOctetSeq`] — the zero-copy variant: on a connection where
//!   both peers negotiated direct deposit, marshaling writes only a tiny
//!   *deposit descriptor* (length + block index) into the CDR stream and
//!   hands the payload [`zc_buffers::ZcBytes`] to the encoder's out-of-band
//!   deposit list; demarshaling resolves the descriptor against blocks that
//!   the transport deposited directly into page-aligned buffers. When the
//!   connection did not negotiate ZC, both operations transparently fall
//!   back to the standard inline representation, preserving IIOP
//!   interoperability.

pub mod decode;
pub mod encode;
pub mod endian;
pub mod octet;
pub mod typeid;
pub mod types;
pub mod wire;

pub use decode::CdrDecoder;
pub use encode::CdrEncoder;
pub use endian::ByteOrder;
pub use octet::{OctetSeq, ZcOctetSeq};
pub use typeid::TypeId;
pub use types::CdrMarshal;

/// Errors raised while encoding or decoding CDR data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// Read past the end of the buffer.
    OutOfBounds {
        /// Bytes needed by the read.
        need: usize,
        /// Bytes remaining in the buffer.
        have: usize,
    },
    /// A boolean octet was neither 0 nor 1.
    InvalidBool(u8),
    /// A string was not valid UTF-8 or lacked its NUL terminator.
    InvalidString,
    /// A length/count field exceeded sane limits (protects against
    /// adversarial or corrupted messages allocating unbounded memory).
    LengthOverflow(u64),
    /// A deposit descriptor referenced a block index that was never
    /// deposited on this request.
    BadDepositIndex(u32),
    /// A deposited block's length disagrees with the descriptor.
    DepositLengthMismatch {
        /// Length announced in the CDR stream.
        announced: usize,
        /// Length of the block actually deposited.
        deposited: usize,
    },
    /// An unknown or unexpected type identifier was encountered.
    BadTypeId(u32),
    /// Enum discriminant out of range.
    BadEnumValue(u32),
}

impl std::fmt::Display for CdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdrError::OutOfBounds { need, have } => {
                write!(f, "CDR read out of bounds: need {need} bytes, have {have}")
            }
            CdrError::InvalidBool(b) => write!(f, "invalid CDR boolean octet {b:#x}"),
            CdrError::InvalidString => write!(f, "invalid CDR string (UTF-8/NUL violation)"),
            CdrError::LengthOverflow(n) => write!(f, "CDR length field {n} exceeds limits"),
            CdrError::BadDepositIndex(i) => write!(f, "deposit descriptor index {i} not present"),
            CdrError::DepositLengthMismatch {
                announced,
                deposited,
            } => write!(
                f,
                "deposit length mismatch: descriptor says {announced}, block has {deposited}"
            ),
            CdrError::BadTypeId(t) => write!(f, "unexpected type id {t:#x}"),
            CdrError::BadEnumValue(v) => write!(f, "enum discriminant {v} out of range"),
        }
    }
}

impl std::error::Error for CdrError {}

/// Result alias for CDR operations.
pub type CdrResult<T> = Result<T, CdrError>;

/// Upper bound accepted for any single CDR length/count field (1 GiB).
/// Larger values indicate corruption or attack, not legitimate payloads.
pub const MAX_CDR_LENGTH: u64 = 1 << 30;
