//! Single source of truth for the zcorba wire-constant family.
//!
//! Every protocol literal derived from the ASCII "ZC" tag lives here (or is
//! derived from here): the CDR `TypeId::ZcOctetSeq` discriminant, the GIOP
//! service-context ids, and exception minor codes. The `wire-consts` audit
//! pass (`tools/zc-audit`) enforces that the `0x5A43` prefix is never
//! re-spelled as a literal outside this module, so encode and decode sides
//! cannot drift apart.

/// The 16-bit zcorba tag: ASCII `"ZC"` big-endian. Doubles as the CDR
/// `TypeId::ZcOctetSeq` discriminant and the high half of every vendor id.
pub const ZC_TAG: u32 = 0x5A43;

/// A 32-bit id in the zcorba vendor space: `ZC_TAG` in the high half, `n`
/// in the low half. Used for GIOP service-context ids and exception minor
/// codes, keeping us inside the OMG "vendor" id convention.
pub const fn zc_vendor_id(n: u16) -> u32 {
    (ZC_TAG << 16) | n as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_is_ascii_zc() {
        assert_eq!(ZC_TAG, u16::from_be_bytes(*b"ZC") as u32);
        assert_eq!(ZC_TAG, 0x5A43);
    }

    #[test]
    fn vendor_ids_concatenate_tag_and_index() {
        assert_eq!(zc_vendor_id(0x0001), 0x5A43_0001);
        assert_eq!(zc_vendor_id(0x0010), 0x5A43_0010);
        assert_eq!(zc_vendor_id(0xFFFF), 0x5A43_FFFF);
    }
}
