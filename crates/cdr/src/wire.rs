//! Single source of truth for the zcorba wire-constant family.
//!
//! Every protocol literal derived from the ASCII "ZC" tag lives here (or is
//! derived from here): the CDR `TypeId::ZcOctetSeq` discriminant, the GIOP
//! service-context ids, and exception minor codes. The `wire-consts` audit
//! pass (`tools/zc-audit`) enforces that the `0x5A43` prefix is never
//! re-spelled as a literal outside this module, so encode and decode sides
//! cannot drift apart.

/// The 16-bit zcorba tag: ASCII `"ZC"` big-endian. Doubles as the CDR
/// `TypeId::ZcOctetSeq` discriminant and the high half of every vendor id.
pub const ZC_TAG: u32 = 0x5A43;

/// A 32-bit id in the zcorba vendor space: `ZC_TAG` in the high half, `n`
/// in the low half. Used for GIOP service-context ids and exception minor
/// codes, keeping us inside the OMG "vendor" id convention.
pub const fn zc_vendor_id(n: u16) -> u32 {
    (ZC_TAG << 16) | n as u32
}

/// Reserved object key of the in-band introspection object that every
/// object adapter auto-registers. The leading underscore keeps it outside
/// the user key namespace (mirroring GIOP's `_is_a`/`_non_existent`
/// reserved-operation convention), and the literal is pinned by a wire
/// test below so the key can never drift: operators' dashboards address
/// servers they did not build.
pub const ZC_TELEMETRY_KEY: &[u8] = b"_ZcTelemetry";

/// Repository id answered by the introspection object.
pub const ZC_TELEMETRY_REPO_ID: &str = "IDL:zcorba/ZcTelemetry:1.0";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_is_ascii_zc() {
        assert_eq!(ZC_TAG, u16::from_be_bytes(*b"ZC") as u32);
        assert_eq!(ZC_TAG, 0x5A43);
    }

    #[test]
    fn vendor_ids_concatenate_tag_and_index() {
        assert_eq!(zc_vendor_id(0x0001), 0x5A43_0001);
        assert_eq!(zc_vendor_id(0x0010), 0x5A43_0010);
        assert_eq!(zc_vendor_id(0xFFFF), 0x5A43_FFFF);
    }

    /// Cross-assert the introspection key against its literal bytes: the
    /// key is a wire constant (remote dashboards embed it in IORs), so a
    /// rename here must fail loudly instead of silently splitting the
    /// deployed fleet.
    #[test]
    fn telemetry_key_pinned_to_wire_bytes() {
        assert_eq!(
            ZC_TELEMETRY_KEY,
            &[0x5F, 0x5A, 0x63, 0x54, 0x65, 0x6C, 0x65, 0x6D, 0x65, 0x74, 0x72, 0x79]
        );
        assert_eq!(ZC_TELEMETRY_KEY, b"_ZcTelemetry");
        assert!(ZC_TELEMETRY_KEY.starts_with(b"_"), "reserved-name prefix");
        assert_eq!(ZC_TELEMETRY_REPO_ID, "IDL:zcorba/ZcTelemetry:1.0");
    }
}
